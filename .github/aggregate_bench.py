#!/usr/bin/env python3
"""Aggregate every BENCH_*.json written by a CI run into one summary file.

Each benchmark script writes its own JSON file; this collects them into a
single ``BENCH_summary.json`` artifact keyed by benchmark name, so one
download shows the whole performance trajectory of a commit.  Unreadable
or missing inputs are recorded (not fatal): the summary must exist even
when an individual smoke benchmark failed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="*", help="BENCH_*.json files to aggregate")
    parser.add_argument("--output", default="BENCH_summary.json")
    args = parser.parse_args(argv)

    summary = {"benchmarks": {}, "errors": {}}
    for path in sorted(set(args.inputs)):
        name = os.path.splitext(os.path.basename(path))[0]
        if name == os.path.splitext(os.path.basename(args.output))[0]:
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                summary["benchmarks"][name] = json.load(handle)
        except (OSError, ValueError) as error:
            summary["errors"][name] = str(error)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"aggregated {len(summary['benchmarks'])} benchmark files "
        f"({len(summary['errors'])} unreadable) into {args.output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
