#!/usr/bin/env python3
"""CI smoke test for the campaign fabric, exercised through the CLIs.

Boots a real ``repro-campaignd`` coordinator and two worker processes on
localhost, runs a small mini_git exploration through ``repro-campaign``,
then proves crash-safe resume: the coordinator is killed, the store is
truncated mid-record (simulating a kill mid-append), a fresh coordinator
is started, and resubmitting the same spec must resume the checkpointed
prefix, repair the torn tail, and re-run only the remainder — ending with
results identical to the first pass.

Everything the daemons print lands in ``--log-dir`` (uploaded as a CI
artifact).  Exits non-zero on any failed assertion.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ENV = {**os.environ, "PYTHONPATH": os.path.join(REPO, "src")}

SPEC_ARGS = [
    "--target", "mini_git", "--workload", "status", "--seed", "7",
    "--functions", "close,malloc",
]


def log(message: str) -> None:
    print(f"[smoke] {message}", flush=True)


def start(args, logfile):
    handle = open(logfile, "ab", buffering=0)
    return subprocess.Popen(
        [sys.executable, "-m", *args], env=ENV, cwd=REPO,
        stdout=handle, stderr=subprocess.STDOUT,
    )


def wait_for_port(port_file: str, timeout: float = 30.0) -> int:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if os.path.exists(port_file):
            content = open(port_file, encoding="utf-8").read().strip()
            if content:
                return int(content)
        time.sleep(0.05)
    raise RuntimeError(f"coordinator never wrote {port_file}")


def campaign(port: int, *args: str) -> list:
    """Run one repro-campaign command; returns its JSON output lines."""
    out = subprocess.run(
        [sys.executable, "-m", "repro.cli.campaign",
         "--port", str(port), *args],
        env=ENV, cwd=REPO, capture_output=True, text=True, timeout=300,
    )
    if out.returncode != 0:
        raise RuntimeError(
            f"repro-campaign {' '.join(args)} failed "
            f"(rc={out.returncode}):\n{out.stdout}\n{out.stderr}"
        )
    return [json.loads(line) for line in out.stdout.splitlines() if line.strip()]


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--log-dir", default="campaignd-logs")
    options = parser.parse_args()
    os.makedirs(options.log_dir, exist_ok=True)
    store = os.path.abspath(os.path.join(options.log_dir, "campaign-store.jsonl"))
    port_file = os.path.join(options.log_dir, "port.txt")
    processes = []

    def coordinator_cmd():
        return ["repro.cli.campaignd", "serve", "--port", "0",
                "--port-file", port_file, "--shard-size", "4", "-v"]

    try:
        # ------------------------------------------------------------------
        # Phase 1: coordinator + 2 workers, full campaign through the CLI.
        log("phase 1: boot coordinator + 2 workers, run the campaign")
        coordinator = start(coordinator_cmd(),
                            os.path.join(options.log_dir, "coordinator-1.log"))
        processes.append(coordinator)
        port = wait_for_port(port_file)
        for i in range(2):
            processes.append(start(
                ["repro.cli.campaignd", "worker", "--port", str(port),
                 "--poll-interval", "0.05"],
                os.path.join(options.log_dir, f"worker-{i}.log"),
            ))

        submitted, final = campaign(
            port, "submit", *SPEC_ARGS, "--store", store, "--wait")
        total = final["total"]
        assert final["state"] == "complete", final
        assert final["completed"] == total, final
        assert submitted["resumed"] == 0, submitted
        log(f"phase 1 complete: {total} points, "
            f"workers seen: {final['workers_seen']}")

        first_pass = campaign(port, "results", submitted["campaign_id"])
        assert len(first_pass) == total

        # ------------------------------------------------------------------
        # Phase 2: kill everything, tear the store mid-record, resume.
        log("phase 2: kill the coordinator, simulate a crash mid-append")
        for process in processes:
            process.send_signal(signal.SIGKILL)
        for process in processes:
            process.wait(timeout=30)
        processes.clear()
        os.unlink(port_file)

        with open(store, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        keep = total // 2
        with open(store, "wb") as handle:
            handle.writelines(lines[:keep])
            handle.write(lines[keep][: len(lines[keep]) // 2])  # torn tail
        log(f"store truncated to {keep} records plus a torn partial line")

        coordinator = start(coordinator_cmd(),
                            os.path.join(options.log_dir, "coordinator-2.log"))
        processes.append(coordinator)
        port = wait_for_port(port_file)
        processes.append(start(
            ["repro.cli.campaignd", "worker", "--port", str(port),
             "--poll-interval", "0.05"],
            os.path.join(options.log_dir, "worker-resume.log"),
        ))

        submitted, final = campaign(
            port, "submit", *SPEC_ARGS, "--store", store, "--wait")
        assert submitted["resumed"] == keep, submitted
        assert final["state"] == "complete", final
        assert final["executed"] == total - keep, final
        log(f"resume OK: {keep} checkpointed runs skipped, "
            f"{total - keep} re-executed")

        second_pass = campaign(port, "results", submitted["campaign_id"])
        assert second_pass == first_pass, "resumed results differ from phase 1"
        log(f"merged results identical across the restart ({total} records)")
        return 0
    finally:
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()


if __name__ == "__main__":
    raise SystemExit(main())
