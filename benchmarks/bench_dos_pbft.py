"""§7.3 — PBFT under two simulated DoS attacks (silencing / rotating bursts)."""

from repro.experiments import dos_pbft


def test_dos_pbft(benchmark):
    result = benchmark.pedantic(
        dos_pbft.run, kwargs={"requests": 30, "trials": 3, "burst": 100}, rounds=1, iterations=1
    )
    print()
    print(result)

    baseline, silenced, rotating = result.rows
    # Silencing one replica leaves a quorum and slightly *improves*
    # throughput (the paper measured +12%); it must not hurt.
    assert silenced["relative to baseline"] >= 1.0
    assert silenced["relative to baseline"] < 1.8
    # The rotating attack targets the view-change machinery and costs a
    # factor of ~2x (the paper measured 2.2x).
    assert rotating["relative to baseline"] < 0.65
    assert rotating["relative to baseline"] > 0.15
    assert baseline["throughput (req/s)"] > 0
