#!/usr/bin/env python3
"""Parallel prefix-group scheduling benchmark — writes ``BENCH_prefix_parallel.json``.

Measures what PR 5 composes and deepens:

1. **mini_git campaign sweep** — the automatic-testing shape across four
   schedules: the plain per-scenario serial path, serial prefix sharing
   (the PR 4 baseline semantics, now with prefix trees and errno-blind
   suffix replication), a ``processes:N`` pool *without* sharing (exactly
   what PR 4 silently degraded ``share_prefixes=True`` campaigns to when a
   pool backend was selected), and the new group-per-task fan-out
   (``share_prefixes=True`` + ``processes:N``).  The headline number is
   ``group_fanout_vs_pooled_unshared`` — the cost of the old silent
   downgrade — alongside ``group_fanout_vs_serial_shared``, the scaling
   sharing now gets from the pool (bounded by the machine's core count:
   on a single-core runner it hovers near 1x, on a 4-core runner it
   approaches the worker count).
2. **mini_apache fork path** — the §7.4-style injecting trigger campaign
   whose scenario groups fork the server world per member: the legacy
   ``copy.deepcopy`` fork against the PR 5 capture/restore state fork
   (O(touched state)), plus a fork-only micro timing of both mechanisms.
3. **prefix trees** — call-count variants of one site (the replay-scenario
   shape): the plain path runs every variant in full; the tree shares the
   sub-prefix up to each divergence and replicates errno-blind suffixes.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_prefix_parallel.py [--smoke] \
        [--workers N] [--output BENCH_prefix_parallel.json]

``--smoke`` shrinks the workloads for CI; the JSON schema is identical, so
the perf trajectory accumulates across runs either way.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.controller.campaign import TestCampaign  # noqa: E402
from repro.core.controller.controller import LFIController  # noqa: E402
from repro.core.scenario.builder import ScenarioBuilder  # noqa: E402
from repro.targets.mini_apache.target import MiniApacheTarget  # noqa: E402
from repro.targets.mini_git import MiniGitTarget  # noqa: E402


def _best(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# mini_git: four schedules of one campaign sweep
# ----------------------------------------------------------------------
def bench_mini_git_schedules(workloads, repeats: int, workers: int) -> dict:
    target = MiniGitTarget()
    controller = LFIController(target)
    analysis = controller.analyze_target()
    points = controller.fault_space(analysis=analysis, include_checked=True)
    scenarios = [point.scenario() for point in points]

    def sweep(share: bool, parallelism) -> None:
        for workload in workloads:
            TestCampaign(target, workload=workload).run(
                scenarios, seed=3, include_baseline=False,
                share_prefixes=share, parallelism=parallelism,
            )

    sweep(True, None)  # warm caches + boot templates outside the timed region
    runs = len(scenarios) * len(workloads)
    pool = f"processes:{workers}"
    timings = {
        "plain_serial": _best(lambda: sweep(False, None), repeats),
        "serial_shared": _best(lambda: sweep(True, None), repeats),
        "pooled_unshared": _best(lambda: sweep(False, pool), repeats),
        "group_fanout": _best(lambda: sweep(True, pool), repeats),
    }
    return {
        "scenarios": len(scenarios),
        "workloads": list(workloads),
        "runs": runs,
        "workers": workers,
        "runs_per_sec": {
            name: round(runs / seconds, 1) for name, seconds in timings.items()
        },
        "speedups": {
            "serial_shared_vs_plain": round(
                timings["plain_serial"] / timings["serial_shared"], 2
            ),
            "group_fanout_vs_pooled_unshared": round(
                timings["pooled_unshared"] / timings["group_fanout"], 2
            ),
            "group_fanout_vs_serial_shared": round(
                timings["serial_shared"] / timings["group_fanout"], 2
            ),
        },
    }


# ----------------------------------------------------------------------
# mini_apache: deepcopy vs capture/restore world forks
# ----------------------------------------------------------------------
def _apache_scenarios(counts=(1, 6)):
    scenarios = []
    sites = [
        ("_read_whole_file", "apr_file_read", -1, ["EIO", "EINTR", "EAGAIN"]),
        ("php_handler", "apr_file_read", -1, ["EIO", "EINTR"]),
        ("log_request", "write", -1, ["EIO", "ENOSPC"]),
    ]
    for caller, function, value, errnos in sites:
        for nth in counts:
            for errno in errnos:
                builder = ScenarioBuilder(f"{caller}-{function}-{nth}-{errno}")
                builder.trigger_with_params(
                    "site", "CallStackTrigger",
                    {"frame": {"module": "httpd_core", "function": caller}},
                )
                builder.trigger("count", "CallCountTrigger", nth=nth)
                builder.trigger("once", "SingletonTrigger")
                builder.inject(function, ["site", "count", "once"],
                               return_value=value, errno=errno)
                scenarios.append(builder.build())
    return scenarios


def bench_apache_fork(requests: int, repeats: int) -> dict:
    target = MiniApacheTarget()
    scenarios = _apache_scenarios()

    def campaign(**options) -> None:
        TestCampaign(target, workload="ab-php").run(
            scenarios, include_baseline=False, requests=requests, **options
        )

    campaign(share_prefixes=True)  # warm
    timings = {
        "plain": _best(lambda: campaign(share_prefixes=False), repeats),
        "deepcopy_fork": _best(
            lambda: campaign(share_prefixes=True, fork="deepcopy"), repeats
        ),
        "state_fork": _best(lambda: campaign(share_prefixes=True), repeats),
    }

    # Fork-only micro timing: one prefix world, N forks each way.
    from copy import deepcopy

    from repro.core.controller.target import WorkloadRequest

    request = WorkloadRequest(workload="ab-php", scenario=scenarios[0],
                              options={"requests": requests})
    world_server = target.make_server(request)
    from functools import partial

    from repro.core.controller.monitor import run_python_workload

    uri, total, post_every = target._workload_params("ab-php", {"requests": requests})
    run_python_workload(
        partial(target._request_loop, world_server, uri, max(total // 2, 1), post_every)
    )
    forks = 50 if repeats > 1 else 10

    def fork_deepcopy() -> None:
        for _ in range(forks):
            deepcopy(world_server)

    captured = target._capture_world(world_server)

    def fork_state() -> None:
        for _ in range(forks):
            fork = target.make_server(request, populate=False)
            target._restore_world(fork, captured)

    micro = {
        "deepcopy": _best(fork_deepcopy, repeats),
        "capture_restore": _best(fork_state, repeats),
    }
    return {
        "scenarios": len(scenarios),
        "requests": requests,
        "campaign_sec": {k: round(v, 4) for k, v in timings.items()},
        "speedups": {
            "state_fork_vs_deepcopy": round(
                timings["deepcopy_fork"] / timings["state_fork"], 2
            ),
            "state_fork_vs_plain": round(timings["plain"] / timings["state_fork"], 2),
        },
        "fork_micro": {
            "forks": forks,
            "deepcopy_forks_per_sec": round(forks / micro["deepcopy"], 1),
            "capture_restore_forks_per_sec": round(
                forks / micro["capture_restore"], 1
            ),
            "speedup": round(micro["deepcopy"] / micro["capture_restore"], 2),
        },
    }


# ----------------------------------------------------------------------
# prefix trees: call-count variants of one site
# ----------------------------------------------------------------------
def bench_prefix_trees(workload: str, repeats: int) -> dict:
    target = MiniGitTarget()
    scenarios = []
    for function in ("read", "open", "close"):
        for nth in (1, 2, 3):
            for errno in ("EIO", "EINTR"):
                builder = ScenarioBuilder(f"{function}-{nth}-{errno}")
                builder.trigger("count", "CallCountTrigger", nth=nth)
                builder.inject(function, ["count"], return_value=-1, errno=errno)
                scenarios.append(builder.build())

    def campaign(share: bool) -> None:
        TestCampaign(target, workload=workload).run(
            scenarios, seed=5, include_baseline=False, share_prefixes=share
        )

    campaign(True)  # warm
    timings = {
        "plain": _best(lambda: campaign(False), repeats),
        "tree_shared": _best(lambda: campaign(True), repeats),
    }
    return {
        "scenarios": len(scenarios),
        "workload": workload,
        "sec": {k: round(v, 4) for k, v in timings.items()},
        "speedup": round(timings["plain"] / timings["tree_shared"], 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads for CI smoke runs")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool worker count for the fan-out sweep")
    parser.add_argument("--output", default="BENCH_prefix_parallel.json")
    args = parser.parse_args()

    repeats = 1 if args.smoke else 3
    workloads = ("status",) if args.smoke else ("default-tests", "status", "gc")
    requests = 8 if args.smoke else 40

    report = {
        "benchmark": "prefix_parallel",
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "mini_git_schedules": bench_mini_git_schedules(
            workloads, repeats, args.workers
        ),
        "mini_apache_fork": bench_apache_fork(requests, repeats),
        "prefix_trees": bench_prefix_trees(
            "status" if args.smoke else "default-tests", repeats
        ),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
