"""Fault-space exploration engine: coverage, strategies, resume, parallelism.

Not a table from the paper, but the §5/§7.1 machinery at scale: the
benchmark sweeps mini_bind's whole (call site x errno) space exhaustively,
compares the pruning strategies' budgets, and verifies the two systemic
properties the engine guarantees — a resumed exploration re-runs nothing,
and parallel explorations are bit-identical to serial ones.
"""

from repro.core.controller.controller import LFIController
from repro.core.exploration import (
    BoundarySampleStrategy,
    ExhaustiveStrategy,
    RandomSampleStrategy,
    ResultStore,
)
from repro.targets.mini_bind import MiniBindTarget


def _signature(report):
    return [
        (outcome.point.key, outcome.outcome.kind, outcome.injections, outcome.fingerprint)
        for outcome in report.outcomes
    ]


def test_exhaustive_exploration(benchmark, tmp_path):
    store_path = tmp_path / "bind-exploration.jsonl"

    def explore():
        controller = LFIController(MiniBindTarget())
        return controller.explore(
            strategy=ExhaustiveStrategy(),
            store=ResultStore(str(store_path)),
            seed=7,
        )

    report = benchmark.pedantic(explore, rounds=1, iterations=1)
    print()
    print(report.summary())

    # Exhaustive = every enumerated point exactly once.
    assert report.complete
    assert report.selected == report.space_size
    keys = [outcome.point.key for outcome in report.outcomes]
    assert len(keys) == len(set(keys))
    # The sweep exposes bind's planted unchecked-malloc/xml crashes.
    failing_functions = {failure.function for failure in report.unique_failures}
    assert "malloc" in failing_functions

    # Resume: a second exploration over the same store re-runs nothing.
    resumed = LFIController(MiniBindTarget()).explore(
        strategy=ExhaustiveStrategy(), store=ResultStore(str(store_path)), seed=7
    )
    assert resumed.executed == 0
    assert resumed.resumed == report.selected
    assert _signature(resumed) == _signature(report)

    # Parallel exploration is bit-identical to serial for the same seed.
    parallel = LFIController(MiniBindTarget(), parallelism="threads:4").explore(
        strategy=ExhaustiveStrategy(), seed=7
    )
    assert _signature(parallel) == _signature(report)

    # Pruning strategies trade budget for coverage, deterministically.
    boundary = LFIController(MiniBindTarget()).explore(
        strategy=BoundarySampleStrategy(), seed=7
    )
    sampled = LFIController(MiniBindTarget()).explore(
        strategy=RandomSampleStrategy(seed=3, fraction=0.25), seed=7
    )
    assert boundary.selected <= report.selected
    assert 0 < sampled.selected < report.selected
    again = LFIController(MiniBindTarget()).explore(
        strategy=RandomSampleStrategy(seed=3, fraction=0.25), seed=7
    )
    assert _signature(again) == _signature(sampled)
