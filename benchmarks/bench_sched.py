#!/usr/bin/env python3
"""Scheduling + memoization benchmark — writes ``BENCH_sched.json``.

Three measurements for the suffix-memo / cross-workload-reuse /
cost-adaptive-scheduling layer:

1. **resweep_memo** — a coverage-collecting mini_git sweep executed twice
   against one private :class:`SuffixMemo` on a fresh target instance:
   the cold pass builds every capture and runs every suffix, the warm
   pass answers every member from the memo.  The target (asserted in
   full mode) is a >= 5x warm-over-cold speedup.  Both passes, and the
   memo-off oracle they are compared against, must be bit-identical.
2. **cross_workload** — the same multi-workload smoke sweep on two
   targets that differ only in boot-template keying: one with the
   fixture-prefix scope (all workloads share one boot+fixture capture)
   and one pinned to the historical per-workload scope.  The speedup is
   what sharing the boot capture across ``status``/``commit``/``gc``/...
   buys on short sweeps, where boot cost is not amortised away.
3. **adaptive_sched** — a skewed group distribution (one large
   count×errno family that genuinely fires mid-workload, two medium
   families, singletons) planned with the static round-robin policy vs
   the cost-adaptive splitter.  Each batch is drained serially against a
   **fresh target instance** — process-shard semantics, every shard owns
   its caches — and the makespan is the slowest batch (robust on starved
   CI runners).  Adaptive must not lose, and on the skew it should win.

Every leg asserts bit-identical results against the memo-free serial
oracle, and a small campaignd fabric round trip (coordinator + worker in
process, batched results, group-aware leases) is checked against the same
oracle as well.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_sched.py [--smoke] \
        [--output BENCH_sched.json]

``--smoke`` shrinks the sweeps for CI; the JSON schema is identical.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from dataclasses import replace as dc_replace

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.controller.campaign import TestCampaign  # noqa: E402
from repro.core.controller.controller import LFIController  # noqa: E402
from repro.core.controller.executor import (  # noqa: E402
    estimate_group_cost,
    execute_group_batch,
    plan_group_batches,
)
from repro.core.controller.memo import SuffixMemo  # noqa: E402
from repro.core.controller.prefix import build_group_tasks  # noqa: E402
from repro.core.exploration.store import ResultStore  # noqa: E402
from repro.core.profiler.cache import artifact_cache_stats  # noqa: E402
from repro.core.scenario.builder import ScenarioBuilder  # noqa: E402
from repro.distributed.campaignd import CampaignCoordinator  # noqa: E402
from repro.distributed.client import CampaignClient  # noqa: E402
from repro.distributed.spec import CampaignSpec, build_engine  # noqa: E402
from repro.distributed.worker import CampaignWorker  # noqa: E402
from repro.targets.mini_git import MiniGitTarget  # noqa: E402


class PerWorkloadScopeMiniGit(MiniGitTarget):
    """mini_git with the historical per-workload boot-template keying.

    The cross-workload control: same binary, same workloads, but every
    workload boots its own template — exactly what the old key
    ``(workload, engine, fingerprint)`` produced.
    """

    def boot_scope(self, workload):
        return ("boot", workload)


def _fault_scenarios(target):
    controller = LFIController(target)
    analysis = controller.analyze_target()
    points = controller.fault_space(analysis=analysis, include_checked=True)
    return [point.scenario() for point in points]


def _observables(campaign):
    return [
        (o.scenario.name, o.outcome.kind.value, o.outcome.detail,
         o.outcome.exit_code, o.result.injections)
        for o in campaign.outcomes
    ]


# ----------------------------------------------------------------------
# 1. resweep_memo: warm memo vs cold
# ----------------------------------------------------------------------
def bench_resweep(scenario_cap, repeats) -> dict:
    scenarios = _fault_scenarios(MiniGitTarget())[:scenario_cap]

    def sweep(target, **options):
        campaign = TestCampaign(target, workload="default-tests")
        start = time.perf_counter()
        result = campaign.run(
            scenarios, seed=3, include_baseline=False,
            collect_coverage=True, **options
        )
        return time.perf_counter() - start, result

    _oracle_seconds, oracle = sweep(MiniGitTarget(), memo=False)
    reference = _observables(oracle)

    cold_seconds = warm_seconds = None
    stats = None
    for _ in range(repeats):
        # Fresh instance and memo per repeat: each cold pass pays its own
        # boot template and capture tree, exactly as a new campaign would.
        target = MiniGitTarget()
        memo = SuffixMemo()
        elapsed, cold = sweep(target, memo=memo)
        cold_seconds = min(cold_seconds or elapsed, elapsed)
        assert _observables(cold) == reference, "cold memoized sweep diverged"
        for _ in range(3):  # warm sweeps are cheap: take the best
            elapsed, warm = sweep(target, memo=memo)
            warm_seconds = min(warm_seconds or elapsed, elapsed)
            assert _observables(warm) == reference, "warm memoized sweep diverged"
        stats = memo.stats()
        assert stats.hits == 3 * len(scenarios), "warm passes must hit on every member"
    return {
        "runs": len(scenarios),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup_warm_vs_cold": round(cold_seconds / warm_seconds, 2),
        "memo_hits": stats.hits,
        "memo_stores": stats.stores,
        "memo_bytes": stats.current_bytes,
    }


# ----------------------------------------------------------------------
# 2. cross_workload: fixture-prefix boot scope vs per-workload scope
# ----------------------------------------------------------------------
def bench_cross_workload(workloads, scenario_cap, repeats) -> dict:
    scenarios = _fault_scenarios(MiniGitTarget())[:scenario_cap]

    def sweep(target):
        observed = []
        start = time.perf_counter()
        for workload in workloads:
            observed.append(
                _observables(
                    TestCampaign(target, workload=workload).run(
                        scenarios, seed=3, include_baseline=False,
                        memo=False, snapshots=True,
                    )
                )
            )
        return time.perf_counter() - start, observed

    shared_seconds = split_seconds = None
    reference = None
    boot = {}
    for _ in range(repeats):
        # Fresh instances per repeat: boot templates are keyed per target
        # instance, so each pass pays (and measures) its own boot builds.
        before = artifact_cache_stats()
        elapsed, observed = sweep(PerWorkloadScopeMiniGit())
        split_seconds = min(split_seconds or elapsed, elapsed)
        mid = artifact_cache_stats()
        elapsed, shared_observed = sweep(MiniGitTarget())
        shared_seconds = min(shared_seconds or elapsed, elapsed)
        after = artifact_cache_stats()
        boot = {
            "boot_misses_per_workload_scope": mid.boot_misses - before.boot_misses,
            "boot_misses_shared_scope": after.boot_misses - mid.boot_misses,
            "boot_shared_hits": after.boot_shared_hits - mid.boot_shared_hits,
        }
        if reference is None:
            reference = observed
        assert shared_observed == observed, (
            "shared-fixture boot templates changed sweep results"
        )
    assert boot["boot_misses_shared_scope"] == 1
    assert boot["boot_misses_per_workload_scope"] == len(workloads)
    return {
        "workloads": list(workloads),
        "runs": len(scenarios) * len(workloads),
        "per_workload_scope_seconds": round(split_seconds, 4),
        "shared_scope_seconds": round(shared_seconds, 4),
        "speedup_shared_vs_per_workload": round(split_seconds / shared_seconds, 2),
        **boot,
    }


# ----------------------------------------------------------------------
# 3. adaptive_sched: skewed groups, static vs adaptive makespan
# ----------------------------------------------------------------------
#: Every count in the big family genuinely fires on ``default-tests``
#: (malloc is called 7 times there), so each member pays a real suffix.
_FAMILY_ERRNOS = (
    "ENOMEM", "EAGAIN", "EINTR", "EIO", "ENOSPC", "EACCES", "EFAULT",
    "EINVAL", "ENFILE", "EMFILE", "ENODEV", "EPERM", "ENOENT", "EBADF",
    "EROFS", "EISDIR",
)


def _fault_family(function, counts, errnos, return_value):
    scenarios = []
    for nth in counts:
        for errno in errnos:
            builder = ScenarioBuilder(f"{function}-{nth}-{errno}")
            builder.trigger("count", "CallCountTrigger", nth=nth)
            builder.inject(function, ["count"], return_value=return_value,
                           errno=errno)
            scenarios.append(builder.build())
    return scenarios


def _skewed_scenarios(family_errnos):
    return (
        _fault_family("malloc", range(1, 8), family_errnos, 0)
        + _fault_family("open", range(1, 6), ("EACCES", "ENOENT"), -1)
        + _fault_family("close", range(1, 6), ("EIO",), -1)
        + _fault_family("write", range(1, 4), ("ENOSPC",), -1)
    )


def bench_adaptive(shards, family_errnos, repeats) -> dict:
    scenarios = _skewed_scenarios(family_errnos)
    entries = [(index, s, None) for index, s in enumerate(scenarios)]
    options = {"memo": False, "snapshots": True}

    def make_tasks():
        return build_group_tasks(
            MiniGitTarget(), "default-tests", entries, options=options
        )

    ref_tasks = make_tasks()
    family_size = max(len(task.entries) for task in ref_tasks)

    def drain(policy, timed=True):
        batches = plan_group_batches(ref_tasks, shards, policy=policy)
        merged = {}
        makespan = 0.0
        for batch in batches:
            # Each batch gets a fresh target instance: process-shard
            # semantics, where every shard owns its boot/capture caches.
            by_index = {task.index: task for task in make_tasks()}
            fallback = MiniGitTarget()
            fresh = dc_replace(batch, groups=[
                dc_replace(group, target=by_index[group.index].target
                           if group.index in by_index else fallback)
                for group in batch.groups
            ])
            start = time.perf_counter()
            merged.update(execute_group_batch(fresh))
            makespan = max(makespan, time.perf_counter() - start)
        signature = [
            (merged[i].outcome.kind.value, merged[i].outcome.detail,
             merged[i].injections)
            for i in sorted(merged)
        ]
        return makespan, signature, batches

    drain("static")  # warm process-global caches (predecode, profiles)
    static_makespan = adaptive_makespan = None
    static_signature = adaptive_signature = None
    static_batches = adaptive_batches = None
    for _ in range(repeats):
        makespan, static_signature, static_batches = drain("static")
        static_makespan = min(static_makespan or makespan, makespan)
        makespan, adaptive_signature, adaptive_batches = drain("adaptive")
        adaptive_makespan = min(adaptive_makespan or makespan, makespan)
    assert static_signature == adaptive_signature, (
        "adaptive schedule changed sweep results"
    )
    fired = sum(1 for kind, _detail, injections in static_signature if injections)

    def modeled_makespan(batches):
        return max(
            sum(estimate_group_cost(group) for group in batch.groups)
            for batch in batches
        )

    return {
        "shards": shards,
        "groups": len(ref_tasks),
        "largest_family": family_size,
        "runs": len(scenarios),
        "injections_fired": fired,
        "static_makespan_seconds": round(static_makespan, 4),
        "adaptive_makespan_seconds": round(adaptive_makespan, 4),
        "speedup_adaptive_vs_static": round(
            static_makespan / adaptive_makespan, 2
        ),
        "modeled_static_makespan": round(modeled_makespan(static_batches), 2),
        "modeled_adaptive_makespan": round(modeled_makespan(adaptive_batches), 2),
    }


# ----------------------------------------------------------------------
# 4. fabric_check: the same oracle through campaignd
# ----------------------------------------------------------------------
def check_fabric(tmp_store) -> dict:
    spec_kwargs = dict(
        target="mini_git", workload="status", seed=7, functions=["close"],
    )
    engine, points = build_engine(
        CampaignSpec(**spec_kwargs), store=ResultStore()
    )
    reference = [
        (engine.run_key(o.point), o.outcome.kind.value, o.outcome.detail,
         o.injections, o.fingerprint, o.run_seed)
        for o in engine.explore(points).outcomes
    ]

    coordinator = CampaignCoordinator(port=0, shard_size=4)
    address = coordinator.start()
    client = CampaignClient(address)
    worker = CampaignWorker(address, worker_id="bench", result_batch_size=4)
    try:
        reply = client.submit(CampaignSpec(store_path=tmp_store, **spec_kwargs))
        while worker.run_once():
            pass
        status = client.status(reply["campaign_id"])
        records = client.results(reply["campaign_id"])
    finally:
        client.close()
        worker.close()
        coordinator.stop()
    fabric = [
        (r["key"], r["outcome"], r["detail"], r["injections"],
         r["fingerprint"], r["run_seed"])
        for r in records
    ]
    assert status["state"] == "complete"
    assert fabric == reference, "fabric results diverged from serial oracle"
    return {
        "records": len(records),
        "identical_to_serial": True,
        "batched_messages": True,
        "worker_cache_stats": status.get("cache", {}),
    }


# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="shrink for CI")
    parser.add_argument("--output", default="BENCH_sched.json")
    args = parser.parse_args()

    if args.smoke:
        scenario_cap, cross_cap = 48, 4
        workloads = ("status", "commit", "gc")
        # The family must stay large even in smoke: splitting only beats
        # round-robin when suffix work dominates per-batch fixed costs.
        family_errnos, repeats = _FAMILY_ERRNOS, 1
    else:
        scenario_cap, cross_cap = 200, 4
        workloads = ("default-tests", "status", "commit", "merge", "gc")
        family_errnos, repeats = _FAMILY_ERRNOS, 3

    with tempfile.TemporaryDirectory() as tmp:
        payload = {
            "benchmark": "sched",
            "mode": "smoke" if args.smoke else "full",
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
            "resweep_memo": bench_resweep(scenario_cap, max(repeats, 2)),
            "cross_workload": bench_cross_workload(workloads, cross_cap, max(repeats, 2)),
            "adaptive_sched": bench_adaptive(4, family_errnos, repeats),
            "fabric_check": check_fabric(os.path.join(tmp, "bench_sched.jsonl")),
        }

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    resweep = payload["resweep_memo"]
    cross = payload["cross_workload"]
    adaptive = payload["adaptive_sched"]
    print(f"resweep_memo: cold {resweep['cold_seconds']}s, warm "
          f"{resweep['warm_seconds']}s -> {resweep['speedup_warm_vs_cold']}x "
          f"({resweep['memo_hits']} hits)")
    print(f"cross_workload ({len(cross['workloads'])} workloads): "
          f"per-workload boots {cross['per_workload_scope_seconds']}s, shared "
          f"boot {cross['shared_scope_seconds']}s -> "
          f"{cross['speedup_shared_vs_per_workload']}x "
          f"({cross['boot_misses_shared_scope']} boot build vs "
          f"{cross['boot_misses_per_workload_scope']})")
    print(f"adaptive_sched: static makespan "
          f"{adaptive['static_makespan_seconds']}s, adaptive "
          f"{adaptive['adaptive_makespan_seconds']}s -> "
          f"{adaptive['speedup_adaptive_vs_static']}x on "
          f"{adaptive['groups']} groups (largest family "
          f"{adaptive['largest_family']}, {adaptive['injections_fired']} "
          f"of {adaptive['runs']} runs fired)")
    print(f"fabric_check: {payload['fabric_check']['records']} records "
          f"bit-identical through campaignd")
    print(f"wrote {args.output}")

    below = []
    if resweep["speedup_warm_vs_cold"] < 5.0:
        below.append("warm memo re-sweep below the 5x target")
    if cross["speedup_shared_vs_per_workload"] < 1.0:
        below.append("cross-workload sharing slower than per-workload boots")
    if adaptive["speedup_adaptive_vs_static"] < 1.0:
        below.append("adaptive scheduling slower than static round-robin")
    for line in below:
        print(f"WARNING: {line}", file=sys.stderr)
    if below and not args.smoke:
        # Smoke runs on shared CI runners are noisy: warn without failing
        # so the trajectory artifact still gets uploaded.
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
