#!/usr/bin/env python3
"""VM execution-engine speed benchmark — writes ``BENCH_vm.json``.

Three measurements, each comparing or exercising the predecoded
closure-threaded engine (``engine="compiled"``, the default) against the
reference decode-as-you-go interpreter:

1. **micro** — raw VM steps/sec on a tight arithmetic/memory loop, per
   engine.  This is the headline number: the compiled engine must clear
   2x the reference engine's throughput.
2. **mini_git end-to-end** — complete workload runs/sec through a
   :class:`CompiledTarget` (compile → gate → VM → oracle), per engine,
   under an armed injection scenario.
3. **mini_apache campaign** — runs/sec of the Python-level overhead target
   (no VM, but every call crosses the interception gate), tracking the
   gate fast-path/hoisting work.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_vm_speed.py [--smoke] [--output BENCH_vm.json]

``--smoke`` shrinks the workloads for CI; the JSON schema is identical, so
the perf trajectory accumulates across runs either way.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.controller.target import WorkloadRequest  # noqa: E402
from repro.core.scenario.builder import ScenarioBuilder  # noqa: E402
from repro.minicc import compile_source  # noqa: E402
from repro.targets.mini_apache.target import MiniApacheTarget  # noqa: E402
from repro.targets.mini_git import MiniGitTarget  # noqa: E402
from repro.vm import Machine  # noqa: E402

ENGINES = ("reference", "compiled")

MICRO_SOURCE = """
int main(int n) {
    int i; int acc; int buf[8];
    acc = 0;
    i = 0;
    while (i < n) {
        buf[i % 8] = acc + i;
        acc = acc + buf[i % 8] * 2 - (i / 3);
        if (acc > 100000) { acc = acc % 9973; }
        i = i + 1;
    }
    return acc % 251;
}
"""


def bench_micro(iterations: int, repeats: int) -> dict:
    """Steps/sec per engine on the tight loop; best of *repeats*."""
    binary = compile_source(MICRO_SOURCE, name="bench_hot")
    results = {}
    steps = None
    for engine in ENGINES:
        best = 0.0
        for _ in range(repeats):
            machine = Machine(binary, engine=engine, max_steps=500_000_000)
            start = time.perf_counter()
            status = machine.run(args=(iterations,))
            elapsed = time.perf_counter() - start
            if steps is None:
                steps = status.steps
            assert status.steps == steps, "engines must execute identical step counts"
            best = max(best, status.steps / elapsed)
        results[engine] = {"steps_per_sec": round(best, 1)}
    results["steps"] = steps
    results["speedup"] = round(
        results["compiled"]["steps_per_sec"] / results["reference"]["steps_per_sec"], 2
    )
    return results


def _git_scenario():
    return (
        ScenarioBuilder("bench")
        .trigger("late_malloc", "CallCountTrigger", nth=50)
        .inject("malloc", ["late_malloc"], return_value=0, errno="ENOMEM")
        .build()
    )


def bench_mini_git(runs: int) -> dict:
    """End-to-end workload runs/sec through the compiled mini_git target."""
    scenario = _git_scenario()
    results = {}
    for engine in ENGINES:
        target = MiniGitTarget()
        target.binary()  # compile outside the timed region (shared cache)
        start = time.perf_counter()
        for index in range(runs):
            request = WorkloadRequest(
                workload="default-tests",
                scenario=scenario,
                options={"engine": engine, "run_seed": index},
            )
            target.run(request)
        elapsed = time.perf_counter() - start
        results[engine] = {"runs_per_sec": round(runs / elapsed, 2)}
    results["runs"] = runs
    results["speedup"] = round(
        results["compiled"]["runs_per_sec"] / results["reference"]["runs_per_sec"], 2
    )
    return results


def bench_mini_apache(runs: int, requests: int) -> dict:
    """Campaign throughput of the Python-level interception-heavy target."""
    scenario = (
        ScenarioBuilder("bench")
        .trigger("late_read", "CallCountTrigger", nth=10_000_000)
        .inject("apr_file_read", ["late_read"], return_value=-1, errno="EIO")
        .build()
    )
    target = MiniApacheTarget()
    start = time.perf_counter()
    calls = 0
    for index in range(runs):
        request = WorkloadRequest(
            workload=target.workloads()[0],
            scenario=scenario,
            options={"requests": requests, "run_seed": index},
        )
        result = target.run(request)
        calls += result.stats["library_calls"]
    elapsed = time.perf_counter() - start
    return {
        "runs": runs,
        "requests_per_run": requests,
        "runs_per_sec": round(runs / elapsed, 2),
        "library_calls_per_sec": round(calls / elapsed, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads for CI; identical JSON schema")
    parser.add_argument("--output", default="BENCH_vm.json",
                        help="where to write the JSON result (default: BENCH_vm.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        micro_iterations, micro_repeats = 6_000, 2
        git_runs, apache_runs, apache_requests = 3, 2, 60
    else:
        micro_iterations, micro_repeats = 60_000, 3
        git_runs, apache_runs, apache_requests = 12, 5, 300

    payload = {
        "benchmark": "vm_speed",
        "mode": "smoke" if args.smoke else "full",
        "python": sys.version.split()[0],
        "micro": bench_micro(micro_iterations, micro_repeats),
        "mini_git_e2e": bench_mini_git(git_runs),
        "mini_apache_campaign": bench_mini_apache(apache_runs, apache_requests),
    }

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    micro = payload["micro"]
    print(f"micro: reference {micro['reference']['steps_per_sec']:,.0f} steps/s, "
          f"compiled {micro['compiled']['steps_per_sec']:,.0f} steps/s "
          f"({micro['speedup']}x)")
    git = payload["mini_git_e2e"]
    print(f"mini_git e2e: reference {git['reference']['runs_per_sec']} runs/s, "
          f"compiled {git['compiled']['runs_per_sec']} runs/s ({git['speedup']}x)")
    apache = payload["mini_apache_campaign"]
    print(f"mini_apache campaign: {apache['runs_per_sec']} runs/s "
          f"({apache['library_calls_per_sec']:,.0f} library calls/s)")
    print(f"wrote {args.output}")

    if micro["speedup"] < 2.0:
        # Smoke runs are tiny and shared CI runners are noisy: warn without
        # failing the job so the trajectory artifact still gets uploaded.
        # Full runs are long enough for the threshold to be meaningful.
        print("WARNING: compiled engine below the 2x target", file=sys.stderr)
        return 0 if args.smoke else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
