"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's evaluation
(§7) using the experiment harnesses in :mod:`repro.experiments`, prints the
reproduced rows, and asserts the qualitative properties that should carry
over from the paper (who wins, rough factors, orderings).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
