"""Table 3 — automated improvement in recovery-code coverage."""

from repro.experiments import table3_coverage


def test_table3_coverage(benchmark):
    result = benchmark.pedantic(table3_coverage.run, rounds=1, iterations=1)
    print()
    print(result)

    by_system = {row["system"]: row for row in result.rows}
    assert set(by_system) == {"mini_git", "mini_bind"}

    for row in result.rows:
        # LFI must add recovery coverage without any new tests...
        assert row["additional recovery code covered"] > 0.30
        assert row["additional LOC covered by LFI"] > 0
        # ...and total coverage must improve, with and without staying sane.
        assert row["total coverage with LFI"] > row["total coverage without LFI"]
        assert 0.0 < row["total coverage without LFI"] < 1.0
        assert row["total coverage with LFI"] <= 1.0
