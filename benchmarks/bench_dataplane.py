#!/usr/bin/env python3
"""Dataplane execution-core benchmark — writes ``BENCH_dataplane.json``.

Three measurements for the PR 6 dataplane (superclosure block batching,
coverage-off hot loops, the delta result channel, run-to-completion group
draining):

1. **vm_micro** — raw VM steps/sec on a tight loop for all three engines
   (``reference``, ``compiled-steps``, ``compiled``), with coverage
   tracking off and on.  ``compiled`` vs ``compiled-steps`` isolates the
   superclosure win; the coverage-off column isolates the hot-loop win.
2. **pooled_campaign** — the headline: the PR 5 benchmark's pooled
   shared-campaign sweep (``bench_prefix_parallel.py``'s ``group_fanout``
   leg — mini_git, every fault-space scenario, one campaign per workload)
   re-run through today's pooled path on a resident worker pool, divided
   by the PR 5 number recorded in the committed
   ``BENCH_prefix_parallel.json`` from the same runner.
   ``dataplane_vs_pr5_pooled`` is that ratio; the target is >= 2x.
   Alongside it: the same sweep with PR 5's pool-per-campaign methodology
   (``dataplane_cold_pools``), the serial shared reference, and the PR 5
   *configuration* (per-instruction engine, round trip per group,
   full-state results) emulated on today's executor
   (``emulated_pr5_pooled``) as the like-for-like control.
3. **wire_bytes** — the delta channel's wire form: pickled size of one
   run's published result on the delta channel vs the full-state channel.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_dataplane.py [--smoke] \
        [--workers N] [--output BENCH_dataplane.json]

``--smoke`` shrinks the workloads for CI; the JSON schema is identical, so
the perf trajectory accumulates across runs either way.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.controller.campaign import TestCampaign  # noqa: E402
from repro.core.controller.controller import LFIController  # noqa: E402
from repro.core.controller.executor import (  # noqa: E402
    ProcessPoolBackend,
    derive_run_seed,
)
from repro.core.controller.prefix import build_group_tasks  # noqa: E402
from repro.core.controller.target import WorkloadRequest  # noqa: E402
from repro.core.scenario.builder import ScenarioBuilder  # noqa: E402
from repro.coverage.tracker import CoverageTracker  # noqa: E402
from repro.minicc import compile_source  # noqa: E402
from repro.targets.mini_git import MiniGitTarget  # noqa: E402
from repro.vm import Machine  # noqa: E402

ENGINES = ("reference", "compiled-steps", "compiled")

MICRO_SOURCE = """
int main(int n) {
    int i; int acc; int buf[8];
    acc = 0;
    i = 0;
    while (i < n) {
        buf[i % 8] = acc + i;
        acc = acc + buf[i % 8] * 2 - (i / 3);
        if (acc > 100000) { acc = acc % 9973; }
        i = i + 1;
    }
    return acc % 251;
}
"""


# ----------------------------------------------------------------------
# 1. vm_micro: three engines x coverage off/on
# ----------------------------------------------------------------------
def bench_vm_micro(iterations: int, repeats: int) -> dict:
    binary = compile_source(MICRO_SOURCE, name="bench_dataplane_hot")
    results = {}
    steps = None
    for engine in ENGINES:
        row = {}
        for label, with_coverage in (("plain", False), ("coverage", True)):
            best = 0.0
            for _ in range(repeats):
                tracker = CoverageTracker() if with_coverage else None
                machine = Machine(binary, engine=engine, coverage=tracker,
                                  max_steps=500_000_000)
                start = time.perf_counter()
                status = machine.run(args=(iterations,))
                elapsed = time.perf_counter() - start
                if steps is None:
                    steps = status.steps
                assert status.steps == steps, \
                    "engines must execute identical step counts"
                best = max(best, status.steps / elapsed)
            row[f"steps_per_sec_{label}"] = round(best, 1)
        results[engine] = row
    results["steps"] = steps
    results["speedups"] = {
        "superclosures_vs_steps_plain": round(
            results["compiled"]["steps_per_sec_plain"]
            / results["compiled-steps"]["steps_per_sec_plain"], 2
        ),
        "superclosures_vs_steps_coverage": round(
            results["compiled"]["steps_per_sec_coverage"]
            / results["compiled-steps"]["steps_per_sec_coverage"], 2
        ),
        "compiled_vs_reference_plain": round(
            results["compiled"]["steps_per_sec_plain"]
            / results["reference"]["steps_per_sec_plain"], 2
        ),
        "coverage_off_win_compiled": round(
            results["compiled"]["steps_per_sec_plain"]
            / results["compiled"]["steps_per_sec_coverage"], 2
        ),
    }
    return results


# ----------------------------------------------------------------------
# 2. pooled_campaign: the PR 5 recorded baseline vs the dataplane
# ----------------------------------------------------------------------
def _fault_scenarios(target):
    controller = LFIController(target)
    analysis = controller.analyze_target()
    points = controller.fault_space(analysis=analysis, include_checked=True)
    return [point.scenario() for point in points]


def load_pr5_baseline() -> tuple:
    """The PR 5 ``BENCH_prefix_parallel.json``, preferring the committed copy.

    CI runs ``bench_prefix_parallel.py`` (which overwrites the workspace
    file with a fresh post-dataplane measurement) before this benchmark, so
    the committed artifact — recorded by the PR 5 code on this runner — is
    the one that actually represents the PR 5 baseline.
    """
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    name = "BENCH_prefix_parallel.json"
    try:
        import subprocess

        show = subprocess.run(
            ["git", "show", f"HEAD:{name}"],
            cwd=root, capture_output=True, text=True, timeout=30,
        )
        if show.returncode == 0:
            return json.loads(show.stdout), "git:HEAD"
    except (OSError, ValueError, subprocess.SubprocessError):
        pass
    try:
        with open(os.path.join(root, name), "r", encoding="utf-8") as handle:
            return json.load(handle), "worktree"
    except (OSError, ValueError):
        return None, None


def bench_pooled_campaign(repeats: int, workers: int) -> dict:
    """Reproduce the PR 5 benchmark's pooled shared-campaign sweep.

    The sweep shape is ``bench_prefix_parallel.py``'s ``group_fanout`` leg
    — one shared-prefix campaign per mini_git workload over the full
    fault-space scenario set, seed 3 — so today's throughput lands in the
    same units as the recorded PR 5 number.  Three schedules:

    * ``serial_shared`` — the non-pooled reference.
    * ``dataplane_pooled`` — today's pooled path (superclosures, batch
      draining, delta results) on a **resident** pool: run-to-completion
      workers stay warm across campaigns, which is the dataplane's
      steady-state shape.  This is the headline numerator.
    * ``dataplane_cold_pools`` — the same path but with a pool created and
      torn down per campaign, matching the PR 5 benchmark's methodology
      (its recorded number also paid that churn); reported so the resident
      headline cannot hide pool start-up costs.
    * ``emulated_pr5_pooled`` — the PR 5 *configuration* re-run on today's
      executor (per-instruction closure engine, one pool round trip per
      group, full-state results) on the same resident pool: the
      like-for-like control when the recorded artifact is unavailable.
    """
    baseline, baseline_source = load_pr5_baseline()
    schedules = (baseline or {}).get("mini_git_schedules")
    if schedules:
        workloads = tuple(schedules["workloads"])
        pr5_runs_per_sec = schedules["runs_per_sec"]["group_fanout"]
        pr5_serial_runs_per_sec = schedules["runs_per_sec"].get("serial_shared")
    else:
        workloads = ("default-tests", "status", "gc")
        pr5_runs_per_sec = pr5_serial_runs_per_sec = None

    target = MiniGitTarget()
    scenarios = _fault_scenarios(target)
    runs = len(scenarios) * len(workloads)

    def campaign_sweep(parallelism) -> None:
        for workload in workloads:
            TestCampaign(target, workload=workload).run(
                scenarios, seed=3, include_baseline=False,
                share_prefixes=True, parallelism=parallelism,
            )

    def pr5_config_sweep(backend) -> None:
        # The PR 5 configuration, driven at the executor layer (the
        # campaign entry point no longer exposes per-group scheduling).
        for workload in workloads:
            entries = [
                (index, scenario, derive_run_seed(3, index))
                for index, scenario in enumerate(scenarios)
            ]
            tasks = build_group_tasks(
                target, workload, entries,
                options={"engine": "compiled-steps", "os_channel": "full"},
            )
            collected = {}
            for results in backend.run_groups(tasks):
                collected.update(results)
            assert len(collected) == len(scenarios)

    campaign_sweep(None)  # warm binaries, templates, analysis caches
    # The resident pool forks *after* the warm-up so workers inherit the
    # warm caches — the steady state a long-running campaign runs in.
    pool = ProcessPoolBackend(workers)
    try:
        campaign_sweep(pool)
        pr5_config_sweep(pool)
        timings = {}
        measurements = {
            "serial_shared": lambda: campaign_sweep(None),
            "dataplane_pooled": lambda: campaign_sweep(pool),
            "dataplane_cold_pools": lambda: campaign_sweep(f"processes:{workers}"),
            "emulated_pr5_pooled": lambda: pr5_config_sweep(pool),
        }
        for name, sweep in measurements.items():
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                sweep()
                best = min(best, time.perf_counter() - start)
            timings[name] = best
    finally:
        pool.close()

    runs_per_sec = {
        name: round(runs / seconds, 1) for name, seconds in timings.items()
    }
    speedups = {
        "dataplane_vs_emulated_pr5_pooled": round(
            timings["emulated_pr5_pooled"] / timings["dataplane_pooled"], 2
        ),
    }
    if pr5_runs_per_sec:
        raw = runs_per_sec["dataplane_pooled"] / pr5_runs_per_sec
        speedups["dataplane_vs_pr5_pooled_raw"] = round(raw, 2)
        speedups["cold_pools_vs_pr5_pooled"] = round(
            runs_per_sec["dataplane_cold_pools"] / pr5_runs_per_sec, 2
        )
        # The PR 5 artifact was recorded in an earlier session on this
        # (shared, drifting-speed) runner.  Both artifacts time the same
        # serial shared-prefix sweep, so its ratio measures how fast the
        # host was *then* relative to *now* and cancels that drift out of
        # the headline.  Conservative: today's serial sweep also carries
        # the dataplane serial gains, which only shrinks the ratio.
        if pr5_serial_runs_per_sec and runs_per_sec.get("serial_shared"):
            host_scale = (
                runs_per_sec["serial_shared"] / pr5_serial_runs_per_sec
            )
            speedups["host_speed_scale"] = round(host_scale, 3)
            speedups["dataplane_vs_pr5_pooled"] = round(raw / host_scale, 2)
        else:
            speedups["dataplane_vs_pr5_pooled"] = round(raw, 2)
    else:
        # No recorded artifact: the emulated configuration is the only
        # available baseline, so it becomes the headline denominator.
        speedups["dataplane_vs_pr5_pooled"] = speedups[
            "dataplane_vs_emulated_pr5_pooled"
        ]
    return {
        "target": target.name,
        "scenarios": len(scenarios),
        "workloads": list(workloads),
        "runs": runs,
        "workers": workers,
        "pr5_baseline": {
            "source": baseline_source,
            "group_fanout_runs_per_sec": pr5_runs_per_sec,
            "workers": schedules.get("workers") if schedules else None,
        },
        "runs_per_sec": runs_per_sec,
        "speedups": speedups,
    }


# ----------------------------------------------------------------------
# 3. wire_bytes: the delta channel's pickled result size
# ----------------------------------------------------------------------
def bench_wire_bytes() -> dict:
    target = MiniGitTarget()
    scenario = (
        ScenarioBuilder("bench-wire")
        .trigger("second_open", "CallCountTrigger", nth=2)
        .inject("open", ["second_open"], return_value=-1, errno="EMFILE")
        .build()
    )

    def result_bytes(channel: str) -> int:
        result = target.run(WorkloadRequest(
            workload="status", scenario=scenario,
            options={"os_channel": channel},
        ))
        return len(pickle.dumps(result))

    full = result_bytes("full")
    delta = result_bytes("delta")
    return {
        "full_channel_bytes": full,
        "delta_channel_bytes": delta,
        "shrink": round(full / delta, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads for CI; identical JSON schema")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool worker count for the campaign sweep")
    parser.add_argument("--output", default="BENCH_dataplane.json",
                        help="where to write the JSON result")
    args = parser.parse_args(argv)

    if args.smoke:
        micro_iterations, micro_repeats, campaign_repeats = 6_000, 2, 2
    else:
        micro_iterations, micro_repeats, campaign_repeats = 60_000, 3, 3

    payload = {
        "benchmark": "dataplane",
        "mode": "smoke" if args.smoke else "full",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "vm_micro": bench_vm_micro(micro_iterations, micro_repeats),
        "pooled_campaign": bench_pooled_campaign(campaign_repeats, args.workers),
        "wire_bytes": bench_wire_bytes(),
    }

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    micro = payload["vm_micro"]
    print("vm_micro (steps/s, plain | coverage):")
    for engine in ENGINES:
        row = micro[engine]
        print(f"  {engine:>15}: {row['steps_per_sec_plain']:>12,.0f} | "
              f"{row['steps_per_sec_coverage']:>12,.0f}")
    print(f"  superclosures vs per-step closures: "
          f"{micro['speedups']['superclosures_vs_steps_plain']}x plain, "
          f"{micro['speedups']['superclosures_vs_steps_coverage']}x with coverage")
    campaign = payload["pooled_campaign"]
    print("pooled_campaign (runs/s):")
    for name, value in campaign["runs_per_sec"].items():
        print(f"  {name:>20}: {value}")
    pr5 = campaign["pr5_baseline"]
    if pr5["group_fanout_runs_per_sec"]:
        print(f"  PR 5 recorded group_fanout ({pr5['source']}): "
              f"{pr5['group_fanout_runs_per_sec']}")
    headline = campaign["speedups"]["dataplane_vs_pr5_pooled"]
    raw = campaign["speedups"].get("dataplane_vs_pr5_pooled_raw")
    scale = campaign["speedups"].get("host_speed_scale")
    if raw is not None and scale is not None:
        print(f"  dataplane vs PR 5 pooled: {headline}x "
              f"(raw {raw}x at host speed scale {scale})")
    else:
        print(f"  dataplane vs PR 5 pooled: {headline}x")
    wire = payload["wire_bytes"]
    print(f"wire_bytes: full {wire['full_channel_bytes']:,} B, "
          f"delta {wire['delta_channel_bytes']:,} B ({wire['shrink']}x smaller)")
    print(f"wrote {args.output}")

    if headline < 2.0:
        # Smoke runs are tiny and shared CI runners are noisy: warn without
        # failing the job so the trajectory artifact still gets uploaded.
        print("WARNING: dataplane below the 2x pooled-campaign target",
              file=sys.stderr)
        return 0 if args.smoke else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
