"""Table 6 — MySQL throughput with 1-4 triggers on fcntl (overhead)."""

from repro.experiments import table6_mysql_overhead


def test_table6_mysql_overhead(benchmark):
    result = benchmark.pedantic(
        table6_mysql_overhead.run,
        kwargs={"transactions": 300, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    baseline = result.rows[0]
    four = result.rows[-1]
    assert baseline["read-only (txns/s)"] > baseline["read/write (txns/s)"] * 0.9
    # The paper measures <5% slowdown; allow some slack for the pure-Python
    # runtime but require the shape: small degradation, nowhere near 2x.
    assert four["read-only (txns/s)"] > 0.75 * baseline["read-only (txns/s)"]
    assert four["read/write (txns/s)"] > 0.75 * baseline["read/write (txns/s)"]
    for row in result.rows[1:]:
        assert row["read-only slowdown"] < 0.25
        assert row["read/write slowdown"] < 0.25
