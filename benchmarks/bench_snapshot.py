#!/usr/bin/env python3
"""Forkserver snapshot/restore benchmark — writes ``BENCH_snapshot.json``.

Measures the boot-amortized campaign throughput of the snapshot engine
(PR 4) against the PR 3 rebuild path, which rebuilt the OS fixture, libc,
and machine for every scenario run:

1. **mini_git campaign sweep** — the automatic-testing shape (every
   analyzer fault-space scenario x every workload), rebuild path
   (``snapshots=False, share_prefixes=False``) vs the snapshot engine
   (boot-template restore + copy-on-write rewinds + prefix-sharing
   scheduler with instruction-level mid-run resume).  The headline
   campaign number: must clear 2x.
2. **mini_git exploration** — the same comparison through
   ``LFIController.explore`` (fault-space exploration with result-store
   checkpointing).
3. **mini_apache trigger campaign** — the paper's §7.4/Table 5
   methodology: per-call-site trigger compositions evaluated observe-only
   under ``ab``, where the prefix-sharing scheduler collapses each
   scenario family onto one probe run.  Must clear 2x.  An *injecting*
   variant of the same campaign is reported alongside (its runs diverge at
   the fault, so only the pre-trigger prefix is shareable via the
   deepcopy fork path).
4. **boot restore micro** — restores/sec of a boot template vs fresh
   session builds, plus the dirty-word count a restore actually rewinds.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_snapshot.py [--smoke] [--output BENCH_snapshot.json]

``--smoke`` shrinks the workloads for CI; the JSON schema is identical, so
the perf trajectory accumulates across runs either way.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.controller.campaign import TestCampaign  # noqa: E402
from repro.core.controller.controller import LFIController  # noqa: E402
from repro.core.controller.prefix import run_scenarios_shared  # noqa: E402
from repro.core.controller.target import WorkloadRequest  # noqa: E402
from repro.core.exploration.store import ResultStore  # noqa: E402
from repro.core.scenario.builder import ScenarioBuilder  # noqa: E402
from repro.targets.mini_apache.target import MiniApacheTarget  # noqa: E402
from repro.targets.mini_git import MiniGitTarget  # noqa: E402


# ----------------------------------------------------------------------
# mini_git: campaign sweep + exploration
# ----------------------------------------------------------------------
def _git_fixture():
    target = MiniGitTarget()
    controller = LFIController(target)
    analysis = controller.analyze_target()
    points = controller.fault_space(analysis=analysis, include_checked=True)
    scenarios = [point.scenario() for point in points]
    return target, controller, analysis, scenarios


def bench_mini_git_campaign(workloads, repeats: int) -> dict:
    target, _controller, _analysis, scenarios = _git_fixture()

    def sweep(snapshots: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for workload in workloads:
                TestCampaign(target, workload=workload).run(
                    scenarios, seed=3, include_baseline=False,
                    share_prefixes=snapshots, snapshots=snapshots,
                )
            best = min(best, time.perf_counter() - start)
        return best

    sweep(True)  # warm caches + boot templates outside the timed region
    runs = len(scenarios) * len(workloads)
    rebuild = sweep(False)
    snapshot = sweep(True)
    return {
        "scenarios": len(scenarios),
        "workloads": list(workloads),
        "runs": runs,
        "rebuild": {"runs_per_sec": round(runs / rebuild, 1)},
        "snapshot": {"runs_per_sec": round(runs / snapshot, 1)},
        "speedup": round(rebuild / snapshot, 2),
    }


def bench_mini_git_exploration(workload: str, repeats: int) -> dict:
    target, controller, analysis, _scenarios = _git_fixture()

    def explore(snapshots: bool) -> tuple:
        best = float("inf")
        executed = 0
        for _ in range(repeats):
            start = time.perf_counter()
            report = controller.explore(
                store=ResultStore(), workload=workload, seed=3,
                analysis=analysis, include_checked=True,
                share_prefixes=snapshots,
                request_options={"snapshots": snapshots},
            )
            best = min(best, time.perf_counter() - start)
            executed = report.executed
        return executed, best

    explore(True)  # warm
    runs, rebuild = explore(False)
    _, snapshot = explore(True)
    return {
        "workload": workload,
        "runs": runs,
        "rebuild": {"runs_per_sec": round(runs / rebuild, 1)},
        "snapshot": {"runs_per_sec": round(runs / snapshot, 1)},
        "speedup": round(rebuild / snapshot, 2),
    }


# ----------------------------------------------------------------------
# mini_apache: §7.4-style per-call-site trigger campaigns
# ----------------------------------------------------------------------
#: (caller frame, library function, error return, errnos) — the per-site
#: scenario families an analyzer sweep produces for the Apache analog.
_APACHE_SITES = [
    ("map_to_storage", "apr_stat", -1, ["ENOENT", "EACCES", "EIO"]),
    ("_read_whole_file", "open", -1, ["ENOENT", "EACCES", "EMFILE", "EINTR"]),
    ("_read_whole_file", "apr_file_read", -1, ["EIO", "EINTR", "EAGAIN"]),
    ("_read_whole_file", "close", -1, ["EBADF", "EIO", "EINTR"]),
    ("php_handler", "apr_file_read", -1, ["EIO", "EINTR", "EAGAIN"]),
    ("php_handler", "malloc", 0, ["ENOMEM"]),
    ("log_request", "open", -1, ["ENOENT", "EACCES", "EMFILE"]),
    ("log_request", "write", -1, ["EIO", "ENOSPC", "EAGAIN"]),
    ("log_request", "close", -1, ["EBADF", "EIO"]),
]


def _apache_scenarios(nths):
    scenarios = []
    for caller, function, value, errnos in _APACHE_SITES:
        for nth in nths:
            for errno in errnos:
                builder = ScenarioBuilder(f"{caller}-{function}-{nth}-{errno}")
                builder.trigger_with_params(
                    "site", "CallStackTrigger",
                    {"frame": {"module": "httpd_core", "function": caller}},
                )
                builder.trigger("count", "CallCountTrigger", nth=nth)
                builder.trigger("once", "SingletonTrigger")
                builder.inject(function, ["site", "count", "once"],
                               return_value=value, errno=errno)
                scenarios.append(builder.build())
    return scenarios


def bench_mini_apache_campaign(requests: int, nths, repeats: int) -> dict:
    target = MiniApacheTarget()
    scenarios = _apache_scenarios(nths)
    workloads = target.workloads()
    options = {"requests": requests}

    def observe_plain() -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for workload in workloads:
                for scenario in scenarios:
                    target.run(WorkloadRequest(
                        workload=workload, scenario=scenario,
                        observe_only=True, options=dict(options),
                    ))
            best = min(best, time.perf_counter() - start)
        return best

    def observe_shared() -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for workload in workloads:
                run_scenarios_shared(target, workload, scenarios,
                                     options=dict(options), observe_only=True)
            best = min(best, time.perf_counter() - start)
        return best

    def inject(shared: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for workload in workloads:
                TestCampaign(target, workload=workload).run(
                    scenarios, include_baseline=False,
                    share_prefixes=shared, **options,
                )
            best = min(best, time.perf_counter() - start)
        return best

    runs = len(scenarios) * len(workloads)
    observe_rebuild = observe_plain()
    observe_snapshot = observe_shared()
    inject_rebuild = inject(False)
    inject_snapshot = inject(True)
    return {
        "scenarios": len(scenarios),
        "workloads": list(workloads),
        "requests_per_run": requests,
        "runs": runs,
        "observe_only": {
            "rebuild": {"runs_per_sec": round(runs / observe_rebuild, 1)},
            "snapshot": {"runs_per_sec": round(runs / observe_snapshot, 1)},
            "speedup": round(observe_rebuild / observe_snapshot, 2),
        },
        "injecting": {
            "rebuild": {"runs_per_sec": round(runs / inject_rebuild, 1)},
            "snapshot": {"runs_per_sec": round(runs / inject_snapshot, 1)},
            "speedup": round(inject_rebuild / inject_snapshot, 2),
        },
    }


# ----------------------------------------------------------------------
# boot restore micro-benchmark
# ----------------------------------------------------------------------
def bench_boot_restore(iterations: int) -> dict:
    target = MiniGitTarget()
    target.run(WorkloadRequest(workload="default-tests"))  # build the template

    session = target.open_session("default-tests")
    assert session.snapshotted, "boot template unavailable"
    template = session.template

    # One representative workload step ("git status") to measure the dirty
    # footprint a restore actually rewinds.
    machine = template.fork_step(gate=None, coverage=None)
    machine.run(args=(1,))
    dirty_words = machine.memory.dirty_word_count()
    start = time.perf_counter()
    for _ in range(iterations):
        template.restore_boot()
    restore_elapsed = time.perf_counter() - start
    session.close()

    start = time.perf_counter()
    for _ in range(iterations):
        fresh = target.open_session("default-tests", snapshots=False)
        fresh.close()
    fresh_elapsed = time.perf_counter() - start

    return {
        "iterations": iterations,
        "dirty_words_after_main": dirty_words,
        "restores_per_sec": round(iterations / restore_elapsed, 1),
        "fresh_builds_per_sec": round(iterations / fresh_elapsed, 1),
        "speedup": round(fresh_elapsed / restore_elapsed, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads for CI; identical JSON schema")
    parser.add_argument("--output", default="BENCH_snapshot.json",
                        help="where to write the JSON result")
    args = parser.parse_args(argv)

    if args.smoke:
        git_workloads = ["default-tests", "status", "gc"]
        git_repeats, apache_repeats = 1, 1
        apache_requests, apache_nths = 16, (1, 12)
        restore_iterations = 200
    else:
        git_workloads = ["default-tests", "status", "commit", "merge", "gc"]
        git_repeats, apache_repeats = 3, 2
        apache_requests, apache_nths = 40, (1, 20, 39)
        restore_iterations = 2000

    payload = {
        "benchmark": "snapshot",
        "mode": "smoke" if args.smoke else "full",
        "python": sys.version.split()[0],
        "mini_git_campaign": bench_mini_git_campaign(git_workloads, git_repeats),
        "mini_git_exploration": bench_mini_git_exploration("default-tests", git_repeats),
        "mini_apache_campaign": bench_mini_apache_campaign(
            apache_requests, apache_nths, apache_repeats
        ),
        "boot_restore": bench_boot_restore(restore_iterations),
    }

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    git = payload["mini_git_campaign"]
    print(f"mini_git campaign sweep: rebuild {git['rebuild']['runs_per_sec']} runs/s, "
          f"snapshot {git['snapshot']['runs_per_sec']} runs/s ({git['speedup']}x)")
    explore = payload["mini_git_exploration"]
    print(f"mini_git exploration: rebuild {explore['rebuild']['runs_per_sec']} runs/s, "
          f"snapshot {explore['snapshot']['runs_per_sec']} runs/s ({explore['speedup']}x)")
    apache = payload["mini_apache_campaign"]
    print(f"mini_apache trigger campaign (observe-only, Table 5 shape): "
          f"{apache['observe_only']['rebuild']['runs_per_sec']} -> "
          f"{apache['observe_only']['snapshot']['runs_per_sec']} runs/s "
          f"({apache['observe_only']['speedup']}x); injecting variant "
          f"{apache['injecting']['speedup']}x")
    restore = payload["boot_restore"]
    print(f"boot restore: {restore['restores_per_sec']:,.0f} restores/s vs "
          f"{restore['fresh_builds_per_sec']:,.0f} fresh builds/s "
          f"({restore['speedup']}x), {restore['dirty_words_after_main']} dirty words")
    print(f"wrote {args.output}")

    below_target = [
        name
        for name, speedup in [
            ("mini_git_campaign", git["speedup"]),
            ("mini_apache_observe", apache["observe_only"]["speedup"]),
        ]
        if speedup < 2.0
    ]
    if below_target:
        # Smoke runs are tiny and shared CI runners are noisy: warn without
        # failing the job so the trajectory artifact still gets uploaded.
        print(f"WARNING: below the 2x target: {', '.join(below_target)}",
              file=sys.stderr)
        return 0 if args.smoke else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
