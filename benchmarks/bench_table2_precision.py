"""Table 2 — precision of three triggers targeting the MySQL close bug."""

from repro.experiments import table2_precision


def test_table2_precision(benchmark):
    result = benchmark.pedantic(
        table2_precision.run, kwargs={"runs": 60}, rounds=1, iterations=1
    )
    print()
    print(result)

    random_precision = result.rows[0]["precision"]
    in_file_precision = result.rows[1]["precision"]
    custom_precision = result.rows[2]["precision"]

    # The paper's ordering: blanket random (16%) < random within the bug's
    # file (45%) < the custom close-after-unlock trigger (100%).
    assert random_precision < in_file_precision < custom_precision
    assert custom_precision == 1.0
    assert random_precision <= 0.40
