#!/usr/bin/env python3
"""Adaptive exploration benchmark — writes ``BENCH_adaptive.json``.

Three measurements for the round-based feedback loop (doc/ADAPTIVE.md):

1. **probes_to_plateau** — the coverage-guided strategy vs the exhaustive
   sweep on the full mini_git fault space: both must reach the *same*
   recovery-line universe (the table3 metric), and the adaptive campaign
   must get there executing **at most 60%** of the exhaustive probe
   count (the PR 10 acceptance criterion — asserted, in smoke mode too).
2. **cost_model_packing** — the skewed group family from the scheduling
   benchmark packed by the fixed 0.35 suffix-fraction prior vs the
   :class:`CostModel` trained on this machine's measured group runtimes.
   Both packings are actually drained (fresh target per batch) and must
   be bit-identical; the learned fraction and both makespans are
   reported.  The learned packing should not lose.
3. **distributed_check** — the same adaptive campaign serial vs through
   an in-process coordinator + two protocol-v3 workers (central round
   planning, explicit-assignment leases): merged records must be
   bit-identical and the coordinator's planner/round counts must match
   the serial run's.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_adaptive.py [--smoke] \
        [--output BENCH_adaptive.json]

``--smoke`` shrinks the packing family for CI; the coverage-parity and
bit-identity asserts run identically in both modes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from dataclasses import replace as dc_replace

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.controller.controller import LFIController  # noqa: E402
from repro.core.controller.costmodel import (  # noqa: E402
    CostModel,
    set_default_cost_model,
)
from repro.core.controller.executor import (  # noqa: E402
    estimate_group_cost,
    execute_group_batch,
    plan_group_batches,
)
from repro.core.controller.prefix import build_group_tasks  # noqa: E402
from repro.core.exploration.engine import ExplorationEngine  # noqa: E402
from repro.core.exploration.store import ResultStore  # noqa: E402
from repro.core.exploration.strategy import (  # noqa: E402
    ExplorationStrategy,
    SingleRoundSession,
)
from repro.core.scenario.builder import ScenarioBuilder  # noqa: E402
from repro.distributed.campaignd import CampaignCoordinator  # noqa: E402
from repro.distributed.client import CampaignClient  # noqa: E402
from repro.distributed.spec import CampaignSpec, build_engine  # noqa: E402
from repro.distributed.worker import CampaignWorker  # noqa: E402
from repro.targets.mini_git import MiniGitTarget  # noqa: E402

ADAPTIVE_STRATEGY = "coverage:round=6,patience=1"


class SweepAllStrategy(ExplorationStrategy):
    """Adaptive oracle: one round proposing the whole space.

    ``adaptive = True`` switches coverage collection on, so its stored
    records carry the exhaustive recovery-line union the coverage-guided
    plateau is measured against.
    """

    name = "sweep-all"
    adaptive = True

    def select(self, points):
        return list(points)

    def session(self):
        return SingleRoundSession(self)


def _explore(strategy, points):
    engine = ExplorationEngine(
        MiniGitTarget(), strategy=strategy, store=ResultStore(),
        seed=7, workload="status",
    )
    report = engine.explore(points)
    lines = set()
    for outcome in report.outcomes:
        stored = engine.store.get(engine.run_key(outcome.point))
        if stored is not None:
            lines.update(stored.recovery_lines)
    return report, lines


# ----------------------------------------------------------------------
# 1. probes_to_plateau: coverage-guided vs exhaustive sweep
# ----------------------------------------------------------------------
def bench_plateau() -> dict:
    points = LFIController(MiniGitTarget()).fault_space()
    sweep, exhaustive_lines = _explore(SweepAllStrategy(), points)
    adaptive, adaptive_lines = _explore(ADAPTIVE_STRATEGY, points)

    assert exhaustive_lines, "mini_git must expose recovery code to cover"
    assert adaptive_lines == exhaustive_lines, (
        f"adaptive coverage plateaued short: {len(adaptive_lines)} of "
        f"{len(exhaustive_lines)} recovery lines"
    )
    fraction = adaptive.executed / sweep.executed
    assert fraction <= 0.60, (
        f"adaptive exploration executed {adaptive.executed} of "
        f"{sweep.executed} probes ({fraction:.0%}) — above the 60% target"
    )
    return {
        "space_points": len(points),
        "exhaustive_probes": sweep.executed,
        "adaptive_probes": adaptive.executed,
        "probe_fraction": round(fraction, 4),
        "adaptive_rounds": len(adaptive.rounds),
        "recovery_lines": len(exhaustive_lines),
        "recovery_line_parity": True,
        "new_coverage_probes": adaptive.planner["new_coverage_probes"],
        "per_round_new_lines": [
            entry["new_recovery_lines"] for entry in adaptive.rounds
        ],
    }


# ----------------------------------------------------------------------
# 2. cost_model_packing: learned vs fixed suffix fraction
# ----------------------------------------------------------------------
def _fault_family(function, counts, errnos, return_value):
    scenarios = []
    for nth in counts:
        for errno in errnos:
            builder = ScenarioBuilder(f"{function}-{nth}-{errno}")
            builder.trigger("count", "CallCountTrigger", nth=nth)
            builder.inject(function, ["count"], return_value=return_value,
                           errno=errno)
            scenarios.append(builder.build())
    return scenarios


def _skewed_scenarios(family_errnos):
    return (
        _fault_family("malloc", range(1, 8), family_errnos, 0)
        + _fault_family("open", range(1, 6), ("EACCES", "ENOENT"), -1)
        + _fault_family("close", range(1, 6), ("EIO",), -1)
        + _fault_family("write", range(1, 4), ("ENOSPC",), -1)
    )


def bench_packing(shards, family_errnos, repeats) -> dict:
    scenarios = _skewed_scenarios(family_errnos)
    entries = [(index, s, None) for index, s in enumerate(scenarios)]
    options = {"memo": False, "snapshots": True}

    def make_tasks():
        return build_group_tasks(
            MiniGitTarget(), "default-tests", entries, options=options
        )

    ref_tasks = make_tasks()

    def plan(model):
        return plan_group_batches(ref_tasks, shards, policy="adaptive",
                                  model=model)

    def drain(model):
        batches = plan(model)
        merged = {}
        makespan = 0.0
        for batch in batches:
            # Fresh target per batch: process-shard semantics, every
            # shard owns its boot/capture caches.
            by_index = {task.index: task for task in make_tasks()}
            fallback = MiniGitTarget()
            fresh = dc_replace(batch, groups=[
                dc_replace(group, target=by_index[group.index].target
                           if group.index in by_index else fallback)
                for group in batch.groups
            ])
            start = time.perf_counter()
            merged.update(execute_group_batch(fresh))
            makespan = max(makespan, time.perf_counter() - start)
        signature = [
            (merged[i].outcome.kind.value, merged[i].outcome.detail,
             merged[i].injections)
            for i in sorted(merged)
        ]
        return makespan, signature

    # Train the model on this machine's real group runtimes: one isolated
    # warm-up drain whose direct executions feed the (swapped-in) default
    # model — exactly what a first campaign leaves behind for the next.
    previous = set_default_cost_model(CostModel())
    try:
        drain(None)  # warm process caches AND collect observations
        learned = set_default_cost_model(CostModel())
    finally:
        set_default_cost_model(previous)

    fixed_makespan = learned_makespan = None
    fixed_signature = learned_signature = None
    for _ in range(repeats):
        makespan, fixed_signature = drain(CostModel())  # fresh = 0.35 prior
        fixed_makespan = min(fixed_makespan or makespan, makespan)
        makespan, learned_signature = drain(learned)
        learned_makespan = min(learned_makespan or makespan, makespan)
    assert fixed_signature == learned_signature, (
        "learned cost model changed sweep results"
    )

    def modeled_makespan(batches):
        # Both plans judged by the *trusted* (measured) model: the plan
        # packed with accurate costs should not look worse than the plan
        # packed with the blind prior.
        return max(
            sum(estimate_group_cost(group, model=learned)
                for group in batch.groups)
            for batch in batches
        )

    return {
        "shards": shards,
        "groups": len(ref_tasks),
        "runs": len(scenarios),
        "observations": learned.observations(),
        "fixed_fraction": 0.35,
        "learned_fraction": round(learned.suffix_fraction(), 4),
        "fixed_makespan_seconds": round(fixed_makespan, 4),
        "learned_makespan_seconds": round(learned_makespan, 4),
        "speedup_learned_vs_fixed": round(fixed_makespan / learned_makespan, 2),
        "modeled_makespan_fixed_plan": round(
            modeled_makespan(plan(CostModel())), 4
        ),
        "modeled_makespan_learned_plan": round(
            modeled_makespan(plan(learned)), 4
        ),
    }


# ----------------------------------------------------------------------
# 3. distributed_check: serial vs coordinator + 2 v3 workers
# ----------------------------------------------------------------------
def check_distributed(tmp_store) -> dict:
    spec_kwargs = dict(
        target="mini_git", workload="status", seed=7,
        functions=["close", "malloc"], strategy="coverage:round=4,patience=1",
    )
    engine, points = build_engine(
        CampaignSpec(**spec_kwargs), store=ResultStore()
    )
    report = engine.explore(points)
    reference = [
        (engine.run_key(o.point), o.outcome.kind.value, o.outcome.detail,
         o.injections, o.fingerprint, o.run_seed)
        for o in report.outcomes
    ]

    coordinator = CampaignCoordinator(port=0, shard_size=3)
    address = coordinator.start()
    client = CampaignClient(address)
    workers = [
        CampaignWorker(address, worker_id=f"bench-w{i}", result_batch_size=2)
        for i in range(2)
    ]
    try:
        reply = client.submit(CampaignSpec(store_path=tmp_store, **spec_kwargs))
        worked = True
        while worked:
            worked = False
            for worker in workers:
                worked |= worker.run_once()
        status = client.status(reply["campaign_id"])
        records = client.results(reply["campaign_id"])
    finally:
        client.close()
        for worker in workers:
            worker.close()
        coordinator.stop()

    fabric = [
        (r["key"], r["outcome"], r["detail"], r["injections"],
         r["fingerprint"], r["run_seed"])
        for r in records
    ]
    assert status["state"] == "complete"
    assert fabric == reference, "distributed adaptive run diverged from serial"
    assert status["planner"]["rounds"] == len(report.rounds), (
        "coordinator planned different rounds than the serial oracle"
    )
    return {
        "records": len(records),
        "rounds": status["planner"]["rounds"],
        "identical_to_serial": True,
        "workers": 2,
        "cost_model_observations": status["cost_model"]["observations"],
    }


# ----------------------------------------------------------------------
def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="shrink for CI")
    parser.add_argument("--output", default="BENCH_adaptive.json")
    args = parser.parse_args()

    if args.smoke:
        family_errnos = ("ENOMEM", "EAGAIN", "EINTR", "EIO", "ENOSPC",
                         "EACCES", "EFAULT", "EINVAL")
        repeats = 1
    else:
        family_errnos = ("ENOMEM", "EAGAIN", "EINTR", "EIO", "ENOSPC",
                         "EACCES", "EFAULT", "EINVAL", "ENFILE", "EMFILE",
                         "ENODEV", "EPERM", "ENOENT", "EBADF", "EROFS",
                         "EISDIR")
        repeats = 3

    with tempfile.TemporaryDirectory() as tmp:
        payload = {
            "benchmark": "adaptive",
            "mode": "smoke" if args.smoke else "full",
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
            "probes_to_plateau": bench_plateau(),
            "cost_model_packing": bench_packing(4, family_errnos, repeats),
            "distributed_check": check_distributed(
                os.path.join(tmp, "bench_adaptive.jsonl")
            ),
        }

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    plateau = payload["probes_to_plateau"]
    packing = payload["cost_model_packing"]
    distributed = payload["distributed_check"]
    print(f"probes_to_plateau: adaptive {plateau['adaptive_probes']} vs "
          f"exhaustive {plateau['exhaustive_probes']} probes "
          f"({plateau['probe_fraction']:.0%}) over "
          f"{plateau['adaptive_rounds']} rounds, full parity on "
          f"{plateau['recovery_lines']} recovery lines")
    print(f"cost_model_packing: fixed 0.35 makespan "
          f"{packing['fixed_makespan_seconds']}s, learned "
          f"{packing['learned_fraction']} makespan "
          f"{packing['learned_makespan_seconds']}s -> "
          f"{packing['speedup_learned_vs_fixed']}x "
          f"({packing['observations']} observations)")
    print(f"distributed_check: {distributed['records']} records over "
          f"{distributed['rounds']} centrally planned rounds, bit-identical "
          f"to serial")
    print(f"wrote {args.output}")

    # Both packings execute identical work and differ only in batch
    # composition, so the measured delta on a small family is noise-bound:
    # warn, never fail.  The correctness gates are the asserts above.
    if packing["speedup_learned_vs_fixed"] < 1.0:
        print("WARNING: learned cost-model packing measured slower than the "
              "fixed prior", file=sys.stderr)
    if (packing["modeled_makespan_learned_plan"]
            > packing["modeled_makespan_fixed_plan"] * 1.001):
        print("WARNING: learned-model plan looks worse than the prior plan "
              "under its own cost model", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
