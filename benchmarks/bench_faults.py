#!/usr/bin/env python3
"""Structured fault-class sweep benchmark — writes ``BENCH_faults.json``.

Measures the campaign cost of the structured taxonomy and pins its two
differential guarantees while timing them:

1. **per-class sweeps** — points/sec for each structured class swept over
   mini_git (the compiled target exercises the VM dispatch path for every
   class; network classes are swept over the PBFT cluster instead, the only
   target with a wire).
2. **partial-write + crash-point sweep, both engines** — the CI smoke
   configuration: the same sweep under the compiled and the reference VM
   engine must produce bit-identical reports, and serial vs pooled
   execution of the compiled sweep must too.
3. **usage profile** — the BEACON-style per-target report built from the
   sweep's own trace, with its build time (it should be noise).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_faults.py [--smoke] [--output BENCH_faults.json]

``--smoke`` shrinks the sweeps for CI; the JSON schema is identical, so
the perf trajectory accumulates across runs either way.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.exploration import ResultStore  # noqa: E402
from repro.core.exploration.engine import ExplorationEngine  # noqa: E402
from repro.core.exploration.space import enumerate_structured_space  # noqa: E402
from repro.core.faults import class_names  # noqa: E402
from repro.coverage.report import build_usage_profile  # noqa: E402
from repro.targets.mini_git import MiniGitTarget  # noqa: E402
from repro.targets.pbft import PBFTTarget  # noqa: E402

NET_CLASSES = ("net_drop", "net_partition", "net_reorder")
SMOKE_CLASSES = ("partial_write", "crash_point")


def _signature(report):
    return [
        (o.point.key, o.outcome.kind.value, o.outcome.detail, o.outcome.exit_code,
         o.outcome.location, o.injections, o.fingerprint, o.run_seed)
        for o in report.outcomes
    ]


def _sweep(target, workload, classes, request_options=None, parallelism=None):
    points = enumerate_structured_space(target.name, classes)
    engine = ExplorationEngine(
        target, seed=13, workload=workload, store=ResultStore(),
        parallelism=parallelism,
        request_options=dict(request_options or {}),
    )
    start = time.perf_counter()
    report = engine.explore(points)
    elapsed = time.perf_counter() - start
    return report, engine, len(points), elapsed


def bench_per_class(classes) -> dict:
    """Points/sec for each class, on the target kind that can express it."""
    results = {}
    for klass in classes:
        if klass in NET_CLASSES:
            target, workload = PBFTTarget(), "simple"
        else:
            target, workload = MiniGitTarget(), "commit"
        report, _engine, points, elapsed = _sweep(target, workload, [klass])
        assert report.complete
        results[klass] = {
            "target": target.name,
            "points": points,
            "failures": len(report.failures()),
            "points_per_sec": round(points / elapsed, 2),
        }
    return results


def bench_differential_sweep() -> dict:
    """The CI smoke sweep: partial_write + crash_point on mini_git, both
    engines, serial and pooled — all four reports bit-identical."""
    timings = {}
    reports = {}
    for engine_name in ("compiled", "reference"):
        report, _engine, points, elapsed = _sweep(
            MiniGitTarget(), "commit", SMOKE_CLASSES,
            request_options={"engine": engine_name},
        )
        reports[engine_name] = report
        timings[engine_name] = {
            "points": points,
            "points_per_sec": round(points / elapsed, 2),
        }
    assert _signature(reports["compiled"]) == _signature(reports["reference"]), (
        "compiled and reference sweeps diverged"
    )
    pooled, _engine, _points, elapsed = _sweep(
        MiniGitTarget(), "commit", SMOKE_CLASSES, parallelism="threads:4",
    )
    assert _signature(pooled) == _signature(reports["compiled"]), (
        "pooled sweep diverged from serial"
    )
    timings["pooled_threads4"] = {
        "points_per_sec": round(len(pooled.outcomes) / elapsed, 2),
    }
    # The sweep must actually find the seeded mini_git short-write bug.
    data_loss = [
        o for o in reports["compiled"].outcomes
        if o.outcome.kind.value == "data-loss"
    ]
    assert data_loss, "sweep lost the seeded short-write bug"
    timings["seeded_bug_hits"] = len(data_loss)
    timings["bit_identical"] = True
    return timings


def bench_usage_profile() -> dict:
    report, engine, points, _elapsed = _sweep(
        MiniGitTarget(), "commit", SMOKE_CLASSES
    )
    start = time.perf_counter()
    profile = build_usage_profile("mini_git", engine.store.results())
    elapsed = time.perf_counter() - start
    assert profile.runs == points
    assert profile.functions["write"].failures >= 1
    return {
        "runs": profile.runs,
        "functions_profiled": len(profile.functions),
        "unswept_functions": len(profile.unswept()),
        "build_seconds": round(elapsed, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="shrink the sweeps for CI")
    parser.add_argument("--output", default="BENCH_faults.json",
                        help="where to write the JSON result (default: BENCH_faults.json)")
    args = parser.parse_args(argv)

    classes = SMOKE_CLASSES if args.smoke else class_names()
    payload = {
        "benchmark": "structured-fault-classes",
        "mode": "smoke" if args.smoke else "full",
        "per_class": bench_per_class(classes),
        "differential_sweep": bench_differential_sweep(),
        "usage_profile": bench_usage_profile(),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
