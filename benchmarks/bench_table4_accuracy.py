"""Table 4 — accuracy of call-site analysis on the target binaries."""

from repro.experiments import table4_accuracy


def test_table4_accuracy(benchmark):
    result = benchmark.pedantic(table4_accuracy.run, rounds=1, iterations=1)
    print()
    print(result)

    rows = {(row["system"], row["function"]): row for row in result.rows}
    # The same (system, function) pairs as the paper's Table 4.
    assert ("mini_bind", "malloc") in rows
    assert ("mini_bind", "open") in rows
    assert ("mini_git", "close") in rows
    assert ("pbft_simple_server", "fopen") in rows

    # One engineered false positive on BIND's open (the interprocedural
    # check), everything else exact — mirroring the paper's 83% / 100% rows.
    for key, row in rows.items():
        if key == ("mini_bind", "open"):
            assert row["FP"] == 1
            assert 0.8 <= row["accuracy"] < 1.0
        else:
            assert row["FP"] == 0
            assert row["FN"] == 0
            assert row["accuracy"] == 1.0
