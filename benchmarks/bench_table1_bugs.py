"""Table 1 — bugs found automatically by LFI (11 bugs across four systems)."""

from repro.experiments import table1_bugs


def test_table1_bugs(benchmark):
    # Two rounds: the first pays the one-time artifact-cache misses (build +
    # profile the synthetic libraries), the second measures the steady state
    # a long-lived testing service runs in.  The experiment is seed-
    # deterministic, so both rounds produce identical tables.
    result = benchmark.pedantic(
        table1_bugs.run, kwargs={"random_tests": 40}, rounds=2, iterations=1
    )
    print()
    print(result)

    found = [row for row in result.rows if row["found"]]
    # The paper reports 11 previously unknown bugs; the reproduction plants
    # the same 11 and the automatic pipeline should expose (nearly) all of
    # them.  Require at least 10 to keep the benchmark robust to the random
    # MySQL campaign occasionally missing one.
    assert len(result.rows) == 11
    assert len(found) >= 10

    # Every crash-class bug in the compiled targets must be found.
    compiled = [row for row in result.rows if row["system"] in ("mini_bind", "mini_git")]
    assert all(row["found"] for row in compiled)
