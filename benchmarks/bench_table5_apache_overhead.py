"""Table 5 — Apache running time with 1-5 triggers (trigger-mechanism overhead)."""

from repro.experiments import table5_apache_overhead


def test_table5_apache_overhead(benchmark):
    result = benchmark.pedantic(
        table5_apache_overhead.run,
        kwargs={"requests": 300, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    baseline = result.rows[0]
    five = result.rows[-1]
    # Trigger evaluation must not change the server's behaviour...
    assert all(row["static HTML (s)"] > 0 for row in result.rows)
    # ...and the overhead must stay modest: well under 2x even with five
    # triggers evaluated on every intercepted apr_file_read (the paper
    # reports ~5%; the pure-Python reproduction pays more per evaluation but
    # the shape — small, slowly growing — must hold).
    assert five["static HTML (s)"] < 2.0 * baseline["static HTML (s)"]
    assert five["PHP (s)"] < 1.5 * baseline["PHP (s)"]
    # PHP (more work per request) is relatively less affected than static.
    assert five["PHP overhead"] <= five["static overhead"] + 0.05
