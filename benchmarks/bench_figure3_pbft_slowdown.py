"""Figure 3 — PBFT slowdown under progressively worsening network conditions."""

from repro.experiments import figure3_pbft_slowdown


def test_figure3_pbft_slowdown(benchmark):
    result = benchmark.pedantic(
        figure3_pbft_slowdown.run,
        kwargs={"requests": 30, "trials": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(result)

    slowdowns = result.column("slowdown factor")
    probabilities = result.column("loss probability")
    assert probabilities == [0.0, 0.1, 0.8, 0.9, 0.95, 0.99]

    # Gradual, monotonically (within tolerance) worsening performance...
    assert abs(slowdowns[0] - 1.0) < 0.1
    for previous, current in zip(slowdowns, slowdowns[1:]):
        assert current >= previous - 0.15
    # ...mild at 10% loss, and a single-digit factor even at 99% loss
    # (the paper reports 4.17x).
    assert slowdowns[1] < 2.0
    assert 2.0 < slowdowns[-1] < 8.0
