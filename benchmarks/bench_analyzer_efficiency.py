"""§7.2 — call-site analyzer efficiency (running time per target)."""

from repro.experiments import analyzer_efficiency


def test_analyzer_efficiency(benchmark):
    # Two rounds: the second runs with a warm artifact cache (the synthetic
    # libc binary is served from repro.core.profiler.cache), so the recorded
    # minimum isolates the analyzer itself — the quantity §7.2 reports.
    result = benchmark.pedantic(analyzer_efficiency.run, rounds=2, iterations=1)
    print()
    print(result)

    # Analysis of every target must complete quickly (the paper: 1-10 s for
    # BIND-sized binaries; the synthetic targets are smaller, so well under
    # a second each) and the cost should track the number of call sites.
    for row in result.rows:
        assert row["analysis time (ms)"] < 1000.0
    with_sites = [row for row in result.rows if row["call sites analyzed"] > 0]
    assert with_sites, "expected at least one binary with analyzable call sites"
    most_sites = max(with_sites, key=lambda row: row["call sites analyzed"])
    fewest_sites = min(with_sites, key=lambda row: row["call sites analyzed"])
    assert most_sites["analysis time (ms)"] >= fewest_sites["analysis time (ms)"]
