"""Setuptools shim.

Kept so that ``pip install -e .`` works in offline environments where build
isolation cannot fetch build requirements (use
``pip install -e . --no-build-isolation --no-use-pep517`` there); all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
