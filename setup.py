"""Setuptools shim.

Kept so that ``pip install -e .`` works in offline environments where build
isolation cannot fetch build requirements (use
``pip install -e . --no-build-isolation --no-use-pep517`` there).

The console scripts are the campaign fabric's entry points; uninstalled
checkouts reach the same mains via ``python -m repro.cli.campaignd`` /
``python -m repro.cli.campaign`` with ``PYTHONPATH=src``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="LFI reproduction: high-precision testing of recovery code",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-campaign=repro.cli.campaign:main",
            "repro-campaignd=repro.cli.campaignd:main",
        ]
    },
)
