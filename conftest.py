"""Pytest bootstrap: make ``src/`` importable without installation.

This keeps ``pytest`` usable straight from a source checkout (and in offline
environments where editable installs are awkward).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
