"""Tests for the round-based adaptive exploration core (PR 10).

Covers the tentpole acceptance criteria: the planner-session protocol
(static strategies as behavior-identical single-round planners, the
coverage-guided strategy steering by recovery-line deltas), determinism
of adaptive rounds across execution shapes (serial == pooled ==
distributed, budget-interrupted resumes converge), the learned
:class:`CostModel` replacing the fixed 0.35 suffix fraction (hypothesis
round-trip, exact fleet merge, adopt semantics), protocol-v3 version
gating on the fabric, plus the satellite edge cases of
:func:`identify_recovery_regions` (empty maps, overlapping regions, both
error-successor orientations).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller.campaign import TestCampaign as FaultCampaign
from repro.core.controller.controller import LFIController
from repro.core.controller.costmodel import (
    SUFFIX_COST_FRACTION,
    CostModel,
    default_cost_model,
    set_default_cost_model,
)
from repro.core.controller.executor import derive_run_seed
from repro.core.exploration import (
    CoverageGuidedStrategy,
    ExhaustiveStrategy,
    FaultPoint,
    ProbeFeedback,
    ResultStore,
    priority_order,
    resolve_strategy,
)
from repro.core.exploration.engine import ExplorationEngine, RoundPlanner
from repro.core.exploration.store import StoredResult
from repro.core.exploration.strategy import ExplorationStrategy, SingleRoundSession
from repro.core.profiler.fault_profile import (
    ErrorSpecification,
    FaultProfile,
    FunctionProfile,
)
from repro.core.profiler.spec_profiles import combined_reference_profile
from repro.coverage.recovery import RecoveryRegion, identify_recovery_regions
from repro.distributed.campaignd import CampaignCoordinator
from repro.distributed.client import CampaignClient
from repro.distributed.protocol import connect
from repro.distributed.spec import CampaignSpec, build_engine
from repro.distributed.worker import CampaignWorker
from repro.minicc import compile_source
from repro.targets.mini_git import MiniGitTarget


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _point(function="read", address=0x10, category="unchecked", rv=-1, errno=None,
           fault_index=0, binary="bin"):
    return FaultPoint(
        binary=binary, function=function, address=address, category=category,
        return_value=rv, errno=errno, fault_index=fault_index,
    )


def _signature(report):
    return [
        (outcome.point.key, outcome.outcome.kind, outcome.outcome.detail,
         outcome.outcome.exit_code, outcome.outcome.location,
         outcome.injections, outcome.fingerprint, outcome.run_seed)
        for outcome in report.outcomes
    ]


class _SweepAllStrategy(ExplorationStrategy):
    """Adaptive oracle: one round proposing the whole space.

    Coverage collection switches on (``adaptive = True``), so its store
    records carry the exhaustive recovery-line union — the reference the
    coverage-guided strategy's plateau is measured against.
    """

    name = "sweep-all"
    adaptive = True

    def select(self, points):
        return list(points)

    def session(self):
        return SingleRoundSession(self)


def _recovery_union(engine, report):
    lines = set()
    for outcome in report.outcomes:
        stored = engine.store.get(engine.run_key(outcome.point))
        if stored is not None:
            lines.update(stored.recovery_lines)
    return lines


# ----------------------------------------------------------------------
# satellite: recovery-region identification edge cases
# ----------------------------------------------------------------------
THEN_BRANCH_SOURCE = """
int main() {
    int fd;
    int n;
    int buffer[8];
    fd = open("/etc/app.conf", 0);
    if (fd < 0) {
        puts("recovering: using defaults");
        return 0;
    }
    n = read(fd, buffer, 4);
    puts("happy: config loaded");
    close(fd);
    return 0;
}
"""

ELSE_SIDE_SOURCE = """
int main() {
    int fd;
    fd = open("/etc/app.conf", 0);
    if (fd >= 0) {
        puts("happy: config loaded");
        close(fd);
        return 0;
    }
    puts("recovering: open failed");
    return 1;
}
"""

UNCHECKED_SOURCE = """
int main() {
    int fd;
    fd = open("/etc/app.conf", 0);
    close(fd);
    return 0;
}
"""


def _lines_containing(source, needle):
    return {
        number
        for number, text in enumerate(source.splitlines(), start=1)
        if needle in text
    }


class TestRecoveryRegionEdgeCases:
    def test_empty_profile_yields_empty_map(self):
        binary = compile_source(THEN_BRANCH_SOURCE, name="edge_empty")
        recovery = identify_recovery_regions(binary, FaultProfile("empty"))
        assert recovery.region_count() == 0
        assert recovery.all_lines() == set()
        assert recovery.all_addresses() == set()

    def test_profile_without_error_returns_yields_empty_map(self):
        binary = compile_source(THEN_BRANCH_SOURCE, name="edge_noerr")
        profile = FaultProfile("hollow")
        profile.add(FunctionProfile("open", []))
        profile.add(FunctionProfile("read", []))
        recovery = identify_recovery_regions(binary, profile)
        assert recovery.region_count() == 0

    def test_unchecked_call_sites_yield_no_regions(self):
        binary = compile_source(UNCHECKED_SOURCE, name="edge_unchecked")
        recovery = identify_recovery_regions(
            binary, combined_reference_profile()
        )
        assert recovery.region_count() == 0
        assert recovery.all_lines() == set()

    def test_error_on_then_branch(self):
        # ``if (fd < 0) { recover }``: the error values satisfy the guard,
        # so the recovery region is the then-block — and only it.
        binary = compile_source(THEN_BRANCH_SOURCE, name="edge_then")
        recovery = identify_recovery_regions(
            binary, combined_reference_profile(), functions=["open"]
        )
        assert recovery.region_count() == 1
        covered = {line for _file, line in recovery.all_lines()}
        assert _lines_containing(THEN_BRANCH_SOURCE, "recovering") <= covered
        assert not (_lines_containing(THEN_BRANCH_SOURCE, "happy") & covered)

    def test_error_on_else_side(self):
        # ``if (fd >= 0) { happy }``: the error values *fail* the guard, so
        # the recovery region is the code after the then-block.
        binary = compile_source(ELSE_SIDE_SOURCE, name="edge_else")
        recovery = identify_recovery_regions(
            binary, combined_reference_profile(), functions=["open"]
        )
        assert recovery.region_count() == 1
        covered = {line for _file, line in recovery.all_lines()}
        assert _lines_containing(ELSE_SIDE_SOURCE, "recovering") <= covered
        assert not (_lines_containing(ELSE_SIDE_SOURCE, "happy") & covered)

    def test_overlapping_regions_aggregate_without_double_counting(self):
        binary = compile_source(THEN_BRANCH_SOURCE, name="edge_overlap")
        recovery = identify_recovery_regions(
            binary, combined_reference_profile(), functions=["open"]
        )
        assert recovery.region_count() == 1
        first = recovery.regions[0]
        lines_before = recovery.all_lines()
        addresses_before = recovery.all_addresses()
        # A second region fully overlapping the first (two checks guarding
        # one cleanup block): the aggregates are set unions, not sums.
        recovery.regions.append(
            RecoveryRegion(
                call_site=first.call_site,
                addresses=set(first.addresses),
                lines=set(first.lines),
            )
        )
        assert recovery.region_count() == 2
        assert recovery.all_lines() == lines_before
        assert recovery.all_addresses() == addresses_before


# ----------------------------------------------------------------------
# the learned cost model
# ----------------------------------------------------------------------
_observations = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
    ),
    max_size=40,
)


class TestCostModel:
    def test_fresh_model_reproduces_the_pr9_constant_exactly(self):
        model = CostModel()
        assert model.suffix_fraction() == SUFFIX_COST_FRACTION == 0.35
        assert model.observations() == 0
        assert model.fitted() is None

    def test_fit_blends_toward_the_measured_ratio(self):
        model = CostModel()
        # Exact timings T(m) = 1.0 + (m - 1) * 0.5 across varied sizes.
        sizes = [1, 2, 3, 4, 5, 6, 7, 8] * 4
        for members in sizes:
            model.observe_group(members, 1.0 + (members - 1) * 0.5)
        probe, suffix = model.fitted()
        assert probe == pytest.approx(1.0)
        assert suffix == pytest.approx(0.5)
        n = len(sizes)
        expected = (8.0 * 0.35 + n * 0.5) / (8.0 + n)
        assert model.suffix_fraction() == pytest.approx(expected)
        assert 0.35 < model.suffix_fraction() < 0.5

    def test_uniform_group_sizes_leave_the_prior(self):
        model = CostModel()
        for _ in range(20):
            model.observe_group(3, 2.0)  # slope unidentifiable
        assert model.suffix_fraction() == SUFFIX_COST_FRACTION

    def test_invalid_observations_are_ignored(self):
        model = CostModel()
        model.observe_group(0, 1.0)
        model.observe_group(-3, 1.0)
        model.observe_group(2, -0.5)
        assert model.observations() == 0

    @settings(max_examples=60, deadline=None)
    @given(_observations)
    def test_serialization_round_trips_exactly(self, observations):
        model = CostModel()
        for members, elapsed in observations:
            model.observe_group(members, elapsed)
        clone = CostModel.from_dict(model.to_dict())
        assert clone.to_dict() == model.to_dict()
        assert clone.observations() == model.observations()
        assert clone.suffix_fraction() == model.suffix_fraction()
        assert clone.snapshot_counters() == model.snapshot_counters()

    @settings(max_examples=60, deadline=None)
    @given(_observations, _observations)
    def test_running_sum_merge_equals_combined_observation(self, left, right):
        separate_left, separate_right = CostModel(), CostModel()
        for members, elapsed in left:
            separate_left.observe_group(members, elapsed)
        for members, elapsed in right:
            separate_right.observe_group(members, elapsed)
        counters = separate_right.snapshot_counters()
        separate_left.observe_sums(
            int(counters["cost_observations"]),
            counters["cost_sum_k"],
            counters["cost_sum_kk"],
            counters["cost_sum_t"],
            counters["cost_sum_kt"],
        )
        combined = CostModel()
        for members, elapsed in left + right:
            combined.observe_group(members, elapsed)
        assert separate_left.observations() == combined.observations()
        assert separate_left.suffix_fraction() == pytest.approx(
            combined.suffix_fraction()
        )

    def test_adopt_replaces_only_better_informed_snapshots(self):
        local = CostModel()
        for members in (1, 2, 3, 4, 5):
            local.observe_group(members, float(members))
        before = local.to_dict()

        worse = CostModel()
        worse.observe_group(2, 1.0)
        local.adopt(worse.to_dict())
        assert local.to_dict() == before  # fewer observations: ignored
        local.adopt(None)
        assert local.to_dict() == before

        better = CostModel()
        for members in (1, 2, 3, 4, 5, 6, 7, 8):
            better.observe_group(members, 2.0 * members)
        local.adopt(better.to_dict())
        assert local.to_dict() == better.to_dict()

    def test_campaign_stats_carry_cost_model_block(self):
        previous = set_default_cost_model(CostModel())
        try:
            result = FaultCampaign(MiniGitTarget(), workload="status").run(
                [], include_baseline=False
            )
            block = result.stats["cost_model"]
            assert block["observations"] == 0
            assert block["total_observations"] == 0
            assert block["suffix_fraction"] == SUFFIX_COST_FRACTION
        finally:
            set_default_cost_model(previous)

    def test_shared_campaign_feeds_the_default_model(self):
        previous = set_default_cost_model(CostModel())
        try:
            target = MiniGitTarget()
            points = LFIController(target).fault_space(functions=["close"])
            scenarios = [point.scenario() for point in points]
            result = FaultCampaign(target, workload="status").run(
                scenarios, seed=3, include_baseline=False, memo=False
            )
            assert result.stats["cost_model"]["observations"] > 0
            assert default_cost_model().observations() > 0
        finally:
            set_default_cost_model(previous)


# ----------------------------------------------------------------------
# the planner protocol
# ----------------------------------------------------------------------
def _synthetic_space():
    """Three functions, five sites, twelve points (deterministic keys)."""
    points = []
    for function, address, errnos in (
        ("read", 0x10, (5, 4, 11)),       # EIO, EINTR, EAGAIN
        ("read", 0x20, (5, 4)),
        ("open", 0x30, (2, 13, 24)),      # ENOENT, EACCES, EMFILE
        ("open", 0x40, (2,)),
        ("close", 0x50, (5, 9, 4)),       # EIO, EBADF, EINTR
    ):
        for fault_index, errno in enumerate(errnos):
            points.append(_point(
                function=function, address=address, errno=errno,
                fault_index=fault_index,
            ))
    return points


class TestPlannerProtocol:
    def test_static_strategies_are_single_round_planners(self):
        points = priority_order(_synthetic_space())
        session = ExhaustiveStrategy().session()
        first = session.propose(points, [])
        assert first == [point.key for point in points]
        assert session.propose([], []) == []
        assert session.propose(points, []) == []

    def test_coverage_session_is_deterministic(self):
        points = priority_order(_synthetic_space())
        strategy = CoverageGuidedStrategy(round_size=4, patience=2)

        def drive(session):
            proposals = []
            feedback = []
            for _round in range(10):
                keys = session.propose(
                    [p for p in points
                     if p.key not in {k for r in proposals for k in r}],
                    feedback,
                )
                proposals.append(keys)
                if not keys:
                    break
                # Scripted feedback: probes of read@0x10 unlock lines,
                # everything else is barren.
                feedback = [
                    ProbeFeedback(
                        key=key,
                        recovery_lines=(f"a.c:{i}",) if "read@0x10" in key else (),
                    )
                    for i, key in enumerate(keys)
                ]
            return proposals

        assert drive(strategy.session()) == drive(strategy.session())

    def test_coverage_session_seed_round_covers_each_site_once(self):
        points = priority_order(_synthetic_space())
        session = CoverageGuidedStrategy(round_size=5).session()
        keys = session.propose(points, [])
        assert len(keys) == 5
        by_key = {point.key: point for point in points}
        sites = {(by_key[k].function, by_key[k].address) for k in keys}
        assert len(sites) == 5  # one probe per distinct site

    def test_coverage_session_stops_at_plateau_patience(self):
        points = priority_order(_synthetic_space())
        session = CoverageGuidedStrategy(round_size=4, patience=2).session()
        rounds = 0
        keys = session.propose(points, [])
        while keys:
            rounds += 1
            assert rounds < 20, "session failed to plateau"
            barren = [ProbeFeedback(key=key) for key in keys]
            remaining = [p for p in points if p.key not in session._planned]
            keys = session.propose(remaining, barren)
        # Seed round + at most patience quiet confirmation rounds — never
        # the whole 12-point space.
        stats = session.stats()
        assert stats["planned"] < len(points)
        assert stats["quiet_rounds"] >= 2

    def test_round_planner_feedback_is_arrival_order_invariant(self):
        target = MiniGitTarget()
        points = LFIController(target).fault_space(functions=["close", "malloc"])
        strategy = "coverage:round=4,patience=2"

        def next_round_after(order):
            engine = ExplorationEngine(
                target, strategy=strategy, store=ResultStore(),
                seed=7, workload="status",
            )
            planner = RoundPlanner(engine, points)
            first = planner.next_round()
            for position in order:
                index, point = first[position]
                stored = StoredResult(
                    key=engine.run_key(point), index=index,
                    scenario=f"s{index}", function=point.function,
                    return_value=point.return_value, errno=point.errno,
                    category=point.category, workload="status",
                    outcome="normal",
                    run_seed=derive_run_seed(engine.seed, index),
                    recovery_lines=[f"git.c:{index}"] if index % 2 else [],
                )
                planner.record_result(index, point, stored, resumed=False)
            assert planner.current is None  # round closed
            return [point.key for _idx, point in planner.next_round()]

        forward = next_round_after(range(4))
        backward = next_round_after(range(3, -1, -1))
        assert forward == backward and forward


# ----------------------------------------------------------------------
# adaptive exploration end to end (mini_git)
# ----------------------------------------------------------------------
class CountingGitTarget:
    """MiniGitTarget wrapper counting workload executions."""

    def __init__(self):
        self._inner = MiniGitTarget()
        self.name = self._inner.name
        self.runs = 0

    def binary(self):
        return self._inner.binary()

    def workloads(self):
        return self._inner.workloads()

    def run(self, request):
        self.runs += 1
        return self._inner.run(request)


class TestAdaptiveExploration:
    def _engine(self, target, store, parallelism=None,
                strategy="coverage:round=6,patience=1"):
        return ExplorationEngine(
            target, strategy=strategy, store=store, seed=7,
            workload="status", parallelism=parallelism,
        )

    def test_serial_and_pooled_adaptive_runs_are_bit_identical(self):
        target = MiniGitTarget()
        points = LFIController(target).fault_space(functions=["close", "malloc"])
        serial = self._engine(MiniGitTarget(), ResultStore()).explore(points)
        pooled = self._engine(
            MiniGitTarget(), ResultStore(), parallelism="threads:2"
        ).explore(points)
        assert _signature(serial) == _signature(pooled)
        assert serial.planner == pooled.planner
        assert serial.rounds == pooled.rounds
        assert len(serial.rounds) > 1  # genuinely multi-round

    def test_budget_interrupted_resume_converges_without_reruns(self):
        target = MiniGitTarget()
        points = LFIController(target).fault_space(functions=["close", "malloc"])
        uninterrupted = self._engine(MiniGitTarget(), ResultStore()).explore(points)

        counting = CountingGitTarget()
        engine = self._engine(counting, ResultStore())
        while True:
            report = engine.explore(points, max_runs=3)
            if report.complete and report.executed == 0:
                break
        assert _signature(report) == _signature(uninterrupted)
        assert counting.runs == uninterrupted.executed  # nothing ran twice
        assert report.resumed == uninterrupted.executed

    def test_adaptive_reaches_exhaustive_recovery_coverage_with_fewer_probes(self):
        target = MiniGitTarget()
        points = LFIController(target).fault_space()

        sweep_engine = ExplorationEngine(
            MiniGitTarget(), strategy=_SweepAllStrategy(), store=ResultStore(),
            seed=7, workload="status",
        )
        sweep = sweep_engine.explore(points)
        exhaustive_lines = _recovery_union(sweep_engine, sweep)
        assert exhaustive_lines  # mini_git has recovery code to find

        adaptive_engine = self._engine(MiniGitTarget(), ResultStore())
        adaptive = adaptive_engine.explore(points)
        adaptive_lines = _recovery_union(adaptive_engine, adaptive)

        assert adaptive_lines == exhaustive_lines
        assert adaptive.executed <= 0.6 * sweep.executed, (
            f"adaptive ran {adaptive.executed} of {sweep.executed} probes"
        )
        assert adaptive.planner["new_coverage_probes"] > 0

    def test_static_strategy_reports_exactly_one_round(self):
        target = MiniGitTarget()
        points = LFIController(target).fault_space(functions=["close"])
        engine = ExplorationEngine(
            target, strategy="exhaustive", store=ResultStore(),
            seed=7, workload="status",
        )
        report = engine.explore(points)
        assert len(report.rounds) == 1
        assert report.planner["adaptive"] is False
        # Static records must stay byte-identical to PR 9: no
        # recovery_lines field serialized.
        for outcome in report.outcomes:
            stored = engine.store.get(engine.run_key(outcome.point))
            assert stored.recovery_lines == []
            assert "recovery_lines" not in stored.to_dict()

    def test_schedule_raises_for_adaptive_strategies(self):
        engine = ExplorationEngine(
            MiniGitTarget(), strategy="coverage", store=ResultStore(),
            workload="status",
        )
        with pytest.raises(RuntimeError):
            engine.schedule([])
        assert resolve_strategy("coverage").adaptive is True


# ----------------------------------------------------------------------
# protocol v3: distributed round planning
# ----------------------------------------------------------------------
ADAPTIVE_SPEC_KWARGS = dict(
    target="mini_git", workload="status", seed=7,
    functions=["close", "malloc"], strategy="coverage:round=4,patience=1",
)


class TestDistributedAdaptive:
    def _fabric(self, **kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("durable_stores", False)
        coordinator = CampaignCoordinator(**kwargs)
        return coordinator, coordinator.start()

    def test_two_worker_adaptive_campaign_is_bit_identical_to_serial(
        self, tmp_path
    ):
        engine, points = build_engine(
            CampaignSpec(**ADAPTIVE_SPEC_KWARGS), store=ResultStore()
        )
        report = engine.explore(points)
        reference = [
            (engine.run_key(o.point), o.outcome.kind.value, o.outcome.detail,
             o.injections, o.fingerprint, o.run_seed)
            for o in report.outcomes
        ]
        assert len(report.rounds) > 1

        coordinator, address = self._fabric(shard_size=3)
        client = CampaignClient(address)
        workers = [
            CampaignWorker(address, worker_id=f"w{i}", result_batch_size=2)
            for i in range(2)
        ]
        try:
            reply = client.submit(CampaignSpec(
                store_path=str(tmp_path / "adaptive.jsonl"),
                **ADAPTIVE_SPEC_KWARGS,
            ))
            worked = True
            while worked:
                worked = False
                for worker in workers:
                    worked |= worker.run_once()
            status = client.status(reply["campaign_id"])
            records = client.results(reply["campaign_id"])
        finally:
            client.close()
            for worker in workers:
                worker.close()
            coordinator.stop()

        fabric = [
            (r["key"], r["outcome"], r["detail"], r["injections"],
             r["fingerprint"], r["run_seed"])
            for r in records
        ]
        assert status["state"] == "complete"
        assert fabric == reference
        planner = status["planner"]
        assert planner["adaptive"] is True
        assert planner["rounds"] == len(report.rounds)
        assert planner["new_coverage_probes"] == report.planner["new_coverage_probes"]
        assert "cost_model" in status
        assert status["cost_model"]["observations"] >= 0

    def test_versionless_workers_never_lease_adaptive_shards(self, tmp_path):
        coordinator, address = self._fabric()
        client = CampaignClient(address)
        stream = connect(address)
        try:
            reply = client.submit(CampaignSpec(
                store_path=str(tmp_path / "gate.jsonl"), **ADAPTIVE_SPEC_KWARGS
            ))
            assert reply["type"] == "submitted"

            # A protocol-2 worker (no version field) must be told "idle"
            # even though an adaptive shard is queued...
            stream.send({"type": "fetch", "worker_id": "legacy"})
            assert stream.recv()["type"] == "idle"
            stream.send({"type": "fetch", "worker_id": "legacy", "version": 2})
            assert stream.recv()["type"] == "idle"

            # ...while a v3 fetch gets the explicit-assignment lease.
            stream.send({"type": "fetch", "worker_id": "modern", "version": 3})
            shard = stream.recv()
            assert shard["type"] == "shard"
            assert shard["adaptive"] is True
            assert shard["assignments"]
            assert [index for index, _key in shard["assignments"]] == shard["indices"]
            assert "cost_model" in shard
        finally:
            stream.close()
            client.close()
            coordinator.stop()

    def test_versionless_workers_still_drain_static_campaigns(self, tmp_path):
        coordinator, address = self._fabric()
        client = CampaignClient(address)
        stream = connect(address)
        try:
            client.submit(CampaignSpec(
                target="mini_git", workload="status", seed=7,
                functions=["close"],
                store_path=str(tmp_path / "static.jsonl"),
            ))
            stream.send({"type": "fetch", "worker_id": "legacy"})
            shard = stream.recv()
            assert shard["type"] == "shard"
            assert "adaptive" not in shard
        finally:
            stream.close()
            client.close()
            coordinator.stop()
