"""Tests for the workload generators and the PBFT protocol internals."""

import pytest

from repro.core.controller.target import WorkloadRequest
from repro.distributed import CentralController, SilenceNodePolicy
from repro.targets.mini_apache import MiniApacheTarget
from repro.targets.mini_apache.httpd_core import HttpRequest, M_GET, M_POST
from repro.targets.mini_apache.scenarios import overhead_scenario
from repro.targets.mini_mysql import MiniMySQLTarget
from repro.targets.pbft import PBFTCluster, PBFTTarget
from repro.targets.pbft.messages import (
    COMMIT,
    Message,
    PREPARE,
    PRE_PREPARE,
    REPLY,
    REQUEST,
    request_message,
)
from repro.workloads.ab import run_apache_bench
from repro.workloads.sysbench import run_sysbench


class TestWorkloadGenerators:
    def test_apache_bench(self):
        target = MiniApacheTarget()
        result = run_apache_bench(target, page="static", requests=10)
        assert not result.failed
        assert result.requests == 10
        assert result.wall_seconds > 0
        assert result.requests_per_second > 0
        with_triggers = run_apache_bench(
            target, page="php", requests=5, scenario=overhead_scenario(3), observe_only=True
        )
        assert not with_triggers.failed
        assert with_triggers.intercepted_calls > 0
        assert with_triggers.triggerings_per_second > 0

    def test_sysbench(self):
        target = MiniMySQLTarget()
        read_only = run_sysbench(target, read_only=True, transactions=10)
        read_write = run_sysbench(target, read_only=False, transactions=10)
        assert not read_only.failed and not read_write.failed
        assert read_only.transactions == 10
        assert read_only.transactions_per_second > 0
        assert read_write.mode == "read-write"


class TestMessages:
    def test_encode_decode_roundtrip(self):
        message = Message(type=PREPARE, sender="replica2", view=1, sequence=9,
                          request_id=3, client="client0", payload="op-3")
        restored = Message.decode(message.encode())
        assert restored == message
        assert "prepare" in restored.describe()
        assert restored.key() == (PREPARE, 1, 9, "replica2")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            Message.decode(b"")
        with pytest.raises(ValueError):
            Message.decode(b'{"type": "bogus"}')

    def test_request_helper(self):
        request = request_message("client0", 7, "payload")
        assert request.type == REQUEST and request.request_id == 7


class TestReplicaProtocol:
    def make_cluster(self):
        return PBFTCluster(replicas=4, faults_tolerated=1)

    def test_primary_assignment_and_roles(self):
        cluster = self.make_cluster()
        primary = cluster.replicas[0]
        backup = cluster.replicas[1]
        assert primary.is_primary and not backup.is_primary
        assert backup.primary_name() == "replica0"
        assert set(primary.peer_names()) == {"replica1", "replica2", "replica3"}

    def test_three_phase_commit_executes_on_all_replicas(self):
        cluster = self.make_cluster()
        result = cluster.run_workload(requests=3)
        assert result.requests_completed == 3
        for replica in cluster.replicas:
            assert [payload for _seq, payload in replica.executed_requests] == [
                "op-0", "op-1", "op-2"
            ]
        # The primary assigned consecutive sequence numbers.
        assert cluster.replicas[0].next_sequence == 4

    def test_checkpoints_written_periodically(self):
        cluster = self.make_cluster()
        interval = cluster.replicas[0].CHECKPOINT_INTERVAL
        cluster.run_workload(requests=interval)
        assert all(replica.checkpoints_written >= 1 for replica in cluster.replicas)
        files = [
            path
            for replica in cluster.replicas
            for path in [f"/var/pbft/{replica.name}/checkpoint_{interval}.ckp"]
            if cluster.oses[replica.name].fs.exists(path)
        ]
        assert len(files) == 4

    def test_view_change_replaces_silenced_primary(self):
        target = PBFTTarget()
        from repro.targets.pbft.scenarios import silence_replica_experiment

        scenario, controller = silence_replica_experiment("replica0")  # silence the primary
        result = target.run(
            WorkloadRequest(
                workload="simple",
                scenario=scenario,
                options={"requests": 6, "shared_objects": {"controller": controller}},
            )
        )
        # Requests still complete (view change or state transfer), and at
        # least one view change was attempted against the dead primary.
        assert result.outcome.kind.value in ("normal",)
        cluster = result.stats["cluster"]
        assert result.stats["view_changes"] >= 1 or result.stats["state_transfers"] >= 1
        assert cluster.replicas[1].view >= 0

    def test_client_retransmission(self):
        cluster = self.make_cluster()
        # Drop the first client request by silencing nothing but making the
        # primary unreachable for one round: easiest is to just run with a
        # tiny workload and confirm retransmission counters stay sane.
        result = cluster.run_workload(requests=2)
        assert cluster.client.completed_requests == 2
        assert cluster.client.retransmissions >= 0
        assert result.messages_sent > 0


class TestApacheServerInternals:
    def test_request_rec_method_numbers(self):
        assert HttpRequest(uri="/", method="GET").method_number == M_GET
        assert HttpRequest(uri="/", method="POST").method_number == M_POST

    def test_state_exposed_to_triggers(self):
        target = MiniApacheTarget()
        server = target.make_server(WorkloadRequest(workload="ab-static"))
        server.handle_connection(HttpRequest(uri="/index.html", method="POST"))
        assert server.read_state("request_method_number") == M_POST
        assert server.read_state("requests_handled") == 1
        assert server.read_state("unknown") is None

    def test_access_log_written(self):
        target = MiniApacheTarget()
        server = target.make_server(WorkloadRequest(workload="ab-static"))
        server.handle_connection(HttpRequest(uri="/index.html"))
        log = server.os.fs.file_contents("/var/log/apache2/access.log")
        assert b"GET /index.html 200" in log


class TestCentralControllerIntegration:
    def test_silenced_node_receives_no_messages(self):
        controller = CentralController(SilenceNodePolicy(node="replica3"))
        target = PBFTTarget()
        from repro.targets.pbft.scenarios import silence_replica_experiment

        scenario, controller = silence_replica_experiment("replica3")
        result = target.run(
            WorkloadRequest(
                workload="simple",
                scenario=scenario,
                options={"requests": 4, "shared_objects": {"controller": controller}},
            )
        )
        cluster = result.stats["cluster"]
        silenced = cluster.replicas[3]
        healthy = cluster.replicas[1]
        assert silenced.messages_processed < healthy.messages_processed
        assert controller.injections_by_node.get("replica3", 0) > 0
