"""Differential tests for the dataplane execution core (PR 6).

Four fast paths, each held bit-identical to its slow reference oracle:

* **superclosure block batching** — the ``compiled`` engine fuses
  straight-line basic blocks into generated functions (dead CMP/Jcc flag
  work elided); oracles: ``compiled-steps`` (per-instruction closures) and
  ``reference`` (decode-as-you-go);
* **coverage-off hot loops** — runs without a tracker/trace skip per-step
  bookkeeping entirely;
* **the delta result channel** — pool workers publish each run's OS as a
  boot-state diff (:class:`~repro.targets.base.DeltaOSClone`), rehydrated
  lazily against the parent's memoized boot template; oracle:
  ``os_channel="full"``;
* **run-to-completion group scheduling** — pooled shared campaigns drain
  one batch of prefix groups per worker; oracles: the group-per-task path
  and the serial shared/plain paths.
"""

import pickle

import pytest

from repro.core.controller.campaign import TestCampaign as Campaign
from repro.core.controller.controller import LFIController
from repro.core.controller.executor import (
    GroupBatchTask,
    GroupTask,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    execute_group,
    execute_group_batch,
    shard_group_tasks,
)
from repro.core.controller.prefix import build_group_tasks
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.core.scenario.builder import ScenarioBuilder
from repro.coverage.tracker import CoverageTracker
from repro.minicc import compile_source
from repro.oslib.os_model import SimOS, diff_state, merge_state
from repro.targets.base import DeltaOSClone, default_snapshots
from repro.targets.mini_bind import MiniBindTarget
from repro.targets.mini_git import MiniGitTarget
from repro.targets.pbft import PBFTCheckpointTarget
from repro.vm.machine import Machine, resolve_engine

ENGINES = ("reference", "compiled-steps", "compiled")
COMPILED_TARGETS = (MiniGitTarget, MiniBindTarget, PBFTCheckpointTarget)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _status_tuple(status):
    return (
        status.kind, status.code, status.reason, status.steps,
        status.pc, status.source, status.stdout, status.stderr,
    )


def _observe(binary, engine, scenario=None, max_steps=200_000, coverage=True,
             trace=True):
    """Run *binary* under one engine and capture every observable output."""
    os = SimOS("dataplane")
    gate = make_gate(scenario) if scenario is not None else None
    tracker = CoverageTracker() if coverage else None
    machine = Machine(binary, os=os, gate=gate, coverage=tracker,
                      engine=engine, max_steps=max_steps)
    if trace:
        machine.enable_trace()
    status = machine.run()
    observed = {
        "status": _status_tuple(status),
        "steps": machine.steps,
        "pc": machine.pc,
        "calls": dict(machine.library_call_counts),
        "stdout": os.stdout_text(),
    }
    if trace:
        observed["trace"] = list(machine.trace)
    if tracker is not None:
        observed["coverage"] = {
            a: tracker.hit_count(a) for a in tracker.covered_addresses
        }
    if gate is not None:
        observed["log"] = [record.to_dict() for record in gate.log.records]
    return observed


def assert_all_engines_agree(source, **kwargs):
    binary = compile_source(source, name="dataplane-diff")
    reference = _observe(binary, "reference", **kwargs)
    for engine in ("compiled-steps", "compiled"):
        assert _observe(binary, engine, **kwargs) == reference, engine
    return reference


def _campaign_observables(campaign):
    return [
        {
            "scenario": outcome.scenario.name,
            "kind": outcome.outcome.kind,
            "detail": outcome.outcome.detail,
            "exit_code": outcome.outcome.exit_code,
            "location": outcome.outcome.location,
            "injections": outcome.result.injections,
            "log": [record.to_dict() for record in outcome.result.log.records],
        }
        for outcome in campaign.outcomes
    ]


def _fault_space_scenarios(target):
    controller = LFIController(target)
    analysis = controller.analyze_target()
    points = controller.fault_space(analysis=analysis, include_checked=True)
    return [point.scenario() for point in points]


# ----------------------------------------------------------------------
# superclosure block batching vs both oracles
# ----------------------------------------------------------------------
class TestSuperclosureParity:
    def test_straight_line_arithmetic_and_branches(self):
        reference = assert_all_engines_agree(r"""
            int accumulate(int n) {
                int total;
                int i;
                total = 0;
                i = 0;
                while (i < n) {
                    if (i % 3 == 0) {
                        total = total + i * 2;
                    } else {
                        total = total - 1;
                    }
                    i = i + 1;
                }
                return total;
            }
            int main() {
                return accumulate(50) % 10;
            }
        """)
        assert reference["status"][0].value == "error-exit" or reference["status"][1] >= 0

    def test_trap_mid_block_division_by_zero(self):
        # The divide sits mid straight-line block: the superclosure must
        # attribute the trap to the exact instruction (same pc, same steps,
        # same partial trace/coverage as executing step by step).
        assert_all_engines_agree(r"""
            int main() {
                int a;
                int b;
                int c;
                a = 7;
                b = a - 7;
                c = a / b;
                return c;
            }
        """)

    def test_trap_mid_block_null_store(self):
        assert_all_engines_agree(r"""
            int main() {
                int p;
                int v;
                p = 0;
                v = 41;
                *p = v;
                return 0;
            }
        """)

    def test_max_steps_expires_mid_block(self):
        # Sweep the budget across every phase of a loop whose body fuses
        # into one block: wherever the budget lands, the hang must report
        # identical pc/steps on all three engines.
        source = r"""
            int main() {
                int i;
                i = 0;
                while (i < 100000) {
                    i = i + 1;
                }
                return i;
            }
        """
        binary = compile_source(source, name="dataplane-hang")
        for budget in (7, 8, 9, 10, 11, 12, 13, 50, 51):
            reference = _observe(binary, "reference", max_steps=budget)
            for engine in ("compiled-steps", "compiled"):
                assert _observe(binary, engine, max_steps=budget) == reference, (
                    engine, budget,
                )

    def test_injected_faults_identical(self):
        scenario = (
            ScenarioBuilder("dataplane-faults")
            .trigger("first_malloc", "CallCountTrigger", nth=1)
            .inject("malloc", ["first_malloc"], return_value=0, errno="ENOMEM")
            .trigger("second_read", "CallCountTrigger", nth=2)
            .inject("read", ["second_read"], return_value=-1, errno="EIO")
            .build()
        )
        assert_all_engines_agree(r"""
            int main() {
                int fd;
                int p;
                int buffer[16];
                p = malloc(8);
                if (p == 0) {
                    puts("oom");
                }
                fd = open("/tmp/x", 64);
                read(fd, buffer, 4);
                if (read(fd, buffer, 4) < 0) {
                    puts("read failed");
                    return 2;
                }
                close(fd);
                return 0;
            }
        """, scenario=scenario)

    @pytest.mark.parametrize("target_class", COMPILED_TARGETS)
    def test_targets_identical_across_engines(self, target_class):
        target = target_class()
        workload = target.workloads()[0]
        scenarios = _fault_space_scenarios(target)[:6]

        def run_all(engine):
            observed = []
            for scenario in scenarios:
                result = target.run(WorkloadRequest(
                    workload=workload, scenario=scenario,
                    collect_coverage=True,
                    options={"engine": engine},
                ))
                tracker = result.stats["coverage"]
                observed.append({
                    "kind": result.outcome.kind,
                    "detail": result.outcome.detail,
                    "injections": result.injections,
                    "log": [r.to_dict() for r in result.log.records],
                    "steps_run": result.stats["steps_run"],
                    "library_calls": result.stats["library_calls"],
                    "coverage": {
                        a: tracker.hit_count(a)
                        for a in tracker.covered_addresses
                    },
                })
            return observed

        reference = run_all("reference")
        assert run_all("compiled-steps") == reference
        assert run_all("compiled") == reference


# ----------------------------------------------------------------------
# coverage-off hot loop
# ----------------------------------------------------------------------
class TestCoverageOffLoop:
    SOURCE = r"""
        int main() {
            int i;
            int total;
            total = 0;
            i = 0;
            while (i < 200) {
                total = total + i;
                i = i + 1;
            }
            if (total > 1000) {
                return 0;
            }
            return 1;
        }
    """

    def test_plain_run_matches_reference(self):
        binary = compile_source(self.SOURCE, name="dataplane-plain")
        reference = _observe(binary, "reference", coverage=False, trace=False)
        for engine in ("compiled-steps", "compiled"):
            assert _observe(binary, engine, coverage=False, trace=False) == \
                reference, engine

    def test_plain_and_instrumented_agree_on_status(self):
        binary = compile_source(self.SOURCE, name="dataplane-plain2")
        plain = _observe(binary, "compiled", coverage=False, trace=False)
        instrumented = _observe(binary, "compiled", coverage=True, trace=True)
        assert plain["status"] == instrumented["status"]
        assert plain["steps"] == instrumented["steps"]

    def test_duck_typed_tracker_without_record_block_sees_every_step(self):
        # A tracker lacking the batch API must still observe each executed
        # instruction exactly once per execution (the machine falls back to
        # the per-step loop).
        class LegacyTracker:
            def __init__(self):
                self.hits = {}

            def record(self, address):
                self.hits[address] = self.hits.get(address, 0) + 1

            def reserve(self, size):
                pass

            def finish_run(self):
                pass

        binary = compile_source(self.SOURCE, name="dataplane-duck")
        legacy = LegacyTracker()
        machine = Machine(binary, coverage=legacy, engine="compiled")
        machine.run()
        modern = CoverageTracker()
        other = Machine(binary, coverage=modern, engine="reference")
        other.run()
        assert legacy.hits == {
            a: modern.hit_count(a) for a in modern.covered_addresses
        }


# ----------------------------------------------------------------------
# CoverageTracker.record_block
# ----------------------------------------------------------------------
class TestRecordBlock:
    def test_equivalent_to_repeated_record(self):
        batched, stepped = CoverageTracker(), CoverageTracker()
        batched.reserve(32)
        stepped.reserve(32)
        batched.record_block(3, 5)
        batched.record_block(3, 5)
        for _ in range(2):
            for address in range(3, 8):
                stepped.record(address)
        assert {a: batched.hit_count(a) for a in batched.covered_addresses} == \
            {a: stepped.hit_count(a) for a in stepped.covered_addresses}

    def test_grows_past_reserved_window(self):
        tracker = CoverageTracker()
        tracker.reserve(4)
        tracker.record_block(2, 6)  # spills past the dense window
        assert tracker.covered_addresses == set(range(2, 8))
        assert all(tracker.hit_count(a) == 1 for a in range(2, 8))

    def test_negative_start_falls_back_to_sparse(self):
        tracker = CoverageTracker()
        tracker.record_block(-2, 4)
        assert tracker.covered_addresses == {-2, -1, 0, 1}

    def test_zero_length_records_nothing(self):
        tracker = CoverageTracker()
        tracker.record_block(5, 0)
        assert tracker.covered_addresses == set()


# ----------------------------------------------------------------------
# run-to-completion group scheduling
# ----------------------------------------------------------------------
class TestShardGroupTasks:
    def _groups(self, count):
        return [
            GroupTask(index=i, target=None, workload="w", entries=[(i, None, None)])
            for i in range(count)
        ]

    def test_round_robin_interleave(self):
        batches = shard_group_tasks(self._groups(7), 3)
        assert [b.index for b in batches] == [0, 1, 2]
        assert [[g.index for g in b.groups] for b in batches] == [
            [0, 3, 6], [1, 4], [2, 5],
        ]

    def test_never_more_batches_than_groups(self):
        batches = shard_group_tasks(self._groups(2), 8)
        assert len(batches) == 2
        assert [[g.index for g in b.groups] for b in batches] == [[0], [1]]

    def test_degenerate_shard_counts(self):
        assert shard_group_tasks([], 4) == []
        batches = shard_group_tasks(self._groups(3), 0)
        assert len(batches) == 1
        assert [g.index for g in batches[0].groups] == [0, 1, 2]

    def test_assignment_is_deterministic_and_order_free(self):
        groups = self._groups(9)
        shuffled = list(reversed(groups))
        first = shard_group_tasks(groups, 4)
        second = shard_group_tasks(shuffled, 4)
        assert [[g.index for g in b.groups] for b in first] == \
            [[g.index for g in b.groups] for b in second]


class TestRunToCompletionDifferential:
    def test_batch_execution_merges_group_results(self):
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:8]
        entries = [(i, s, None) for i, s in enumerate(scenarios)]
        tasks = build_group_tasks(target, "status", entries)
        assert len(tasks) > 1
        per_group = {}
        for task in tasks:
            per_group.update(execute_group(task))
        batch = GroupBatchTask(index=0, groups=tasks)
        merged = execute_group_batch(batch)
        assert sorted(merged) == sorted(per_group) == list(range(len(scenarios)))

    def test_serial_batches_equal_run_groups(self):
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:8]
        entries = [(i, s, None) for i, s in enumerate(scenarios)]
        tasks = build_group_tasks(target, "status", entries)
        backend = SerialBackend()
        grouped = {}
        for results in backend.run_groups(tasks):
            grouped.update(results)
        batched = backend.run_group_batches(tasks)
        assert {i: r.outcome.kind for i, r in batched.items()} == \
            {i: r.outcome.kind for i, r in grouped.items()}

    def test_worker_counts(self):
        assert SerialBackend().worker_count() == 1
        assert ThreadPoolBackend(3).worker_count() == 3
        assert ProcessPoolBackend(2).worker_count() == 2
        assert ThreadPoolBackend().worker_count() >= 1
        assert ProcessPoolBackend().worker_count() >= 1

    @pytest.mark.parametrize("spec", ["threads:2", "processes:2"])
    def test_pooled_batches_identical_to_serial_and_plain(self, spec):
        target = MiniBindTarget()
        workload = target.workloads()[0]
        scenarios = _fault_space_scenarios(target)[:16]
        campaign = Campaign(target, workload=workload)
        plain = campaign.run(
            scenarios, seed=5, include_baseline=False, share_prefixes=False
        )
        reference = _campaign_observables(plain)
        serial_shared = campaign.run(
            scenarios, seed=5, include_baseline=False, share_prefixes=True
        )
        assert _campaign_observables(serial_shared) == reference
        pooled = campaign.run(
            scenarios, seed=5, include_baseline=False,
            share_prefixes=True, parallelism=spec,
        )
        assert _campaign_observables(pooled) == reference


# ----------------------------------------------------------------------
# the delta result channel
# ----------------------------------------------------------------------
class TestDeltaStateHelpers:
    def test_diff_and_merge_round_trip(self):
        base = {"a": 1, "b": [1, 2], "c": {"x": 0}}
        current = {"a": 1, "b": [1, 2, 3], "c": {"x": 0}, "d": "new"}
        delta = diff_state(base, current)
        assert delta == {"b": [1, 2, 3], "d": "new"}
        assert merge_state(base, delta) == current

    def test_none_values_are_not_confused_with_absence(self):
        base = {"a": None}
        assert diff_state(base, {"a": None}) == {}
        assert diff_state({}, {"a": None}) == {"a": None}


class TestDeltaResultChannel:
    def _run(self, target, scenario, **options):
        # Pin snapshots on: the delta channel rides the boot template, and
        # these assertions must hold regardless of the REPRO_SNAPSHOTS
        # default (the CI oracle leg runs the whole suite with it off).
        options.setdefault("snapshots", True)
        return target.run(WorkloadRequest(
            workload="status", scenario=scenario, options=options
        ))

    def _scenario(self):
        return (
            ScenarioBuilder("delta-diff")
            .trigger("second_open", "CallCountTrigger", nth=2)
            .inject("open", ["second_open"], return_value=-1, errno="EMFILE")
            .build()
        )

    def test_delta_channel_publishes_delta_clone(self):
        target = MiniGitTarget()
        result = self._run(target, self._scenario())
        assert isinstance(result.stats["os"], DeltaOSClone)

    def test_full_channel_keeps_the_oracle_shape(self):
        target = MiniGitTarget()
        result = self._run(target, self._scenario(), os_channel="full")
        assert not isinstance(result.stats["os"], DeltaOSClone)

    def test_hydrated_delta_state_identical_to_full_channel(self):
        target = MiniGitTarget()
        scenario = self._scenario()
        delta_os = self._run(target, scenario).stats["os"]
        full_os = self._run(target, scenario, os_channel="full").stats["os"]
        assert delta_os.capture_state() == full_os.capture_state()
        assert delta_os.stdout_text() == full_os.stdout_text()

    def test_delta_clone_pickle_round_trip(self):
        target = MiniGitTarget()
        result = self._run(target, self._scenario())
        original = result.stats["os"]
        restored = pickle.loads(pickle.dumps(original))
        assert isinstance(restored, DeltaOSClone)
        assert restored.capture_state() == original.capture_state()

    def test_wire_form_is_smaller_than_full_state(self):
        target = MiniGitTarget()
        scenario = self._scenario()
        delta_result = self._run(target, scenario)
        full_result = self._run(target, scenario, os_channel="full")
        delta_bytes = len(pickle.dumps(delta_result))
        full_bytes = len(pickle.dumps(full_result))
        assert delta_bytes < full_bytes

    @pytest.mark.parametrize("spec", ["threads:2", "processes:2"])
    def test_pooled_published_os_identical_to_serial_full(self, spec):
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:8]
        campaign = Campaign(target, workload="status")
        serial_full = campaign.run(
            scenarios, seed=2, include_baseline=False,
            snapshots=True, os_channel="full",
        )
        pooled = campaign.run(
            scenarios, seed=2, include_baseline=False,
            snapshots=True, parallelism=spec,
        )
        for reference, outcome in zip(serial_full.outcomes, pooled.outcomes):
            assert outcome.result.stats["os"].capture_state() == \
                reference.result.stats["os"].capture_state()


# ----------------------------------------------------------------------
# environment defaults (the CI oracle leg's knobs)
# ----------------------------------------------------------------------
class TestEnvironmentDefaults:
    def test_repro_engine_selects_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine(None) == "compiled"
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert resolve_engine(None) == "reference"
        assert resolve_engine("compiled") == "compiled"  # explicit wins

    def test_repro_snapshots_selects_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SNAPSHOTS", raising=False)
        assert default_snapshots() is True
        for value in ("0", "false", "no"):
            monkeypatch.setenv("REPRO_SNAPSHOTS", value)
            assert default_snapshots() is False
        monkeypatch.setenv("REPRO_SNAPSHOTS", "1")
        assert default_snapshots() is True

    def test_snapshots_env_default_reaches_sessions(self, monkeypatch):
        target = MiniGitTarget()
        monkeypatch.setenv("REPRO_SNAPSHOTS", "0")
        session = target.open_session("status")
        try:
            assert not session.snapshotted
        finally:
            session.close()
        monkeypatch.setenv("REPRO_SNAPSHOTS", "1")
        session = target.open_session("status")
        try:
            assert session.snapshotted
        finally:
            session.close()

    def test_reference_engine_machine_runs_through_targets(self, monkeypatch):
        # The CI oracle leg in one assertion: the whole request path works
        # with the env-selected reference engine and snapshots off.
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        monkeypatch.setenv("REPRO_SNAPSHOTS", "0")
        target = MiniGitTarget()
        result = target.run(WorkloadRequest(workload="status"))
        assert result.outcome.kind.value == "normal"
