"""Replay hardening and central-controller policy tests (PR 2 satellites).

* deterministic failure replay: a seeded mini_apache campaign's injections,
  rebuilt via ``build_replay_scenario``, re-inject identically on re-run;
* injection-record serialization round-trips, including errno-only faults;
* unit tests for the three distributed injection policies.
"""

import json

import pytest

from repro.core.controller.campaign import TestCampaign as InjectionCampaign
from repro.core.injection.context import CallContext
from repro.core.injection.faults import FaultSpec
from repro.core.injection.log import InjectionLog, InjectionRecord
from repro.core.injection.replay import build_replay_scenario
from repro.core.scenario.builder import ScenarioBuilder
from repro.core.scenario.xml_io import parse_scenario_xml, scenario_to_xml
from repro.distributed.central_controller import (
    CentralController,
    PacketLossPolicy,
    RotatingAttackPolicy,
    SilenceNodePolicy,
)
from repro.oslib.errno_codes import Errno
from repro.targets.mini_apache import MiniApacheTarget


# ----------------------------------------------------------------------
# replay determinism on mini_apache
# ----------------------------------------------------------------------
def _random_apache_scenario(name: str, function: str, return_value: int, errno):
    """One random injection per run against a mini_apache library call."""
    return (
        ScenarioBuilder(name)
        .trigger("luck", "RandomTrigger", probability=0.35)
        .trigger("once", "SingletonTrigger")
        .inject(function, ["luck", "once"], return_value=return_value, errno=errno)
        .build()
    )


def _injection_tuples(result):
    return [
        (
            record.function,
            record.call_count,
            record.fault.return_value,
            record.fault.errno,
        )
        for record in result.log.injections()
    ]


class TestReplayDeterminism:
    def test_seeded_campaign_replays_identically(self):
        target = MiniApacheTarget()
        scenarios = [
            _random_apache_scenario("rand-open", "open", -1, "EACCES"),
            _random_apache_scenario("rand-read", "apr_file_read", 70008, None),
            _random_apache_scenario("rand-close", "close", -1, "EIO"),
        ]
        campaign = InjectionCampaign(target, workload="ab-static").run(
            scenarios, include_baseline=False, seed=1234, requests=40
        )

        replayed = 0
        for outcome in campaign.outcomes:
            for record in outcome.result.log.injections():
                replay = build_replay_scenario(record)
                # Re-run the workload under the replay scenario (twice: the
                # replay itself must also be deterministic).
                first = target.run(
                    _request(replay, workload="ab-static", requests=40)
                )
                second = target.run(
                    _request(replay, workload="ab-static", requests=40)
                )
                expected = [
                    (
                        record.function,
                        record.call_count,
                        record.fault.return_value,
                        record.fault.errno,
                    )
                ]
                assert _injection_tuples(first) == expected
                assert _injection_tuples(second) == expected
                assert first.outcome.kind == second.outcome.kind
                # One injection per original run (singleton), so the replay
                # reproduces the original run's outcome too.
                assert first.outcome.kind == outcome.outcome.kind
                replayed += 1
        assert replayed >= 1, "seeded campaign should have injected at least once"

    def test_seeded_campaign_is_reproducible(self):
        target = MiniApacheTarget()
        scenarios = [
            _random_apache_scenario("rand-open", "open", -1, "EACCES"),
            _random_apache_scenario("rand-read", "apr_file_read", 70008, None),
        ]

        def signatures():
            campaign = InjectionCampaign(target, workload="ab-static").run(
                scenarios, include_baseline=False, seed=77, requests=25
            )
            return [_injection_tuples(outcome.result) for outcome in campaign.outcomes]

        assert signatures() == signatures()


def _request(scenario, workload, **options):
    from repro.core.controller.target import WorkloadRequest

    return WorkloadRequest(workload=workload, scenario=scenario, options=dict(options))


# ----------------------------------------------------------------------
# replay metadata preservation (errno-only faults) and record round-trips
# ----------------------------------------------------------------------
class TestReplayMetadataPreservation:
    def _errno_only_record(self):
        log = InjectionLog()
        return log.record(
            "apr_file_read",
            (7, 1024),
            injected=True,
            call_count=5,
            node="httpd",
            fault=FaultSpec(return_value=70008, errno=None),
            trigger_ids=["fd_kind", "apache_core"],
            source="httpd_core.py:118",
        )

    def test_errno_only_replay_preserves_trigger_metadata(self):
        # Regression: errno-only error-return specs (errno=None) must keep
        # the original record's trigger metadata on the replay scenario.
        replay = build_replay_scenario(self._errno_only_record())
        assert replay.metadata["original_triggers"] == ["fd_kind", "apache_core"]
        assert replay.metadata["original_call_count"] == 5
        assert replay.metadata["original_node"] == "httpd"
        assert replay.metadata["original_return_value"] == 70008
        assert replay.metadata["original_errno"] is None
        assert replay.plans[0].fault == FaultSpec(70008, None)

    def test_errno_only_replay_survives_xml(self):
        replay = build_replay_scenario(self._errno_only_record())
        parsed = parse_scenario_xml(scenario_to_xml(replay))
        assert parsed.metadata == replay.metadata
        assert parsed.plans[0].injects
        assert parsed.plans[0].fault == FaultSpec(70008, None)

    def test_record_dict_roundtrip_keeps_errno_only_fault(self):
        # Regression: a serialized log record with an errno-only fault used
        # to be indistinguishable from a pass-through (errno is None in
        # both); from_dict must rebuild the fault and stay replayable.
        record = self._errno_only_record()
        payload = json.loads(json.dumps(record.to_dict()))
        restored = InjectionRecord.from_dict(payload)
        assert restored.fault == FaultSpec(70008, None)
        assert restored.trigger_ids == ["fd_kind", "apache_core"]
        replay = build_replay_scenario(restored)
        assert replay.metadata["original_triggers"] == ["fd_kind", "apache_core"]
        assert replay.plans[0].fault == FaultSpec(70008, None)

    def test_record_dict_roundtrip_with_errno_and_stack(self):
        from repro.common.frames import StackFrame

        log = InjectionLog()
        record = log.record(
            "read",
            (3, 0, 8),
            injected=True,
            call_count=2,
            fault=FaultSpec(-1, int(Errno.EINTR)),
            trigger_ids=["t"],
            stack=[StackFrame(module="m", function="f", line=4)],
            source="m.c:4",
        )
        restored = InjectionRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert restored == record

    def test_passthrough_record_stays_unreplayable(self):
        log = InjectionLog(record_passthrough=True)
        record = log.record("read", (), injected=False, call_count=1)
        restored = InjectionRecord.from_dict(record.to_dict())
        assert restored.fault is None
        with pytest.raises(ValueError):
            build_replay_scenario(restored)


# ----------------------------------------------------------------------
# CentralController policies
# ----------------------------------------------------------------------
CTX = CallContext(function="sendto")


class TestPacketLossPolicy:
    def test_seeded_decisions_are_reproducible(self):
        first = PacketLossPolicy(probability=0.5, seed=9)
        second = PacketLossPolicy(probability=0.5, seed=9)
        decisions = [first.should_inject("n0", "sendto", (), CTX) for _ in range(50)]
        assert decisions == [second.should_inject("n0", "sendto", (), CTX) for _ in range(50)]
        assert any(decisions) and not all(decisions)

    def test_reset_replays_the_sequence(self):
        policy = PacketLossPolicy(probability=0.5, seed=3)
        before = [policy.should_inject("n0", "recvfrom", (), CTX) for _ in range(20)]
        policy.reset()
        assert [policy.should_inject("n0", "recvfrom", (), CTX) for _ in range(20)] == before

    def test_probability_extremes(self):
        always = PacketLossPolicy(probability=1.0, seed=0)
        never = PacketLossPolicy(probability=0.0, seed=0)
        assert all(always.should_inject("n0", "sendto", (), CTX) for _ in range(10))
        assert not any(never.should_inject("n0", "sendto", (), CTX) for _ in range(10))

    def test_non_target_function_passes_through(self):
        policy = PacketLossPolicy(probability=1.0, seed=0)
        assert not policy.should_inject("n0", "read", (), CTX)
        assert not policy.should_inject("n0", "malloc", (), CTX)

    def test_node_restriction(self):
        policy = PacketLossPolicy(probability=1.0, seed=0, nodes=("replica1",))
        assert policy.should_inject("replica1", "sendto", (), CTX)
        assert not policy.should_inject("replica2", "sendto", (), CTX)


class TestSilenceNodePolicy:
    def test_only_the_silenced_node_fails(self):
        policy = SilenceNodePolicy(node="replica2")
        assert policy.should_inject("replica2", "sendto", (), CTX)
        assert policy.should_inject("replica2", "recvfrom", (), CTX)
        assert not policy.should_inject("replica0", "sendto", (), CTX)

    def test_non_target_function_passes_through(self):
        policy = SilenceNodePolicy(node="replica2")
        assert not policy.should_inject("replica2", "fopen", (), CTX)

    def test_reset_is_stateless(self):
        policy = SilenceNodePolicy(node="replica2")
        assert policy.should_inject("replica2", "sendto", (), CTX)
        policy.reset()
        assert policy.should_inject("replica2", "sendto", (), CTX)


class TestRotatingAttackPolicy:
    def test_rotation_at_burst_boundaries(self):
        policy = RotatingAttackPolicy(nodes=("a", "b", "c"), burst=3)
        # Burst of 3 on 'a': exactly 3 injections, then the victim moves.
        for _ in range(3):
            assert policy.current_victim() == "a"
            assert policy.should_inject("a", "sendto", (), CTX)
        assert policy.current_victim() == "b"
        assert not policy.should_inject("a", "sendto", (), CTX)
        for _ in range(3):
            assert policy.should_inject("b", "sendto", (), CTX)
        assert policy.current_victim() == "c"
        for _ in range(3):
            assert policy.should_inject("c", "sendto", (), CTX)
        # Rotation wraps around to the first node.
        assert policy.current_victim() == "a"
        assert policy.should_inject("a", "sendto", (), CTX)

    def test_non_victim_and_non_target_pass_through(self):
        policy = RotatingAttackPolicy(nodes=("a", "b"), burst=2)
        assert not policy.should_inject("b", "sendto", (), CTX)  # not the victim
        assert not policy.should_inject("a", "read", (), CTX)  # not a comm call
        # Neither consumed any of the victim's burst budget.
        assert policy.should_inject("a", "sendto", (), CTX)
        assert policy.should_inject("a", "sendto", (), CTX)
        assert policy.current_victim() == "b"

    def test_empty_node_list_never_injects(self):
        policy = RotatingAttackPolicy(nodes=(), burst=2)
        assert policy.current_victim() is None
        assert not policy.should_inject("a", "sendto", (), CTX)

    def test_reset_restores_first_victim(self):
        policy = RotatingAttackPolicy(nodes=("a", "b"), burst=1)
        assert policy.should_inject("a", "sendto", (), CTX)
        assert policy.current_victim() == "b"
        policy.reset()
        assert policy.current_victim() == "a"
        assert policy.should_inject("a", "sendto", (), CTX)


class TestCentralControllerAccounting:
    def test_counters_and_history_with_policy(self):
        controller = CentralController(SilenceNodePolicy(node="r0"))
        assert controller.should_inject("r0", "sendto", (), CTX)
        assert not controller.should_inject("r1", "sendto", (), CTX)
        assert controller.consultations == 2
        assert controller.injections_by_node == {"r0": 1}
        assert controller.consultations_by_node == {"r0": 1, "r1": 1}
        assert controller.history == [("r0", "sendto", True), ("r1", "sendto", False)]
        controller.reset()
        assert controller.consultations == 0 and controller.history == []

    def test_policy_swap(self):
        controller = CentralController()
        assert not controller.should_inject("r0", "sendto", (), CTX)  # no policy
        controller.set_policy(PacketLossPolicy(probability=1.0, seed=0))
        assert controller.should_inject("r0", "sendto", (), CTX)
