"""Tests for the virtual machine: outcomes, traps, stacks, library calls."""

import pytest

from repro.isa import layout
from repro.isa.assembler import assemble_text
from repro.minicc import compile_source
from repro.oslib.os_model import SimOS
from repro.vm import ExitKind, Machine, Memory
from repro.vm.machine import VMError


class TestMemory:
    def test_null_page_guard(self):
        memory = Memory()
        from repro.oslib.errors import MemoryFault

        with pytest.raises(MemoryFault):
            memory.load(0)
        with pytest.raises(MemoryFault):
            memory.store(5, 1)

    def test_default_zero_and_roundtrip(self):
        memory = Memory()
        address = layout.DATA_BASE
        assert memory.load(address) == 0
        memory.store(address, 7)
        assert memory.load(address) == 7
        assert memory.peek(address) == 7

    def test_string_helpers(self):
        memory = Memory()
        memory.write_string(layout.DATA_BASE, "abc")
        assert memory.read_string(layout.DATA_BASE) == "abc"


class TestOutcomes:
    def test_normal_and_error_exit(self):
        ok, _ = self._run("int main() { return 0; }")
        assert ok.kind is ExitKind.NORMAL and not ok.failed
        bad, _ = self._run("int main() { return 3; }")
        assert bad.kind is ExitKind.ERROR_EXIT and bad.code == 3

    def test_segfault_from_null_dereference(self):
        status, _ = self._run("int main() { int p; p = 0; *p = 1; return 0; }")
        assert status.kind is ExitKind.SEGFAULT and status.crashed

    def test_division_by_zero(self):
        status, _ = self._run("int main() { int z; z = 0; return 4 / z; }")
        assert status.kind is ExitKind.SEGFAULT

    def test_abort_via_libc(self):
        status, _ = self._run("int main() { abort(); return 0; }")
        assert status.kind is ExitKind.ABORT and status.code == 134

    def test_assert_fail(self):
        status, machine = self._run('int main() { assert_fail("invariant"); return 0; }')
        assert status.kind is ExitKind.ABORT
        assert "invariant" in status.reason

    def test_exit_call(self):
        status, _ = self._run("int main() { exit(7); return 0; }")
        assert status.kind is ExitKind.ERROR_EXIT and status.code == 7

    def test_max_steps(self):
        binary = compile_source("int main() { while (1) { } return 0; }", name="loop")
        machine = Machine(binary, max_steps=500)
        status = machine.run()
        assert status.kind is ExitKind.MAX_STEPS
        assert status.steps == 500

    def test_halt_via_text_assembly(self):
        binary = assemble_text(".func main\n    mov r0, 5\n    halt\n.endfunc")
        status = Machine(binary).run()
        assert status.kind is ExitKind.ERROR_EXIT and status.code == 5

    @staticmethod
    def _run(source):
        binary = compile_source(source, name="vmtest")
        machine = Machine(binary)
        return machine.run(), machine


class TestLibraryCalls:
    def test_call_counts_and_unknown_function(self):
        binary = compile_source(
            'int main() { puts("a"); puts("b"); getpid(); return 0; }', name="counts"
        )
        machine = Machine(binary)
        status = machine.run()
        assert status.kind is ExitKind.NORMAL
        assert machine.library_call_counts["puts"] == 2
        assert machine.library_call_counts["getpid"] == 1

        bad = assemble_text(".func main\n    call @no_such_function\n    halt\n.endfunc")
        with pytest.raises(VMError):
            Machine(bad).run()

    def test_errno_mirrored_into_memory(self):
        source = """
        int main() {
            int fd;
            fd = open("/missing", 0);
            return errno;
        }
        """
        binary = compile_source(source, name="errno")
        machine = Machine(binary)
        status = machine.run()
        assert status.code == 2  # ENOENT
        assert machine.memory.peek(layout.ERRNO_ADDRESS) == 2

    def test_backtrace_and_state_reader(self):
        source = """
        int pending = 9;
        int inner() { return getpid(); }
        int outer() { return inner(); }
        int main() { return outer() - outer(); }
        """
        binary = compile_source(source, name="stack")
        captured = {}

        class RecordingGate:
            def call(self, name, args, invoke, apply_fault=None, context=None):
                captured["stack"] = context["stack"]()
                captured["state"] = context["state"]("pending")
                captured["module"] = context["module"]
                return invoke()

        machine = Machine(binary, gate=RecordingGate())
        status = machine.run()
        assert status.kind is ExitKind.NORMAL
        functions = [frame.function for frame in captured["stack"]]
        assert functions[:3] == ["inner", "outer", "main"]
        assert captured["state"] == 9
        assert captured["module"] == "stack"

    def test_coverage_hook_and_trace(self):
        binary = compile_source("int main() { return 0; }", name="cov")

        class Recorder:
            def __init__(self):
                self.addresses = []

            def record(self, address):
                self.addresses.append(address)

        recorder = Recorder()
        machine = Machine(binary, coverage=recorder)
        machine.enable_trace()
        machine.run()
        assert recorder.addresses == machine.trace
        assert recorder.addresses[0] == binary.entry_address()

    def test_entry_argument_and_missing_entry(self):
        binary = compile_source("int main(int code) { return code; }", name="args")
        assert Machine(binary).run(args=(4,)).code == 4
        with pytest.raises(VMError):
            Machine(binary).run(entry="missing")

    def test_read_writes_into_program_buffer(self):
        os = SimOS("io")
        os.fs.add_file("/input.txt", b"xyz")
        source = """
        int main() {
            int fd;
            int n;
            int buffer[8];
            fd = open("/input.txt", 0);
            n = read(fd, buffer, 3);
            if (n != 3) { return 1; }
            if (buffer[0] != 120) { return 2; }
            close(fd);
            return 0;
        }
        """
        binary = compile_source(source, name="io")
        status = Machine(binary, os=os).run()
        assert status.kind is ExitKind.NORMAL
