"""Tests for the call-site analyzer: CFG, dataflow, Algorithm 1, errno checks."""

import pytest

from repro.core.analysis.analyzer import CallSiteAnalyzer
from repro.core.analysis.cfg import build_partial_cfg
from repro.core.analysis.classifier import classify_call_sites, classify_check_result
from repro.core.analysis.dataflow import CheckResult, analyze_return_value_checks
from repro.core.analysis.errno_analysis import analyze_errno_checks, classify_errno_handling
from repro.core.analysis.scenario_gen import generate_injection_scenarios
from repro.core.profiler.spec_profiles import combined_reference_profile
from repro.minicc import compile_source

SOURCE = """
int do_read_ineq(int fd) {
    int n;
    int buffer[8];
    n = read(fd, buffer, 4);
    if (n < 0) { return -1; }
    return n;
}

int do_open_eq() {
    int fd;
    fd = open("/etc/x", 0);
    if (fd == -1) { return -1; }
    return fd;
}

int do_malloc_unchecked() {
    int p;
    p = malloc(8);
    *p = 1;
    return 0;
}

int do_malloc_checked_in_loop(int n) {
    int p;
    int i;
    p = malloc(n);
    i = 0;
    while (i < 3) {
        if (p == 0) { return -1; }
        i = i + 1;
    }
    return 0;
}

int checks_wrong_constant(int fd) {
    int n;
    n = close(fd);
    if (n == 7) { return 1; }
    return 0;
}

int checks_errno_after_read(int fd) {
    int n;
    int buffer[4];
    n = read(fd, buffer, 2);
    if (n < 0) {
        if (errno == 4) { return 1; }
        return -1;
    }
    return n;
}

int main() {
    int fd;
    fd = do_open_eq();
    do_read_ineq(fd);
    do_malloc_unchecked();
    do_malloc_checked_in_loop(4);
    checks_wrong_constant(fd);
    checks_errno_after_read(fd);
    return 0;
}
"""


@pytest.fixture(scope="module")
def binary():
    return compile_source(SOURCE, name="analysis_toy")


def site_of(binary, function, caller):
    return next(s for s in binary.call_sites(function) if s.caller == caller)


class TestCFG:
    def test_partial_cfg_structure(self, binary):
        site = site_of(binary, "read", "do_read_ineq")
        cfg = build_partial_cfg(binary, site.address + 1)
        assert cfg.entry == site.address + 1
        assert len(cfg.blocks) >= 2
        assert cfg.instruction_count <= 100
        entry_block = cfg.block_at(cfg.entry)
        assert entry_block is not None
        assert all(
            successor in cfg.blocks
            for block in cfg.blocks.values()
            for successor in block.successors
        )

    def test_budget_truncation(self, binary):
        site = binary.call_sites("open")[0]
        cfg = build_partial_cfg(binary, site.address + 1, max_instructions=5)
        assert cfg.instruction_count <= 5

    def test_predecessors_consistent(self, binary):
        site = site_of(binary, "malloc", "do_malloc_checked_in_loop")
        cfg = build_partial_cfg(binary, site.address + 1)
        for start, block in cfg.blocks.items():
            for successor in block.successors:
                assert any(p.start == start for p in cfg.predecessors(successor))


class TestDataflow:
    def test_inequality_check_detected(self, binary):
        site = site_of(binary, "read", "do_read_ineq")
        checks = analyze_return_value_checks(binary, site.address)
        assert 0 in checks.chk_ineq
        assert checks.checked
        assert checks.check_sites  # where the cmp/jump happened

    def test_equality_check_detected(self, binary):
        site = site_of(binary, "open", "do_open_eq")
        checks = analyze_return_value_checks(binary, site.address)
        assert -1 in checks.chk_eq

    def test_unchecked_has_no_checks(self, binary):
        site = site_of(binary, "malloc", "do_malloc_unchecked")
        checks = analyze_return_value_checks(binary, site.address)
        assert not checks.checked

    def test_check_found_through_loop(self, binary):
        site = site_of(binary, "malloc", "do_malloc_checked_in_loop")
        checks = analyze_return_value_checks(binary, site.address)
        assert 0 in checks.chk_eq
        assert checks.iterations >= 1


class TestClassifier:
    def test_algorithm1_categories(self):
        assert classify_check_result(CheckResult(chk_eq={-1}), [-1]) == "checked"
        assert classify_check_result(CheckResult(chk_ineq={0}), [-1]) == "checked"
        assert classify_check_result(CheckResult(chk_eq={0}), [0, -1]) == "partial"
        assert classify_check_result(CheckResult(chk_eq={7}), [-1]) == "unchecked"
        assert classify_check_result(CheckResult(), [-1]) == "unchecked"

    def test_wrong_constant_is_unchecked(self, binary):
        classification = classify_call_sites(binary, "close", [-1])
        wrong = [s for s in classification.all_sites()
                 if s.site.caller == "checks_wrong_constant"]
        assert wrong[0].category == "unchecked"

    def test_per_function_classification(self, binary):
        classification = classify_call_sites(binary, "malloc", [0])
        assert classification.site_count() == 2
        assert len(classification.unchecked) == 1
        assert len(classification.fully_checked) == 1
        assert "malloc" in classification.summary()


class TestErrnoAnalysis:
    def test_errno_check_detected(self, binary):
        site = site_of(binary, "read", "checks_errno_after_read")
        result = analyze_errno_checks(binary, site.address)
        assert result.reads_errno
        assert 4 in result.checked_values  # EINTR

    def test_errno_not_checked_elsewhere(self, binary):
        site = site_of(binary, "read", "do_read_ineq")
        result = analyze_errno_checks(binary, site.address)
        assert not result.checked_values

    def test_site_reports(self, binary):
        reports = classify_errno_handling(binary, "read", ["EINTR", "EIO"])
        by_caller = {report.site.caller: report for report in reports}
        assert "EINTR" in by_caller["checks_errno_after_read"].checked
        assert "EIO" in by_caller["checks_errno_after_read"].missing
        assert not by_caller["do_read_ineq"].complete


class TestAnalyzerFacade:
    def test_report_and_scenarios(self, binary):
        analyzer = CallSiteAnalyzer()
        report = analyzer.analyze(binary)
        assert report.call_sites_analyzed > 0
        assert report.analysis_seconds >= 0
        assert report.classification("malloc") is not None
        unchecked = report.unchecked_sites()
        assert any(site.site.callee == "malloc" for site in unchecked)

        scenarios = analyzer.generate_scenarios(report)
        assert scenarios
        for scenario in scenarios:
            assert scenario.metadata["category"] in ("unchecked", "partial")
            plan = scenario.injecting_plans()[0]
            assert plan.trigger_ids  # pinned by a call-stack trigger

    def test_function_filter(self, binary):
        analyzer = CallSiteAnalyzer()
        report = analyzer.analyze(binary, functions=["malloc"])
        assert list(report.classifications) == ["malloc"]
        scenarios = analyzer.generate_scenarios(report, functions=["malloc"])
        assert all(s.metadata["target_function"] == "malloc" for s in scenarios)

    def test_every_errno_expansion(self, binary):
        analyzer = CallSiteAnalyzer()
        report = analyzer.analyze(binary, functions=["malloc"])
        single = analyzer.generate_scenarios(report)
        expanded = analyzer.generate_scenarios(report, every_errno=True)
        assert len(expanded) >= len(single)

    def test_scenario_generation_helper(self, binary):
        profile = combined_reference_profile()
        classification = classify_call_sites(binary, "malloc", profile.error_values("malloc"))
        scenarios = generate_injection_scenarios([classification], profile)
        assert len(scenarios) == 1  # only the unchecked site
        scenarios = generate_injection_scenarios(
            [classification], profile, include_checked=True
        )
        assert len(scenarios) == 2
