"""Differential tests: compiled closure-threaded engine vs reference interpreter.

The compiled engine (``repro.vm.dispatch``) must be observably identical to
the reference interpreter: same exit status (kind, code, reason, step count,
pc, source, stdout/stderr), same trace, same coverage, same library call
counts, and the same injection log — with and without an armed fault plan.
These tests enforce that on hand-written programs, on every compiled mini
target's smoke workload, and on randomly generated mini-C programs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller.target import WorkloadRequest, make_gate
from repro.core.injection.gate import LibraryCallGate
from repro.core.scenario.builder import ScenarioBuilder
from repro.coverage.tracker import CoverageTracker
from repro.isa import layout
from repro.isa.assembler import assemble_text
from repro.minicc import compile_source
from repro.oslib.os_model import SimOS
from repro.targets.mini_bind import MiniBindTarget
from repro.targets.mini_git import MiniGitTarget
from repro.targets.pbft import PBFTCheckpointTarget
from repro.vm import ExitKind, Machine, Memory, compiled_program
from repro.vm.machine import VMError

ENGINES = ("reference", "compiled")


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _status_tuple(status):
    return (
        status.kind,
        status.code,
        status.reason,
        status.steps,
        status.pc,
        status.source,
        status.stdout,
        status.stderr,
    )


def _log_dicts(gate):
    return [record.to_dict() for record in gate.log.records]


def _observe(binary, engine, scenario=None, os_factory=None, args=(),
             entry=None, max_steps=200_000, run_seed=None):
    """Run *binary* under one engine and capture every observable output."""
    os = os_factory() if os_factory is not None else SimOS("diff")
    gate = make_gate(scenario, run_seed=run_seed) if scenario is not None else None
    tracker = CoverageTracker()
    machine = Machine(binary, os=os, gate=gate, coverage=tracker,
                      engine=engine, max_steps=max_steps)
    machine.enable_trace()
    status = machine.run(entry=entry, args=args)
    return {
        "status": _status_tuple(status),
        "trace": list(machine.trace),
        "coverage": {a: tracker.hit_count(a) for a in tracker.covered_addresses},
        "calls": dict(machine.library_call_counts),
        "log": _log_dicts(gate) if gate is not None else None,
        "injected": gate.injected_calls if gate is not None else 0,
        "intercepted": gate.intercepted_calls if gate is not None else 0,
    }


def assert_engines_agree(binary, **kwargs):
    reference = _observe(binary, "reference", **kwargs)
    compiled = _observe(binary, "compiled", **kwargs)
    assert compiled == reference
    return reference


def _fault_scenario():
    """A generic plan arming faults on functions the programs actually call."""
    return (
        ScenarioBuilder("differential")
        .trigger("first_malloc", "CallCountTrigger", nth=1)
        .inject("malloc", ["first_malloc"], return_value=0, errno="ENOMEM")
        .trigger("early_open", "SingletonTrigger", max=2)
        .inject("open", ["early_open"], return_value=-1, errno="EMFILE")
        .trigger("second_read", "CallCountTrigger", nth=2)
        .inject("read", ["second_read"], return_value=-1, errno="EIO")
        .build()
    )


# ----------------------------------------------------------------------
# hand-written program differentials
# ----------------------------------------------------------------------
class TestHandWrittenDifferentials:
    def test_arithmetic_control_flow_and_recursion(self):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() {
            int total;
            int i;
            total = 0;
            for (i = 0; i < 8; i = i + 1) { total = total + fib(i) * 3 - i / 2; }
            return total % 97;
        }
        """
        result = assert_engines_agree(compile_source(source, name="diff"))
        assert result["status"][0] is ExitKind.ERROR_EXIT

    def test_null_dereference_segfault(self):
        source = "int main() { int p; p = 0; *p = 1; return 0; }"
        result = assert_engines_agree(compile_source(source, name="diff"))
        assert result["status"][0] is ExitKind.SEGFAULT

    def test_division_by_zero(self):
        source = "int main() { int z; z = 0; return 7 / z; }"
        result = assert_engines_agree(compile_source(source, name="diff"))
        assert result["status"][:2] == (ExitKind.SEGFAULT, 136)

    def test_max_steps_timeout(self):
        binary = compile_source("int main() { while (1) { } return 0; }", name="diff")
        result = assert_engines_agree(binary, max_steps=777)
        assert result["status"][0] is ExitKind.MAX_STEPS
        assert result["status"][3] == 777

    def test_entry_and_arguments(self):
        source = "int helper(int a, int b) { return a * 10 + b; } int main() { return 0; }"
        result = assert_engines_agree(
            compile_source(source, name="diff"), entry="helper", args=(4, 2)
        )
        assert result["status"][1] == 42

    def test_library_calls_without_gate(self):
        source = """
        int main() {
            int fd;
            int buffer[8];
            puts("hello");
            fd = open("/input.txt", 0);
            if (fd < 0) { return 1; }
            if (read(fd, buffer, 3) != 3) { return 2; }
            close(fd);
            return buffer[0];
        }
        """

        def os_factory():
            os = SimOS("diff")
            os.fs.add_file("/input.txt", b"xyz")
            return os

        result = assert_engines_agree(
            compile_source(source, name="diff"), os_factory=os_factory
        )
        assert result["calls"] == {"puts": 1, "open": 1, "read": 1, "close": 1}

    def test_injection_log_parity_under_armed_plan(self):
        source = """
        int main() {
            int p;
            int fd;
            p = malloc(16);
            if (p == 0) { return 3; }
            fd = open("/var/data", 0);
            return 0;
        }
        """
        result = assert_engines_agree(
            compile_source(source, name="diff"),
            scenario=_fault_scenario(),
            run_seed=7,
        )
        assert result["injected"] == 1
        assert result["status"][1] == 3
        assert len(result["log"]) == 1 and result["log"][0]["function"] == "malloc"

    def test_crash_from_injected_allocation_failure(self):
        source = """
        int main() {
            int p;
            p = malloc(16);
            *p = 1;
            return 0;
        }
        """
        result = assert_engines_agree(
            compile_source(source, name="diff"),
            scenario=_fault_scenario(),
            run_seed=7,
        )
        assert result["status"][0] is ExitKind.SEGFAULT


# ----------------------------------------------------------------------
# random mini-C programs (hypothesis)
# ----------------------------------------------------------------------
_VARS = ("a", "b", "c", "d")

_expr_leaf = st.one_of(
    st.integers(min_value=-9, max_value=99).map(str),
    st.sampled_from(_VARS),
)


@st.composite
def _expr(draw, depth=2):
    if depth > 0 and draw(st.integers(0, 2)) == 0:
        op = draw(st.sampled_from(["+", "-", "*", "/", "%"]))
        return f"({draw(_expr(depth - 1))} {op} {draw(_expr(depth - 1))})"
    return draw(_expr_leaf)


@st.composite
def _condition(draw):
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    return f"({draw(_expr(1))} {op} {draw(_expr(1))})"


_LIB_STATEMENTS = (
    "getpid();",
    'puts("m");',
    "b = malloc(4);",
    'c = open("/input.txt", 0);',
    "d = read(c, 0, 0);",
    "close(c);",
)


@st.composite
def _statement(draw, counters, depth):
    choices = ["assign", "assign", "lib", "if"]
    if counters and depth > 0:
        choices.append("while")
    kind = draw(st.sampled_from(choices))
    if kind == "assign":
        return f"{draw(st.sampled_from(_VARS))} = {draw(_expr())};"
    if kind == "lib":
        return draw(st.sampled_from(_LIB_STATEMENTS))
    if kind == "if":
        body = draw(_block(counters, depth - 1))
        if draw(st.booleans()):
            alternative = draw(_block(counters, depth - 1))
            return f"if {draw(_condition())} {{ {body} }} else {{ {alternative} }}"
        return f"if {draw(_condition())} {{ {body} }}"
    counter, rest = counters[0], counters[1:]
    bound = draw(st.integers(min_value=1, max_value=6))
    body = draw(_block(rest, depth - 1))
    return (
        f"{counter} = 0; "
        f"while ({counter} < {bound}) {{ {counter} = {counter} + 1; {body} }}"
    )


@st.composite
def _block(draw, counters, depth):
    count = draw(st.integers(min_value=1, max_value=3))
    return " ".join(draw(_statement(counters, depth)) for _ in range(count))


@st.composite
def mini_c_programs(draw):
    body = draw(_block(("i0", "i1"), 2))
    return (
        "int main() { int a; int b; int c; int d; int i0; int i1; "
        "a = 1; b = 2; c = 3; d = 4; i0 = 0; i1 = 0; "
        f"{body} return (a + b + c + d) % 100; }}"
    )


def _random_program_os():
    os = SimOS("diff")
    os.fs.add_file("/input.txt", b"hypothesis")
    return os


class TestRandomProgramDifferentials:
    @given(mini_c_programs())
    @settings(max_examples=30, deadline=None)
    def test_engines_agree_on_random_programs(self, source):
        binary = compile_source(source, name="rand")
        assert_engines_agree(binary, os_factory=_random_program_os, max_steps=50_000)

    @given(mini_c_programs())
    @settings(max_examples=20, deadline=None)
    def test_engines_agree_under_armed_fault_plan(self, source):
        binary = compile_source(source, name="rand")
        assert_engines_agree(
            binary,
            os_factory=_random_program_os,
            scenario=_fault_scenario(),
            run_seed=11,
            max_steps=50_000,
        )


# ----------------------------------------------------------------------
# compiled target smoke differentials
# ----------------------------------------------------------------------
class TestTargetSmokeDifferentials:
    @pytest.mark.parametrize(
        "target_class", [MiniBindTarget, MiniGitTarget, PBFTCheckpointTarget]
    )
    @pytest.mark.parametrize("armed", [False, True])
    def test_smoke_workload_engine_parity(self, target_class, armed):
        scenario = _fault_scenario() if armed else None
        outputs = []
        for engine in ENGINES:
            target = target_class()
            request = WorkloadRequest(
                workload=target.workloads()[0],
                scenario=scenario,
                collect_coverage=True,
                options={"engine": engine, "run_seed": 3},
            )
            result = target.run(request)
            tracker = result.stats["coverage"]
            outputs.append(
                {
                    "outcome": result.outcome,
                    "steps_run": result.stats["steps_run"],
                    "library_calls": result.stats["library_calls"],
                    "coverage": {
                        address: tracker.hit_count(address)
                        for address in tracker.covered_addresses
                    },
                    "log": [record.to_dict() for record in result.log.records],
                }
            )
        reference, compiled = outputs
        assert compiled == reference


# ----------------------------------------------------------------------
# engine selection + bookkeeping units
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_invalid_engine_rejected(self):
        binary = compile_source("int main() { return 0; }", name="sel")
        with pytest.raises(VMError):
            Machine(binary, engine="jit")

    def test_default_engine_is_compiled(self, monkeypatch):
        # The built-in default, with the env override out of the picture
        # (the CI oracle leg sets REPRO_ENGINE=reference suite-wide).
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        binary = compile_source("int main() { return 0; }", name="sel")
        assert Machine(binary).engine == "compiled"
        assert Machine(binary, engine="reference")._program is None

    def test_compiled_program_shared_across_machines(self):
        binary = compile_source("int main() { return 0; }", name="sel")
        first = Machine(binary, engine="compiled")
        second = Machine(binary, engine="compiled")
        assert first._program is second._program
        assert compiled_program(binary) is first._program

    def test_image_stays_picklable_after_compiled_run(self):
        # Images cross process boundaries under ProcessPoolBackend; the
        # cached closure array must be dropped on pickling, not break it.
        import pickle

        binary = compile_source('int main() { puts("x"); return 0; }', name="pick")
        assert Machine(binary).run().kind is ExitKind.NORMAL
        assert binary.function_containing(0) is not None  # build range table
        clone = pickle.loads(pickle.dumps(binary))
        assert clone.function_containing(0).name == "main"
        status = Machine(clone).run()
        assert status.kind is ExitKind.NORMAL and status.stdout == "x\n"

    def test_unknown_import_raises_in_both_engines(self):
        bad = assemble_text(".func main\n    call @no_such_function\n    halt\n.endfunc")
        for engine in ENGINES:
            with pytest.raises(VMError):
                Machine(bad, engine=engine).run()

    def test_dead_malformed_instruction_is_harmless(self):
        # A malformed hand-built instruction (missing operand) must only
        # fail when executed, in both engines — never at Machine() time.
        from repro.isa.binary import BinaryImage
        from repro.isa.instructions import Opcode, Reg, make

        instructions = [
            make(Opcode.MOV, Reg("r0"), address=0),  # malformed: one operand
            make(Opcode.HALT, address=1),
        ]
        binary = BinaryImage("broken", instructions, {"main": 1}, [])
        for engine in ENGINES:
            status = Machine(binary, engine=engine).run()
            assert status.kind is ExitKind.NORMAL
        live = BinaryImage("broken2", instructions, {"main": 0}, [])
        for engine in ENGINES:
            with pytest.raises(IndexError):
                Machine(live, engine=engine).run()

    def test_dead_unknown_import_is_harmless(self):
        # The reference engine only reports unknown callees when the call
        # executes; compiled raising-closures must preserve that for dead code.
        source = (
            ".func main\n    mov r0, 0\n    halt\n    call @no_such_function\n.endfunc"
        )
        binary = assemble_text(source)
        for engine in ENGINES:
            status = Machine(binary, engine=engine).run()
            assert status.kind is ExitKind.NORMAL


class TestCallCountReadThrough:
    SOURCE = 'int main() { puts("a"); puts("b"); getpid(); return 0; }'

    def test_counts_read_through_to_standard_gate(self):
        binary = compile_source(self.SOURCE, name="counts")
        for engine in ENGINES:
            gate = LibraryCallGate()
            machine = Machine(binary, gate=gate, engine=engine)
            machine.run()
            assert dict(machine.library_call_counts) == gate.call_counts
            assert gate.call_counts == {"puts": 2, "getpid": 1}
            assert gate.total_calls == 3
            # No duplicate bookkeeping on the VM side, and the view is
            # read-only so callers cannot corrupt the gate's accounting.
            assert machine._local_call_counts == {}
            with pytest.raises(TypeError):
                machine.library_call_counts["puts"] = 0

    def test_counts_kept_locally_for_counterless_custom_gate(self):
        binary = compile_source(self.SOURCE, name="counts")

        class PassthroughGate:
            def __init__(self):
                self.seen = []

            def call(self, name, args, invoke, apply_fault=None, context=None):
                self.seen.append(name)
                return invoke()

        for engine in ENGINES:
            gate = PassthroughGate()
            machine = Machine(binary, gate=gate, engine=engine)
            machine.run()
            assert machine.library_call_counts == {"puts": 2, "getpid": 1}
            assert gate.seen == ["puts", "puts", "getpid"]

    def test_duck_typed_runtime_without_intercepted_functions(self):
        # A stub runtime satisfying only the gate's handles()/decide()
        # contract must route calls through the gate in both engines.
        from repro.core.injection.runtime import InjectionDecision

        class StubRuntime:
            def __init__(self):
                self.decided = []

            def handles(self, name):
                return True

            def decide(self, ctx):
                self.decided.append(ctx.function)
                return InjectionDecision.no_injection()

        binary = compile_source('int main() { puts("s"); return 0; }', name="stub")
        for engine in ENGINES:
            gate = LibraryCallGate()
            gate.install_runtime(StubRuntime())
            status = Machine(binary, gate=gate, engine=engine).run()
            assert status.kind is ExitKind.NORMAL
            assert gate.runtime.decided == ["puts"]
            assert gate.intercepted_calls == 1

    def test_handled_mask_tracks_runtime_swaps(self):
        binary = compile_source(
            "int main() { int p; p = malloc(8); free(p); return 0; }", name="mask"
        )
        scenario = (
            ScenarioBuilder("mask")
            .trigger("never", "CallCountTrigger", nth=10_000)
            .inject("malloc", ["never"], return_value=0, errno="ENOMEM")
            .build()
        )
        gate = make_gate(scenario)
        # The mask is interception-fast-path state of the compiled engines;
        # pin the engine so the REPRO_ENGINE=reference leg still sees it.
        machine = Machine(binary, gate=gate, engine="compiled")
        machine.run()
        assert machine._handled_mask == frozenset({"malloc"})
        # Swapping the runtime out must invalidate the mask on the next run.
        gate.install_runtime(None)
        machine = Machine(binary, gate=gate, engine="compiled")
        machine.run()
        assert machine._handled_mask == frozenset()


class TestRegisterFileView:
    def test_view_reads_and_writes_slots(self):
        binary = compile_source("int main() { return 0; }", name="regs")
        machine = Machine(binary)
        machine.registers["r3"] = 7
        assert machine.regs[3] == 7
        machine.regs[3] = 9
        assert machine.registers["r3"] == 9
        assert len(machine.registers) == 10
        assert set(machine.registers) == {
            "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "sp", "bp",
        }
        assert dict(machine.registers.items())["r3"] == 9


class TestMemoryStackWindow:
    def test_stack_window_roundtrip_and_snapshot(self):
        memory = Memory()
        top = layout.STACK_TOP - 1
        memory.store(top, 1234)
        assert memory.load(top) == 1234
        assert memory.peek(top) == 1234
        assert memory.snapshot()[top] == 1234
        assert len(memory) == 1

    def test_deep_stack_falls_back_to_sparse_store(self):
        memory = Memory()
        deep = layout.STACK_LIMIT + 1  # far below the array window
        memory.store(deep, 77)
        assert memory.load(deep) == 77
        assert memory.snapshot()[deep] == 77

    def test_poke_and_peek_agree_with_store(self):
        memory = Memory()
        address = layout.STACK_TOP - 5
        memory.poke(address, 42)
        assert memory.load(address) == 42


class TestCoverageTrackerArray:
    def test_record_reserve_merge_and_hit_counts(self):
        first = CoverageTracker()
        first.reserve(16)
        first.record(3)
        first.record(3)
        first.record(12)
        second = CoverageTracker()
        second.record(3)
        second.record(-5)  # out-of-segment addresses still tracked
        second.finish_run()
        first.merge(second)
        assert first.covered_addresses == {3, 12, -5}
        assert first.hit_count(3) == 3
        assert first.hit_count(-5) == 1
        assert first.runs == 1
        first.clear()
        assert not first.covered_addresses
        assert first.hit_count(3) == 0

    def test_far_addresses_stay_sparse_until_reserved(self):
        tracker = CoverageTracker()
        far = 0x40_0000  # way past any code segment
        tracker.record(far)
        assert len(tracker._counts) == 0  # no megabyte zero-fill
        assert tracker.hit_count(far) == 1
        tracker.reserve(far + 1)  # explicit sizing migrates the sparse entry
        assert tracker.hit_count(far) == 1
        tracker.record(far)
        assert tracker.hit_count(far) == 2
        assert tracker.covered_addresses == {far}
