"""Tests for the LFI controller, campaigns, bug reports, and distributed policies."""

import pytest

from repro.core.controller.campaign import TestCampaign as InjectionCampaign
from repro.core.controller.controller import LFIController
from repro.core.controller.monitor import (
    Outcome,
    OutcomeKind,
    RunResult,
    classify_exception,
    classify_exit_status,
    run_python_workload,
)
from repro.core.controller.report import build_bug_report, format_bug_report
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.core.injection.context import CallContext
from repro.core.scenario.builder import ScenarioBuilder
from repro.distributed import (
    CentralController,
    PacketLossPolicy,
    RotatingAttackPolicy,
    SilenceNodePolicy,
)
from repro.minicc import compile_source
from repro.oslib.errors import MemoryFault, MutexAbort, OSFault, SimExit
from repro.oslib.os_model import SimOS
from repro.vm import ExitKind, Machine
from repro.vm.outcome import ExitStatus


class TestMonitor:
    def test_exit_status_mapping(self):
        assert classify_exit_status(ExitStatus(kind=ExitKind.NORMAL)).kind is OutcomeKind.NORMAL
        assert classify_exit_status(ExitStatus(kind=ExitKind.SEGFAULT)).kind is OutcomeKind.CRASH
        assert classify_exit_status(ExitStatus(kind=ExitKind.ABORT)).kind is OutcomeKind.ABORT
        assert classify_exit_status(ExitStatus(kind=ExitKind.MAX_STEPS)).kind is OutcomeKind.HANG
        assert classify_exit_status(
            ExitStatus(kind=ExitKind.ERROR_EXIT, code=2)
        ).kind is OutcomeKind.ERROR_EXIT

    def test_exception_mapping(self):
        assert classify_exception(MemoryFault(0)).kind is OutcomeKind.CRASH
        assert classify_exception(MutexAbort(1, "double unlock")).kind is OutcomeKind.ABORT
        assert classify_exception(SimExit(0)).kind is OutcomeKind.NORMAL
        assert classify_exception(SimExit(3)).kind is OutcomeKind.ERROR_EXIT
        assert classify_exception(SimExit(134, aborted=True)).kind is OutcomeKind.ABORT
        assert classify_exception(OSFault(5)).kind is OutcomeKind.ERROR_EXIT
        assert classify_exception(ValueError("boom")).kind is OutcomeKind.CRASH

    def test_run_python_workload(self):
        assert run_python_workload(lambda: None).kind is OutcomeKind.NORMAL
        assert run_python_workload(lambda: 3).kind is OutcomeKind.ERROR_EXIT
        custom = Outcome(kind=OutcomeKind.DATA_LOSS, detail="oracle")
        assert run_python_workload(lambda: custom) is custom

        def crash():
            raise RuntimeError("unexpected")

        assert run_python_workload(crash).kind is OutcomeKind.CRASH
        assert Outcome(kind=OutcomeKind.DATA_LOSS).is_high_impact
        assert not Outcome(kind=OutcomeKind.ERROR_EXIT).is_high_impact


TOY_SOURCE = """
int main() {
    int p;
    int fd;
    fd = open("/cfg", 0);
    if (fd < 0) { return 1; }
    p = malloc(16);
    *p = 7;
    close(fd);
    return 0;
}
"""


class ToyTarget:
    """Small compiled target used to exercise the controller end to end."""

    name = "toy"

    def __init__(self):
        self._binary = compile_source(TOY_SOURCE, name="toy")

    def binary(self):
        return self._binary

    def workloads(self):
        return ["default"]

    def run(self, request: WorkloadRequest) -> RunResult:
        os = SimOS("toy")
        os.fs.add_file("/cfg", b"x")
        gate = make_gate(request.scenario, observe_only=request.observe_only)
        machine = Machine(self._binary, os=os, gate=gate)
        status = machine.run()
        return RunResult(outcome=classify_exit_status(status), log=gate.log)


class TestCampaignAndController:
    def test_campaign_runs_each_scenario(self):
        target = ToyTarget()
        scenarios = [
            ScenarioBuilder("fail-malloc").trigger("once", "SingletonTrigger")
            .inject("malloc", ["once"], return_value=0, errno="ENOMEM").build(),
            ScenarioBuilder("fail-open").trigger("once", "SingletonTrigger")
            .inject("open", ["once"], return_value=-1, errno="ENOENT").build(),
        ]
        campaign = InjectionCampaign(target, workload="default").run(scenarios)
        assert campaign.scenarios_run() == 2
        assert campaign.baseline is not None
        assert campaign.baseline.outcome.kind is OutcomeKind.NORMAL
        kinds = {outcome.scenario.name: outcome.outcome.kind for outcome in campaign.outcomes}
        assert kinds["fail-malloc"] is OutcomeKind.CRASH
        assert kinds["fail-open"] is OutcomeKind.ERROR_EXIT
        assert len(campaign.high_impact_failures()) == 1
        assert "toy" in campaign.summary()

    def test_bug_report_deduplication(self):
        target = ToyTarget()
        scenario = (
            ScenarioBuilder("fail-malloc").trigger("once", "SingletonTrigger")
            .inject("malloc", ["once"], return_value=0, errno="ENOMEM")
            .metadata(target_function="malloc", source="toy.c:7").build()
        )
        campaign = InjectionCampaign(target, workload="default").run([scenario, scenario])
        bugs = build_bug_report(campaign)
        assert len(bugs) == 1
        assert bugs[0].function == "malloc" and bugs[0].occurrences == 2
        assert "malloc" in format_bug_report(bugs)
        assert format_bug_report([]) == "no injection-exposed failures"

    def test_controller_end_to_end(self):
        controller = LFIController(ToyTarget())
        profile = controller.profile_libraries()
        assert "malloc" in profile and "open" in profile
        analysis = controller.analyze_target()
        assert analysis.call_sites_analyzed >= 3
        report = controller.test_automatically(workloads=["default"])
        assert report.scenarios
        assert any(bug.function == "malloc" for bug in report.bugs)
        assert "toy" in report.summary()

    def test_controller_with_python_target_skips_analysis(self):
        class PythonOnlyTarget:
            name = "pyonly"

            def binary(self):
                return None

            def workloads(self):
                return ["default"]

            def run(self, request):
                return RunResult(outcome=Outcome(kind=OutcomeKind.NORMAL))

        controller = LFIController(PythonOnlyTarget())
        assert controller.analyze_target() is None
        assert controller.generate_scenarios() == []


class TestDistributedPolicies:
    def ctx(self, function="sendto"):
        return CallContext(function=function)

    def test_packet_loss_policy(self):
        policy = PacketLossPolicy(probability=1.0, seed=0)
        assert policy.should_inject("replica0", "sendto", (), self.ctx())
        assert not policy.should_inject("replica0", "fopen", (), self.ctx("fopen"))
        restricted = PacketLossPolicy(probability=1.0, nodes=("replica1",))
        assert not restricted.should_inject("replica0", "sendto", (), self.ctx())

    def test_silence_policy(self):
        policy = SilenceNodePolicy(node="replica2")
        assert policy.should_inject("replica2", "recvfrom", (), self.ctx("recvfrom"))
        assert not policy.should_inject("replica1", "recvfrom", (), self.ctx("recvfrom"))

    def test_rotating_policy_rotates_after_burst(self):
        policy = RotatingAttackPolicy(nodes=("a", "b"), burst=2)
        assert policy.current_victim() == "a"
        assert policy.should_inject("a", "sendto", (), self.ctx())
        assert policy.should_inject("a", "sendto", (), self.ctx())
        assert policy.current_victim() == "b"
        assert not policy.should_inject("a", "sendto", (), self.ctx())
        assert policy.should_inject("b", "sendto", (), self.ctx())
        policy.reset()
        assert policy.current_victim() == "a"

    def test_central_controller_accounting(self):
        controller = CentralController(SilenceNodePolicy(node="replica0"))
        context = self.ctx()
        assert controller.should_inject("replica0", "sendto", (), context)
        assert not controller.should_inject("replica1", "sendto", (), context)
        assert controller.consultations == 2
        assert controller.injections_by_node == {"replica0": 1}
        assert "replica0" in controller.summary()
        controller.reset()
        assert controller.consultations == 0
