"""Integration tests for the five simulated targets."""

import pytest

from repro.core.analysis.analyzer import CallSiteAnalyzer
from repro.core.controller import LFIController
from repro.core.controller.monitor import OutcomeKind
from repro.core.controller.target import WorkloadRequest
from repro.targets.base import extract_ground_truth
from repro.targets.mini_apache import MiniApacheTarget
from repro.targets.mini_apache.scenarios import overhead_scenario
from repro.targets.mini_bind import MiniBindTarget
from repro.targets.mini_git import MiniGitTarget
from repro.targets.mini_mysql import MiniMySQLTarget
from repro.targets.mini_mysql.scenarios import (
    close_after_unlock_scenario,
    fcntl_overhead_scenario,
    random_campaign_scenario,
)
from repro.targets.pbft import PBFTCheckpointTarget, PBFTTarget
from repro.targets.pbft.scenarios import (
    checkpoint_fopen_scenario,
    packet_loss_experiment,
    recvfrom_failure_scenario,
    silence_replica_experiment,
)


class TestGroundTruthAnnotations:
    def test_extraction(self):
        source = """
        int f() {
            int p;
            p = malloc(4);      //@check:yes
            if (p == 0) { return -1; }
            close(p);           //@check:no
            open("/x", 0);      //@check:interproc
            return 0;
        }
        """
        entries = extract_ground_truth(source)
        by_function = {entry.function: entry for entry in entries}
        assert by_function["malloc"].checked
        assert not by_function["close"].checked
        assert by_function["open"].interprocedural and by_function["open"].checked

    @pytest.mark.parametrize("target_class", [MiniBindTarget, MiniGitTarget, PBFTCheckpointTarget])
    def test_targets_carry_annotations(self, target_class):
        target = target_class()
        entries = target.ground_truth()
        assert entries
        functions = {entry.function for entry in entries}
        assert functions <= set(target.accuracy_functions)


class TestCompiledTargets:
    @pytest.mark.parametrize("target_class", [MiniBindTarget, MiniGitTarget, PBFTCheckpointTarget])
    def test_baseline_test_suite_passes(self, target_class):
        target = target_class()
        result = target.run(WorkloadRequest(workload="default-tests"))
        assert result.outcome.kind is OutcomeKind.NORMAL, result.outcome.describe()
        assert result.stats["library_calls"] > 0

    def test_bind_automatic_pipeline_finds_both_bugs(self):
        controller = LFIController(MiniBindTarget())
        report = controller.test_automatically(
            workloads=["default-tests"], include_checked=True
        )
        functions = {bug.function for bug in report.bugs}
        kinds = {bug.kind for bug in report.bugs}
        assert "xmlNewTextWriterDoc" in functions
        assert "malloc" in functions
        assert OutcomeKind.ABORT in kinds  # the dst_lib_init recovery bug

    def test_git_automatic_pipeline_finds_all_five_bugs(self):
        controller = LFIController(MiniGitTarget())
        report = controller.test_automatically(workloads=["default-tests"])
        functions = {bug.function for bug in report.bugs}
        assert {"malloc", "opendir", "setenv"} <= functions
        malloc_crashes = [bug for bug in report.bugs if bug.function == "malloc"]
        assert len(malloc_crashes) >= 3
        assert any(bug.kind is OutcomeKind.DATA_LOSS for bug in report.bugs)

    def test_bind_analyzer_accuracy_functions(self):
        target = MiniBindTarget()
        report = CallSiteAnalyzer().analyze(target.binary(), functions=["open"])
        classification = report.classification("open")
        assert classification.site_count() == 6
        assert len(classification.unchecked) == 2  # one genuine + one interprocedural FP

    def test_pbft_checkpoint_unchecked_fopen(self):
        target = PBFTCheckpointTarget()
        report = CallSiteAnalyzer().analyze(target.binary(), functions=["fopen"])
        classification = report.classification("fopen")
        assert classification.site_count() == 6
        assert len(classification.unchecked) == 1

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            MiniBindTarget().workload_plan("nonexistent")


class TestMySQLTarget:
    def test_baseline_workloads(self):
        target = MiniMySQLTarget()
        for workload in target.workloads():
            result = target.run(WorkloadRequest(workload=workload, options={"transactions": 5}))
            assert result.outcome.kind is OutcomeKind.NORMAL, (workload, result.outcome.describe())

    def test_double_unlock_bug_with_custom_trigger(self):
        target = MiniMySQLTarget()
        result = target.run(
            WorkloadRequest(workload="merge-big", scenario=close_after_unlock_scenario(2))
        )
        assert target.outcome_is_double_unlock(result.outcome)
        assert result.log.injection_count == 1

    def test_errmsg_read_crash(self):
        target = MiniMySQLTarget()
        scenario = random_campaign_scenario("read", probability=1.0, seed=0, errno="EIO")
        result = target.run(WorkloadRequest(workload="startup", scenario=scenario))
        assert result.outcome.kind is OutcomeKind.CRASH

    def test_missing_errmsg_file_is_handled(self):
        target = MiniMySQLTarget()
        server = target.make_server(WorkloadRequest(workload="startup"))
        server.os.fs.unlink("/var/lib/mysql/share/errmsg.sys")
        assert server.startup() == 0
        assert server.error_messages == {}

    def test_observe_only_overhead_scenarios_do_not_change_behaviour(self):
        target = MiniMySQLTarget()
        for count in range(1, 5):
            result = target.run(
                WorkloadRequest(
                    workload="sysbench-readwrite",
                    scenario=fcntl_overhead_scenario(count),
                    observe_only=True,
                    options={"transactions": 5},
                )
            )
            assert result.outcome.kind is OutcomeKind.NORMAL
        with pytest.raises(ValueError):
            fcntl_overhead_scenario(9)


class TestApacheTarget:
    def test_serves_static_and_php(self):
        target = MiniApacheTarget()
        for workload in target.workloads():
            result = target.run(WorkloadRequest(workload=workload, options={"requests": 5}))
            assert result.outcome.kind is OutcomeKind.NORMAL
            assert result.stats["requests_handled"] == 5

    def test_overhead_scenarios_observe_only(self):
        target = MiniApacheTarget()
        for count in range(1, 6):
            result = target.run(
                WorkloadRequest(
                    workload="ab-static",
                    scenario=overhead_scenario(count),
                    observe_only=True,
                    options={"requests": 5},
                )
            )
            assert result.outcome.kind is OutcomeKind.NORMAL
            assert result.stats["intercepted_calls"] > 0
        with pytest.raises(ValueError):
            overhead_scenario(0)

    def test_missing_page_is_404_not_failure(self):
        target = MiniApacheTarget()
        server = target.make_server(WorkloadRequest(workload="ab-static"))
        from repro.targets.mini_apache.httpd_core import HttpRequest

        response = server.handle_connection(HttpRequest(uri="/missing.html"))
        assert response.status == 404


class TestPBFTTarget:
    def test_baseline_cluster_completes_requests(self):
        target = PBFTTarget()
        result = target.run(WorkloadRequest(workload="simple", options={"requests": 10}))
        assert result.outcome.kind is OutcomeKind.NORMAL
        assert result.stats["requests_completed"] == 10
        assert result.stats["throughput"] > 0
        cluster = result.stats["cluster"]
        executed = [len(replica.executed_requests) for replica in cluster.replicas]
        assert all(count == 10 for count in executed)  # replicas agree

    def test_packet_loss_slows_but_completes(self):
        target = PBFTTarget()
        baseline = target.run(WorkloadRequest(workload="simple", options={"requests": 10}))
        scenario, controller = packet_loss_experiment(0.8, seed=1)
        degraded = target.run(
            WorkloadRequest(workload="simple", scenario=scenario,
                            options={"requests": 10, "shared_objects": {"controller": controller}})
        )
        assert degraded.outcome.kind is OutcomeKind.NORMAL
        assert degraded.stats["simulated_seconds"] > baseline.stats["simulated_seconds"]

    def test_silencing_replica_keeps_quorum(self):
        target = PBFTTarget()
        scenario, controller = silence_replica_experiment("replica3")
        result = target.run(
            WorkloadRequest(workload="simple", scenario=scenario,
                            options={"requests": 10, "shared_objects": {"controller": controller}})
        )
        assert result.outcome.kind is OutcomeKind.NORMAL
        assert result.stats["requests_completed"] == 10

    def test_recvfrom_bug_crashes_a_replica(self):
        target = PBFTTarget()
        result = target.run(
            WorkloadRequest(workload="simple", scenario=recvfrom_failure_scenario(nth=5),
                            options={"requests": 5})
        )
        assert result.outcome.kind is OutcomeKind.CRASH
        assert result.stats["crashed_replicas"]

    def test_checkpoint_fopen_bug(self):
        target = PBFTTarget()
        result = target.run(
            WorkloadRequest(workload="simple", scenario=checkpoint_fopen_scenario(),
                            options={"requests": 20})
        )
        assert result.outcome.kind is OutcomeKind.CRASH
        assert "FILE*" in result.outcome.detail
