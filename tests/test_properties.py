"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.injection.context import CallContext
from repro.core.injection.faults import FaultSpec
from repro.core.injection.runtime import InjectionRuntime
from repro.core.scenario.builder import ScenarioBuilder
from repro.core.scenario.model import Scenario
from repro.core.scenario.xml_io import parse_scenario_xml, scenario_to_xml
from repro.core.triggers.callcount import CallCountTrigger
from repro.core.triggers.singleton import SingletonTrigger
from repro.isa import layout
from repro.isa.assembler import Assembler
from repro.isa.instructions import Imm, Opcode, Reg
from repro.oslib.errno_codes import Errno, errno_name, errno_value
from repro.oslib.fs import O_CREAT, O_RDWR, SimFileSystem
from repro.oslib.heap import SimHeap
from repro.oslib.sync import MutexTable
from repro.vm.memory import Memory

_identifier = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12)


class TestErrnoProperties:
    @given(st.sampled_from(list(Errno)))
    def test_name_value_roundtrip(self, errno):
        assert errno_value(errno_name(errno.value)) == errno.value


class TestMemoryProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=layout.DATA_BASE, max_value=layout.DATA_BASE + 500),
            st.integers(min_value=-(2**31), max_value=2**31),
            max_size=30,
        )
    )
    def test_store_load_roundtrip(self, contents):
        memory = Memory()
        for address, value in contents.items():
            memory.store(address, value)
        for address, value in contents.items():
            assert memory.load(address) == value

    @given(st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=0x2000), max_size=40))
    def test_string_roundtrip(self, text):
        memory = Memory()
        memory.write_string(layout.DATA_BASE, text)
        assert memory.read_string(layout.DATA_BASE) == text


class TestHeapProperties:
    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=40))
    def test_allocations_are_disjoint(self, sizes):
        heap = SimHeap(base=0x1000, capacity=64 * 64)
        regions = []
        for size in sizes:
            address = heap.malloc(size)
            regions.append((address, size))
        for index, (address, size) in enumerate(regions):
            for other_address, other_size in regions[index + 1:]:
                assert address + size <= other_address or other_address + other_size <= address

    @given(st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=30))
    def test_bytes_in_use_accounting(self, sizes):
        heap = SimHeap(base=0x1000, capacity=10_000)
        addresses = [heap.malloc(size) for size in sizes]
        assert heap.bytes_in_use == sum(sizes)
        for address in addresses:
            heap.free(address)
        assert heap.bytes_in_use == 0


class TestFilesystemProperties:
    @given(st.binary(max_size=200), st.binary(max_size=200))
    def test_write_then_read_back(self, first, second):
        fs = SimFileSystem()
        fs.make_dirs("/data")
        fd = fs.open("/data/blob", O_RDWR | O_CREAT)
        fs.write(fd, first)
        fs.write(fd, second)
        fs.lseek(fd, 0)
        assert fs.read(fd, len(first) + len(second)) == first + second
        fs.close(fd)
        assert fs.file_contents("/data/blob") == first + second


class TestMutexProperties:
    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=20))
    def test_balanced_lock_unlock_never_aborts(self, mutex_ids):
        table = MutexTable()
        for mutex_id in mutex_ids:
            if table.is_locked(mutex_id):
                table.unlock(mutex_id)
            else:
                table.lock(mutex_id)
        # Drain: unlock whatever is still held; this must never raise.
        for mutex_id in set(mutex_ids):
            if table.is_locked(mutex_id):
                table.unlock(mutex_id)
        assert table.held_count() == 0


class TestTriggerProperties:
    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=100))
    def test_call_count_fires_exactly_once(self, nth, calls):
        trigger = CallCountTrigger()
        trigger.init({"nth": nth})
        fired = sum(trigger.eval(CallContext(function="f")) for _ in range(calls))
        assert fired == (1 if calls >= nth else 0)

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=40))
    def test_singleton_never_exceeds_maximum(self, maximum, calls):
        trigger = SingletonTrigger()
        trigger.init({"max": maximum})
        fired = sum(trigger.eval(CallContext(function="f")) for _ in range(calls))
        assert fired == min(maximum, calls)


class TestScenarioXmlProperties:
    @given(
        st.lists(
            st.tuples(
                _identifier,
                st.sampled_from(["read", "close", "malloc", "fopen", "sendto"]),
                st.integers(min_value=-5, max_value=5),
                st.sampled_from(["EIO", "EINTR", "ENOMEM", "ENOENT"]),
            ),
            min_size=1,
            max_size=6,
            unique_by=lambda item: item[0],
        )
    )
    @settings(max_examples=40)
    def test_xml_roundtrip_preserves_structure(self, entries):
        builder = ScenarioBuilder("generated")
        for trigger_id, function, return_value, errno in entries:
            builder.trigger(trigger_id, "SingletonTrigger")
            builder.inject(function, [trigger_id], return_value=return_value, errno=errno)
        scenario = builder.build()
        parsed = parse_scenario_xml(scenario_to_xml(scenario))
        assert set(parsed.triggers) == set(scenario.triggers)
        assert [plan.function for plan in parsed.plans] == [plan.function for plan in scenario.plans]
        for original, restored in zip(scenario.plans, parsed.plans):
            assert restored.fault == original.fault
            assert restored.trigger_ids == original.trigger_ids

    @given(st.integers(min_value=-1000, max_value=1000),
           st.sampled_from(["EIO", "EINTR", "EAGAIN", "ENOMEM"]))
    def test_fault_spec_string_roundtrip(self, value, errno):
        fault = FaultSpec.from_strings(str(value), errno)
        assert fault.return_value == value
        assert errno_name(fault.errno) == errno


#: XML-safe printable text (attribute values and text nodes; no control
#: chars, which XML 1.0 cannot represent).
_xml_text = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E), max_size=16
)
_scalar_value = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    _xml_text,
)
#: Nested values as trigger params / metadata carry them: scalars, dicts,
#: and lists of either (directly nested lists are not representable in the
#: repeated-element XML encoding, matching real trigger parameters).
_non_list_value = st.recursive(
    _scalar_value,
    lambda children: st.dictionaries(
        _identifier,
        st.one_of(
            children,
            st.lists(children, max_size=3),
            st.lists(children, max_size=3).map(tuple),
        ),
        max_size=3,
    ),
    max_leaves=6,
)
_param_value = st.one_of(
    _non_list_value,
    st.lists(_non_list_value, max_size=3),
    st.lists(_non_list_value, max_size=3).map(tuple),
)
_errno_values = st.one_of(st.none(), st.sampled_from([int(errno) for errno in Errno]))


@st.composite
def _scenarios(draw):
    scenario = Scenario(name=draw(_xml_text))
    trigger_ids = draw(
        st.lists(_identifier, min_size=0, max_size=4, unique=True)
    )
    for trigger_id in trigger_ids:
        scenario.declare_trigger(
            trigger_id,
            draw(_identifier),
            draw(st.dictionaries(_identifier, _param_value, max_size=3)),
        )
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        fault = None
        if draw(st.booleans()):
            # errno=None exercises the errno-only error-return spec path.
            fault = FaultSpec(
                return_value=draw(st.integers(min_value=-(2**31), max_value=2**31)),
                errno=draw(_errno_values),
            )
        refs = draw(st.lists(st.sampled_from(trigger_ids), max_size=3, unique=True)) if trigger_ids else []
        scenario.associate(
            draw(_identifier),
            refs,
            fault=fault,
            argc=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=8))),
        )
    scenario.metadata.update(draw(st.dictionaries(_identifier, _param_value, max_size=3)))
    return scenario


class TestScenarioFullRoundTripProperties:
    """Arbitrary scenarios survive xml_io write -> read unchanged."""

    @given(_scenarios())
    @settings(max_examples=60)
    def test_write_read_identity(self, scenario):
        for pretty in (False, True):
            parsed = parse_scenario_xml(scenario_to_xml(scenario, pretty=pretty))
            assert parsed.name == scenario.name
            assert parsed.triggers == scenario.triggers
            assert parsed.plans == scenario.plans
            assert parsed.metadata == scenario.metadata

    @given(_scenarios())
    @settings(max_examples=20)
    def test_roundtrip_is_idempotent(self, scenario):
        once = parse_scenario_xml(scenario_to_xml(scenario))
        twice = parse_scenario_xml(scenario_to_xml(once))
        assert twice.triggers == once.triggers
        assert twice.plans == once.plans
        assert twice.metadata == once.metadata

    def test_directly_nested_lists_are_rejected_not_flattened(self):
        import pytest

        scenario = Scenario(name="nested")
        scenario.metadata["a"] = [[1, 2], [3]]
        with pytest.raises(ValueError):
            scenario_to_xml(scenario)

    @given(
        st.integers(min_value=-(2**31), max_value=2**31),
        st.lists(_identifier, min_size=1, max_size=2, unique=True),
    )
    def test_errno_only_fault_survives(self, return_value, trigger_ids):
        # Errno-only error-return specs (errno=None but a real fault) must
        # not collapse into observe associations on the way through XML.
        scenario = Scenario(name="errno-only")
        for trigger_id in trigger_ids:
            scenario.declare_trigger(trigger_id, "SingletonTrigger", {})
        scenario.associate(
            "apr_file_read", trigger_ids, fault=FaultSpec(return_value, None)
        )
        parsed = parse_scenario_xml(scenario_to_xml(scenario))
        assert parsed.plans[0].injects
        assert parsed.plans[0].fault == FaultSpec(return_value, None)
        assert parsed.plans[0].trigger_ids == trigger_ids


class TestRuntimeProperties:
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=60))
    @settings(max_examples=30)
    def test_injections_never_exceed_singleton_budget(self, budget, calls):
        scenario = (
            ScenarioBuilder("budgeted")
            .trigger("once", "SingletonTrigger", max=budget)
            .inject("read", ["once"], return_value=-1, errno="EIO")
            .build()
        )
        runtime = InjectionRuntime(scenario)
        injected = sum(
            runtime.decide(CallContext(function="read")).inject for _ in range(calls)
        )
        assert injected == min(budget, calls)
        assert runtime.injections == injected


class TestAssemblerProperties:
    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=20))
    def test_emitted_program_addresses_are_sequential(self, values):
        assembler = Assembler("prop")
        assembler.begin_function("main")
        for value in values:
            assembler.emit(Opcode.MOV, Reg("r0"), Imm(value))
        assembler.emit(Opcode.HALT)
        assembler.end_function()
        binary = assembler.finish()
        assert [instruction.address for instruction in binary.instructions] == list(
            range(len(values) + 1)
        )
        assert binary.functions["main"].size == len(values) + 1
