"""Differential tests for the forkserver-style snapshot/restore engine.

The contract under test: snapshot-restored execution — boot templates,
copy-on-write memory rewinds, mid-run captures, and the prefix-sharing
campaign scheduler — is **observably identical** to the reference
fresh-build path (``snapshots=False`` / ``share_prefixes=False``): same
exit status, trace, coverage, library-call counts, and injection logs, on
every target, armed and unarmed.
"""

import pytest

from repro.core.controller.campaign import TestCampaign as Campaign
from repro.core.controller.controller import LFIController
from repro.core.controller.prefix import (
    run_scenarios_shared,
    scenario_group_key,
)
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.core.exploration.engine import ExplorationEngine
from repro.core.exploration.store import ResultStore
from repro.core.profiler.cache import artifact_cache_stats, clear_artifact_cache
from repro.core.scenario.builder import ScenarioBuilder
from repro.coverage.tracker import CoverageTracker
from repro.isa import layout
from repro.minicc import compile_source
from repro.oslib import fs as fsmod
from repro.oslib.os_model import SimOS
from repro.targets.mini_apache.target import MiniApacheTarget
from repro.targets.mini_bind import MiniBindTarget
from repro.targets.mini_git import MiniGitTarget
from repro.targets.mini_mysql.target import MiniMySQLTarget
from repro.targets.pbft import PBFTCheckpointTarget
from repro.vm import Machine, MachineSnapshot, Memory

COMPILED_TARGETS = (MiniBindTarget, MiniGitTarget, PBFTCheckpointTarget)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _fault_scenario():
    return (
        ScenarioBuilder("differential")
        .trigger("first_malloc", "CallCountTrigger", nth=1)
        .inject("malloc", ["first_malloc"], return_value=0, errno="ENOMEM")
        .trigger("early_open", "SingletonTrigger", max=2)
        .inject("open", ["early_open"], return_value=-1, errno="EMFILE")
        .trigger("second_read", "CallCountTrigger", nth=2)
        .inject("read", ["second_read"], return_value=-1, errno="EIO")
        .build()
    )


def _run_observables(result):
    observables = {
        "kind": result.outcome.kind,
        "detail": result.outcome.detail,
        "exit_code": result.outcome.exit_code,
        "location": result.outcome.location,
        "injections": result.injections,
        "log": [record.to_dict() for record in result.log.records],
        "steps_run": result.stats["steps_run"],
        "library_calls": result.stats["library_calls"],
    }
    tracker = result.stats.get("coverage")
    if tracker is not None:
        observables["coverage"] = {
            address: tracker.hit_count(address)
            for address in tracker.covered_addresses
        }
    return observables


def _campaign_observables(campaign):
    return [
        {
            "scenario": outcome.scenario.name,
            "kind": outcome.outcome.kind,
            "detail": outcome.outcome.detail,
            "exit_code": outcome.outcome.exit_code,
            "location": outcome.outcome.location,
            "injections": outcome.result.injections,
            "log": [record.to_dict() for record in outcome.result.log.records],
        }
        for outcome in campaign.outcomes
    ]


# ----------------------------------------------------------------------
# Memory copy-on-write journal
# ----------------------------------------------------------------------
class TestMemoryCheckpoints:
    def test_checkpoint_rewind_words_and_stack(self):
        memory = Memory({4096: 1})
        top = layout.STACK_TOP - 3
        memory.store(top, 11)
        level = memory.checkpoint()
        memory.store(4096, 2)
        memory.store(4097, 5)
        memory.store(top, 12)
        assert memory.dirty_word_count() == 3
        undone = memory.rewind(level)
        assert undone == 3
        assert memory.load(4096) == 1
        assert memory.load(4097) == 0
        assert memory.load(top) == 11
        assert 4097 not in memory.snapshot()

    def test_rewind_restores_access_counters(self):
        memory = Memory()
        memory.store(4200, 1)
        loads, stores = memory.load_count, memory.store_count
        level = memory.checkpoint()
        memory.store(4201, 2)
        memory.load(4201)
        memory.rewind(level)
        assert (memory.load_count, memory.store_count) == (loads, stores)

    def test_nested_checkpoints_rewind_to_any_level(self):
        memory = Memory()
        memory.store(4300, 1)
        boot = memory.checkpoint()
        memory.store(4300, 2)
        mid = memory.checkpoint()
        memory.store(4300, 3)
        memory.store(4301, 9)
        memory.rewind(mid)
        assert memory.load(4300) == 2 and memory.load(4301) == 0
        memory.store(4300, 4)
        memory.rewind(boot)
        assert memory.load(4300) == 1
        assert memory.checkpoint_depth == 1

    def test_rewind_is_repeatable(self):
        memory = Memory()
        level = memory.checkpoint()
        for round_number in (1, 2, 3):
            memory.store(4400, round_number)
            memory.rewind(level)
            assert memory.load(4400) == 0

    def test_delta_since_materializes_dirty_words(self):
        memory = Memory({4500: 7})
        top = layout.STACK_TOP - 1
        level = memory.checkpoint()
        memory.store(4500, 8)
        memory.store(top, 3)
        delta = memory.delta_since(level)
        assert delta == {4500: 8, top: 3}
        memory.rewind(level)
        for address, value in delta.items():
            memory.poke(address, value)
        assert memory.load(4500) == 8 and memory.load(top) == 3
        memory.rewind(level)
        assert memory.load(4500) == 7 and memory.load(top) == 0

    def test_rewind_without_checkpoint_raises(self):
        with pytest.raises(ValueError):
            Memory().rewind(0)

    def test_peek_returns_stored_zero_in_stack_window(self):
        # Satellite fix: peek must agree with load for stack slots holding
        # zero instead of leaking the caller's default.
        memory = Memory()
        address = layout.STACK_TOP - 2
        memory.store(address, 0)
        assert memory.peek(address, default=77) == 0
        assert memory.peek(address, default=77) == memory.load(address)
        # Sparse addresses keep the "unmapped -> default" behaviour.
        assert memory.peek(0x5000, default=77) == 77


class TestMemoryCheckpointNesting:
    """Edge cases of nested checkpoints, partial rewinds, and deltas."""

    def test_delta_since_respects_the_requested_level(self):
        memory = Memory({4600: 1})
        boot = memory.checkpoint()
        memory.store(4600, 2)
        memory.store(4601, 5)
        mid = memory.checkpoint()
        memory.store(4600, 3)
        memory.store(4602, 7)
        # The inner delta names only post-mid writes; the outer one names
        # everything since boot, each with its *current* value.
        assert memory.delta_since(mid) == {4600: 3, 4602: 7}
        assert memory.delta_since(boot) == {4600: 3, 4601: 5, 4602: 7}

    def test_delta_after_partial_rewind_drops_the_undone_writes(self):
        memory = Memory({4700: 1})
        boot = memory.checkpoint()
        memory.store(4700, 2)
        memory.store(4701, 9)
        mid = memory.checkpoint()
        memory.store(4700, 3)
        memory.store(4702, 4)
        memory.rewind(mid)
        # The mid-level writes are gone; the boot-level ones survive with
        # their pre-mid values.
        assert memory.delta_since(boot) == {4700: 2, 4701: 9}
        # Re-dirtying after the rewind shows up again at both levels.
        memory.store(4702, 6)
        assert memory.delta_since(mid) == {4702: 6}
        assert memory.delta_since(boot) == {4700: 2, 4701: 9, 4702: 6}

    def test_rewind_to_outer_level_undoes_inner_creations(self):
        # An address absent from the base image, created at the outer level
        # and overwritten at the inner one, must vanish entirely on a
        # rewind to boot (not linger with its outer-level value).
        memory = Memory()
        boot = memory.checkpoint()
        memory.store(4800, 1)
        memory.checkpoint()
        memory.store(4800, 2)
        memory.rewind(boot)
        assert memory.load(4800) == 0
        assert 4800 not in memory.snapshot()
        assert memory.checkpoint_depth == 1

    def test_rewind_to_level_keeps_that_level_reusable(self):
        memory = Memory()
        boot = memory.checkpoint()
        memory.store(4900, 1)
        mid = memory.checkpoint()
        memory.store(4900, 2)
        memory.rewind(boot)
        # Levels above boot are discarded...
        assert memory.checkpoint_depth == 1
        with pytest.raises(ValueError):
            memory.delta_since(mid)
        with pytest.raises(ValueError):
            memory.rewind(mid)
        # ...but boot itself stays active for the next fork.
        memory.store(4900, 3)
        assert memory.delta_since(boot) == {4900: 3}
        memory.rewind(boot)
        assert memory.load(4900) == 0

    def test_delta_since_includes_stored_zeros(self):
        # A write of zero is still a write: the delta must carry it so a
        # replay faithfully reproduces a slot that was zeroed mid-run.
        memory = Memory({5000: 8})
        top = layout.STACK_TOP - 4
        memory.store(top, 6)
        level = memory.checkpoint()
        memory.store(5000, 0)
        memory.store(top, 0)
        delta = memory.delta_since(level)
        assert delta == {5000: 0, top: 0}
        memory.rewind(level)
        assert memory.load(5000) == 8 and memory.load(top) == 6
        for address, value in delta.items():
            memory.poke(address, value)
        assert memory.load(5000) == 0 and memory.load(top) == 0

    def test_delta_since_invalid_level_raises(self):
        memory = Memory()
        with pytest.raises(ValueError):
            memory.delta_since(0)
        memory.checkpoint()
        with pytest.raises(ValueError):
            memory.delta_since(1)
        with pytest.raises(ValueError):
            memory.delta_since(-1)


# ----------------------------------------------------------------------
# SimOS state capture / restore + reset
# ----------------------------------------------------------------------
class TestSimOSState:
    def _mutate(self, os):
        fd = os.fs.open("/data/file", fsmod.O_RDWR)
        os.fs.write(fd, b"mutated")
        os.fs.add_file("/data/new", b"created")
        os.fs.unlink("/data/doomed")
        read_end, write_end = os.fs.make_pipe()
        os.fs.write(write_end, b"piped")
        handle = os.fs.opendir("/data")
        os.fs.readdir(handle)
        address = os.heap.malloc(16)
        os.heap.free(address)
        os.heap.malloc(4)
        os.env.setenv("MODE", "changed")
        os.env.record_failed_update("X", "y")
        os.mutexes.lock(0x10)
        os.clock.advance(1.5)
        sock = os.network.socket("node")
        os.network.bind(sock, 9)
        os.network.sendto(sock, b"dgram", 9)
        os.write_stdout("out")
        os.write_stderr("err")
        os.bump("requests")
        os.exit_code = 3
        os.aborted = True

    def _fixture(self):
        os = SimOS("state")
        os.fs.make_dirs("/data")
        os.fs.add_file("/data/file", b"original")
        os.fs.add_file("/data/doomed", b"bye")
        os.env.setenv("MODE", "fresh")
        return os

    def test_restore_round_trip_is_exact(self):
        os = self._fixture()
        baseline = os.capture_state()
        self._mutate(os)
        assert os.capture_state() != baseline
        os.restore_state(baseline)
        assert os.capture_state() == baseline
        # Restored objects are detached: mutating again then re-restoring
        # still yields the captured state.
        self._mutate(os)
        os.restore_state(baseline)
        assert os.capture_state() == baseline
        assert os.fs.file_contents("/data/file") == b"original"
        assert os.env.getenv("MODE") == "fresh"
        assert os.exit_code is None and not os.aborted

    def test_restore_preserves_open_descriptors_and_pipes(self):
        os = self._fixture()
        fd = os.fs.open("/data/file", fsmod.O_RDONLY)
        read_end, write_end = os.fs.make_pipe()
        os.fs.write(write_end, b"xy")
        state = os.capture_state()
        os.fs.close(fd)
        os.fs.read(read_end, 2)
        os.restore_state(state)
        assert os.fs.descriptor_is_open(fd)
        assert os.fs.read(fd, 8) == b"original"
        # Pipe ends share one buffer again after the restore.
        assert os.fs.read(read_end, 2) == b"xy"
        os.fs.write(write_end, b"z")
        assert os.fs.read(read_end, 1) == b"z"

    def test_restore_keeps_unlinked_file_shared_across_descriptors(self):
        # Two descriptors of an unlinked file share one SimFile; a restore
        # must preserve that sharing, or a write through one descriptor
        # stops being visible through the other — diverging from a fresh
        # run.
        os = self._fixture()
        first = os.fs.open("/data/file", fsmod.O_RDWR)
        second = os.fs.open("/data/file", fsmod.O_RDONLY)
        os.fs.unlink("/data/file")
        state = os.capture_state()
        os.restore_state(state)
        os.fs.write(first, b"XYZ")
        assert os.fs.read(second, 3) == b"XYZ"

    def test_lazy_clone_pickles_before_and_after_hydration(self):
        # Published run stats carry lazy OS clones across process-pool
        # boundaries; unpickling must not recurse through __getattr__.
        import pickle

        os = self._fixture()
        cold = pickle.loads(pickle.dumps(os.lazy_clone()))
        assert cold.fs.exists("/data/file")
        warm = os.lazy_clone()
        assert warm.env.getenv("MODE") == "fresh"  # hydrates
        warm_clone = pickle.loads(pickle.dumps(warm))
        assert warm_clone.fs.file_contents("/data/file") == b"original"

    def test_clone_is_detached(self):
        os = self._fixture()
        clone = os.clone()
        os.fs.add_file("/data/after", b"later")
        os.bump("requests")
        assert not clone.fs.exists("/data/after")
        assert clone.counter("requests") == 0

    def test_reset_clears_counters_exit_and_abort(self):
        # Satellite: reset_streams alone leaked oracle state on OS reuse.
        os = SimOS("reset")
        os.write_stdout("text")
        os.bump("oracle_hits")
        os.exit_code = 9
        os.aborted = True
        os.reset()
        assert os.stdout_text() == "" and os.stderr_text() == ""
        assert os.counters == {}
        assert os.exit_code is None
        assert os.aborted is False


# ----------------------------------------------------------------------
# MachineSnapshot fidelity
# ----------------------------------------------------------------------
class TestMachineSnapshot:
    SOURCE = """
    int main() {
        int p;
        int fd;
        int buffer[4];
        p = malloc(8);
        if (p == 0) { return 3; }
        fd = open("/input.txt", 0);
        if (fd < 0) { return 1; }
        read(fd, buffer, 2);
        close(fd);
        puts("done");
        return buffer[0];
    }
    """

    def _machine(self, scenario=None):
        binary = compile_source(self.SOURCE, name="snap")
        os = SimOS("snap")
        os.fs.add_file("/input.txt", b"ab")
        gate = make_gate(scenario, run_seed=7) if scenario is not None else None
        machine = Machine(binary, os=os, gate=gate, coverage=CoverageTracker())
        machine.enable_trace()
        return machine

    def _observe(self, machine, status):
        tracker = machine.coverage
        return {
            "status": (status.kind, status.code, status.reason, status.steps,
                       status.pc, status.source, status.stdout, status.stderr),
            "trace": list(machine.trace),
            "coverage": {a: tracker.hit_count(a) for a in tracker.covered_addresses},
            "calls": dict(machine.library_call_counts),
            "log": ([r.to_dict() for r in machine.gate.log.records]
                    if machine.gate is not None else None),
        }

    @pytest.mark.parametrize("armed", [False, True])
    def test_restore_reproduces_run_exactly(self, armed):
        scenario = _fault_scenario() if armed else None
        machine = self._machine(scenario)
        snapshot = MachineSnapshot.capture(machine)
        first = self._observe(machine, machine.run())
        snapshot.restore()
        second = self._observe(machine, machine.run())
        assert second == first

    def test_restore_matches_fresh_build(self):
        machine = self._machine(_fault_scenario())
        snapshot = MachineSnapshot.capture(machine)
        machine.run()
        snapshot.restore()
        replay = self._observe(machine, machine.run())
        fresh_machine = self._machine(_fault_scenario())
        fresh = self._observe(fresh_machine, fresh_machine.run())
        assert replay == fresh


# ----------------------------------------------------------------------
# compiled-target differential: snapshot path vs reference rebuild path
# ----------------------------------------------------------------------
class TestCompiledTargetSnapshotDifferentials:
    @pytest.mark.parametrize("target_class", COMPILED_TARGETS)
    @pytest.mark.parametrize("armed", [False, True])
    def test_snapshot_runs_identical_to_fresh_builds(self, target_class, armed):
        scenario = _fault_scenario() if armed else None
        target = target_class()
        request_options = {"run_seed": 3}

        def run_once(snapshots):
            request = WorkloadRequest(
                workload=target.workloads()[0],
                scenario=scenario,
                collect_coverage=True,
                options=dict(request_options, snapshots=snapshots),
            )
            return _run_observables(target.run(request))

        fresh = run_once(snapshots=False)
        cold = run_once(snapshots=True)   # builds the boot template
        warm = run_once(snapshots=True)   # restores it
        assert cold == fresh
        assert warm == fresh

    # The three template-mechanics tests pin ``snapshots=True`` explicitly:
    # they assert the snapshot path's internals (cache counters, lock
    # behavior), which the REPRO_SNAPSHOTS=0 oracle leg turns off by default.
    def test_boot_template_cache_hits_and_clear(self):
        clear_artifact_cache()
        target = MiniGitTarget()
        request = WorkloadRequest(workload="status", options={"snapshots": True})
        target.run(request)
        target.run(request)
        stats = artifact_cache_stats()
        assert stats.boot_misses == 1
        assert stats.boot_hits == 1
        clear_artifact_cache()
        target.run(request)
        assert artifact_cache_stats().boot_misses == 1

    def test_contended_template_falls_back_to_fresh_path(self):
        target = MiniGitTarget()
        request = WorkloadRequest(workload="status", scenario=_fault_scenario(),
                                  options={"snapshots": True})
        baseline = _run_observables(target.run(request))
        session = target.open_session("status", snapshots=True)
        assert session.snapshotted
        try:
            # The template is held: the concurrent run must fall back to a
            # fresh build and still produce identical results.
            contended = _run_observables(target.run(request))
        finally:
            session.close()
        assert contended == baseline

    def test_template_lock_excludes_concurrent_acquisition(self):
        target = MiniBindTarget()
        session = target.open_session(target.workloads()[0], snapshots=True)
        try:
            assert session.snapshotted
            other = target.open_session(target.workloads()[0], snapshots=True)
            try:
                assert not other.snapshotted
            finally:
                other.close()
        finally:
            session.close()

    def test_threaded_snapshot_campaign_matches_serial(self):
        target = MiniGitTarget()
        controller = LFIController(target)
        scenarios = controller.generate_scenarios(controller.analyze_target())[:6]
        campaign = Campaign(target, workload="status")
        serial = campaign.run(scenarios, seed=1, include_baseline=False,
                              share_prefixes=False)
        threaded = campaign.run(scenarios, seed=1, include_baseline=False,
                                parallelism="threads:4")
        assert _campaign_observables(threaded) == _campaign_observables(serial)


# ----------------------------------------------------------------------
# prefix-sharing scheduler differentials
# ----------------------------------------------------------------------
class TestPrefixSharingDifferentials:
    def _git_scenarios(self):
        target = MiniGitTarget()
        controller = LFIController(target)
        analysis = controller.analyze_target()
        points = controller.fault_space(analysis=analysis, include_checked=True)
        return target, [point.scenario() for point in points]

    def test_grouping_key_strips_faults_only(self):
        target, scenarios = self._git_scenarios()
        by_key = {}
        for scenario in scenarios:
            key = scenario_group_key(scenario)
            assert key is not None
            by_key.setdefault(key, []).append(scenario)
        multi = [group for group in by_key.values() if len(group) > 1]
        assert multi, "expected errno families to share a group"
        for group in multi:
            triggers = {repr(sorted(s.triggers)) for s in group}
            assert len(triggers) == 1

    def test_random_trigger_scenarios_are_not_grouped(self):
        scenario = (
            ScenarioBuilder("rand")
            .trigger("coin", "RandomTrigger", probability=0.5)
            .inject("malloc", ["coin"], return_value=0, errno="ENOMEM")
            .build()
        )
        assert scenario_group_key(scenario) is None

    @pytest.mark.parametrize("workload", ["default-tests", "status", "gc"])
    def test_shared_campaign_identical_to_plain(self, workload):
        target, scenarios = self._git_scenarios()
        campaign = Campaign(target, workload=workload)
        plain = campaign.run(scenarios, seed=3, include_baseline=False,
                             share_prefixes=False)
        shared = campaign.run(scenarios, seed=3, include_baseline=False,
                              share_prefixes=True)
        assert _campaign_observables(shared) == _campaign_observables(plain)

    def test_shared_campaign_identical_with_coverage(self):
        target, scenarios = self._git_scenarios()
        campaign = Campaign(target, workload="commit")
        plain = campaign.run(scenarios[:12], include_baseline=False,
                             collect_coverage=True, share_prefixes=False)
        shared = campaign.run(scenarios[:12], include_baseline=False,
                              collect_coverage=True, share_prefixes=True)
        for a, b in zip(plain.outcomes, shared.outcomes):
            ta, tb = a.result.stats["coverage"], b.result.stats["coverage"]
            assert {x: tb.hit_count(x) for x in tb.covered_addresses} == \
                   {x: ta.hit_count(x) for x in ta.covered_addresses}
        assert _campaign_observables(shared) == _campaign_observables(plain)

    def _apache_scenarios(self):
        scenarios = []
        sites = [
            ("_read_whole_file", "apr_file_read", -1, ["EIO", "EINTR", "EAGAIN"]),
            ("php_handler", "apr_file_read", -1, ["EIO", "EINTR"]),
            ("log_request", "write", -1, ["EIO", "ENOSPC"]),
        ]
        for caller, function, value, errnos in sites:
            for nth in (1, 9):
                for errno in errnos:
                    builder = ScenarioBuilder(f"{caller}-{function}-{nth}-{errno}")
                    builder.trigger_with_params(
                        "site", "CallStackTrigger",
                        {"frame": {"module": "httpd_core", "function": caller}},
                    )
                    builder.trigger("count", "CallCountTrigger", nth=nth)
                    builder.trigger("once", "SingletonTrigger")
                    builder.inject(function, ["site", "count", "once"],
                                   return_value=value, errno=errno)
                    scenarios.append(builder.build())
        return scenarios

    @pytest.mark.parametrize("workload", ["ab-static", "ab-php"])
    def test_apache_fork_path_identical_to_plain(self, workload):
        target = MiniApacheTarget()
        scenarios = self._apache_scenarios()
        campaign = Campaign(target, workload=workload)
        plain = campaign.run(scenarios, include_baseline=False,
                             share_prefixes=False, requests=12)
        shared = campaign.run(scenarios, include_baseline=False,
                              share_prefixes=True, requests=12)
        assert _campaign_observables(shared) == _campaign_observables(plain)

    def test_apache_observe_only_campaign_identical_and_collapsed(self):
        target = MiniApacheTarget()
        scenarios = self._apache_scenarios()
        plain = [
            target.run(WorkloadRequest(workload="ab-static", scenario=scenario,
                                       observe_only=True,
                                       options={"requests": 12}))
            for scenario in scenarios
        ]
        shared = run_scenarios_shared(target, "ab-static", scenarios,
                                      options={"requests": 12},
                                      observe_only=True)
        assert [_apache_observables(r) for r in shared] == \
               [_apache_observables(r) for r in plain]

    def test_mysql_replication_identical_to_plain(self):
        target = MiniMySQLTarget()
        scenarios = []
        for errno in ("EIO", "EINTR"):
            builder = ScenarioBuilder(f"mysql-read-late-{errno}")
            builder.trigger("late", "CallCountTrigger", nth=100_000)
            builder.inject("read", ["late"], return_value=-1, errno=errno)
            scenarios.append(builder.build())
        campaign = Campaign(target, workload="startup")
        plain = campaign.run(scenarios, include_baseline=False, share_prefixes=False)
        shared = campaign.run(scenarios, include_baseline=False, share_prefixes=True)
        assert _campaign_observables(shared) == _campaign_observables(plain)
        assert all(outcome.result.injections == 0 for outcome in shared.outcomes)


def _apache_observables(result):
    return {
        "kind": result.outcome.kind,
        "detail": result.outcome.detail,
        "injections": result.injections,
        "log": [record.to_dict() for record in result.log.records],
        "library_calls": result.stats["library_calls"],
        "requests_handled": result.stats["requests_handled"],
    }


# ----------------------------------------------------------------------
# exploration: sharing + resume path independence
# ----------------------------------------------------------------------
class TestExplorationWithSnapshots:
    def _points(self, controller):
        return controller.fault_space(include_checked=True)

    def _report_observables(self, report):
        return [
            (o.point.key, o.outcome.kind, o.outcome.detail, o.injections,
             o.fingerprint, o.run_seed, o.scenario_name)
            for o in report.outcomes
        ]

    def test_shared_exploration_identical_to_plain(self):
        target = MiniGitTarget()
        controller = LFIController(target)
        points = self._points(controller)
        plain = ExplorationEngine(
            target, store=ResultStore(), seed=5, workload="commit",
            share_prefixes=False, request_options={"snapshots": False},
        ).explore(points)
        shared = ExplorationEngine(
            target, store=ResultStore(), seed=5, workload="commit",
            share_prefixes=True,
        ).explore(points)
        assert self._report_observables(shared) == self._report_observables(plain)
        assert shared.executed == plain.executed == len(plain.outcomes)

    def test_resume_across_execution_paths(self):
        # Satellite: checkpoint keys are independent of the execution path,
        # so a campaign started on the fresh rebuild path resumes cleanly
        # under snapshots + prefix sharing (and vice versa).
        target = MiniGitTarget()
        controller = LFIController(target)
        points = self._points(controller)
        store = ResultStore()
        first = ExplorationEngine(
            target, store=store, seed=5, workload="commit",
            share_prefixes=False, request_options={"snapshots": False},
        ).explore(points, max_runs=10)
        assert first.executed == 10 and first.pending > 0

        resumed = ExplorationEngine(
            target, store=store, seed=5, workload="commit", share_prefixes=True,
        ).explore(points)
        assert resumed.pending == 0
        assert resumed.resumed == 10
        assert resumed.executed == len(points) - 10

        reference = ExplorationEngine(
            target, store=ResultStore(), seed=5, workload="commit",
            share_prefixes=False, request_options={"snapshots": False},
        ).explore(points)
        assert self._report_observables(resumed) == \
            self._report_observables(reference)

    def test_resume_seed_mismatch_still_detected(self):
        target = MiniGitTarget()
        controller = LFIController(target)
        points = self._points(controller)
        store = ResultStore()
        ExplorationEngine(
            target, store=store, seed=5, workload="status",
        ).explore(points, max_runs=3)
        with pytest.raises(ValueError, match="seed mismatch"):
            ExplorationEngine(
                target, store=store, seed=6, workload="status",
            ).explore(points)


# ----------------------------------------------------------------------
# gate inject observer
# ----------------------------------------------------------------------
class TestInjectObserver:
    def test_observer_fires_before_fault_application(self):
        target = MiniGitTarget()
        session = target.open_session("status")
        try:
            gate = make_gate(_fault_scenario())
            seen = []

            def observer(name, args, count, ctx, decision):
                # The observer runs before the gate counts or logs the
                # injection: both must still be at their pre-fault values.
                seen.append((name, gate.injected_calls, len(gate.log.records)))

            gate.inject_observer = observer
            plan = target.workload_plan("status")
            target.execute_plan(session, plan, gate, None)
            assert seen and seen[0][1] == 0 and seen[0][2] == 0
            assert gate.injected_calls >= 1
        finally:
            session.close()
