"""Tests for suffix memoization, cross-workload boot reuse, and
cost-adaptive group scheduling (PR 9 tentpole + satellites).

The contract under test: every new layer — the suffix memo, the
boot-scope template keying, the adaptive group planner, the group-aware
fabric leases, and worker-side result batching — is a pure throughput
optimisation.  Results stay bit-identical to the memo-free per-scenario
serial oracle on every backend and through the campaignd fabric, and the
``memo=False`` / ``group_sched="static"`` knobs recover the old paths
exactly.
"""

import dataclasses

import pytest

from repro.core.controller.campaign import TestCampaign as Campaign
from repro.core.controller.controller import LFIController
from repro.core.controller.executor import (
    GroupTask,
    estimate_group_cost,
    plan_group_batches,
    resolve_group_schedule,
    shard_group_tasks,
    split_group_task,
)
from repro.core.controller.memo import (
    SuffixMemo,
    clear_suffix_memo,
    resolve_memo,
    suffix_memo,
    suffix_memo_stats,
)
from repro.core.controller.prefix import member_memo_key, run_scenarios_shared
from repro.core.exploration.engine import ExplorationEngine
from repro.core.exploration.store import ResultStore
from repro.core.profiler.cache import (
    artifact_cache_stats,
    clear_artifact_cache,
    libc_spec_fingerprint,
)
from repro.core.scenario.builder import ScenarioBuilder
from repro.distributed.campaignd import CampaignCoordinator, plan_lease_shards
from repro.distributed.client import CampaignClient
from repro.distributed.spec import CampaignSpec, build_engine
from repro.distributed.worker import CampaignWorker
from repro.oslib import libc as libc_module
from repro.targets.mini_git import MiniGitTarget
import repro.targets.base as targets_base


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _campaign_observables(campaign):
    return [
        {
            "scenario": outcome.scenario.name,
            "kind": outcome.outcome.kind,
            "detail": outcome.outcome.detail,
            "exit_code": outcome.outcome.exit_code,
            "location": outcome.outcome.location,
            "injections": outcome.result.injections,
            "log": [record.to_dict() for record in outcome.result.log.records],
        }
        for outcome in campaign.outcomes
    ]


def _fault_space_scenarios(target):
    controller = LFIController(target)
    analysis = controller.analyze_target()
    points = controller.fault_space(analysis=analysis, include_checked=True)
    return [point.scenario() for point in points]


def _group_task(index, member_indices, target=None, workload="w"):
    return GroupTask(
        index=index,
        target=target,
        workload=workload,
        entries=[(i, None, None) for i in member_indices],
    )


def _count_executions(monkeypatch):
    """Count real VM executions (probe or resumed suffix both go through
    :meth:`CompiledTarget.execute_plan`)."""
    counter = {"n": 0}
    original = targets_base.CompiledTarget.execute_plan

    def counting(self, *args, **kwargs):
        counter["n"] += 1
        return original(self, *args, **kwargs)

    monkeypatch.setattr(targets_base.CompiledTarget, "execute_plan", counting)
    return counter


# ----------------------------------------------------------------------
# the SuffixMemo container
# ----------------------------------------------------------------------
class TestSuffixMemoContainer:
    def test_lru_eviction_under_byte_budget(self):
        payload = "x" * 100
        one_size = SuffixMemo(max_bytes=1 << 20)
        one_size.store("probe", payload)
        entry_bytes = one_size.stats().current_bytes
        memo = SuffixMemo(max_bytes=3 * entry_bytes)
        for key in ("a", "b", "c"):
            assert memo.store(key, payload)
        assert len(memo) == 3
        # Refresh "a", then overflow: "b" is now the least recently used.
        assert memo.lookup("a") == payload
        assert memo.store("d", payload)
        assert memo.lookup("b") is None
        assert memo.lookup("a") == payload
        assert memo.lookup("c") == payload
        assert memo.lookup("d") == payload
        stats = memo.stats()
        assert stats.evictions == 1
        assert stats.entries == 3
        assert stats.current_bytes <= memo.max_bytes

    def test_oversized_and_unpicklable_results_are_rejected(self):
        memo = SuffixMemo(max_bytes=64)
        assert memo.store("big", "y" * 4096) is False
        assert memo.store("bad", lambda: None) is False  # unpicklable
        assert len(memo) == 0
        assert memo.stats().rejected == 2

    def test_restore_same_key_replaces_without_leaking_bytes(self):
        memo = SuffixMemo(max_bytes=1 << 20)
        memo.store("k", "a" * 50)
        once = memo.stats().current_bytes
        memo.store("k", "a" * 50)
        assert memo.stats().current_bytes == once
        assert len(memo) == 1

    def test_resolve_memo_knobs(self, monkeypatch):
        private = SuffixMemo()
        assert resolve_memo({"memo": private}) is private
        assert resolve_memo({"memo": False}) is None
        assert resolve_memo({"memo": True}) is suffix_memo()
        monkeypatch.setenv("REPRO_MEMO", "0")
        assert resolve_memo({}) is None
        assert resolve_memo({"memo": True}) is suffix_memo()
        monkeypatch.delenv("REPRO_MEMO")
        assert resolve_memo({}) is suffix_memo()


# ----------------------------------------------------------------------
# memo keys
# ----------------------------------------------------------------------
class TestMemberMemoKey:
    def test_key_covers_fault_and_workload_but_not_seed(self):
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:2]

        def key(scenario, workload="status", options=None):
            return member_memo_key(
                target, workload, scenario, False, dict(options or {}), False
            )

        first, second = key(scenarios[0]), key(scenarios[1])
        assert first is not None and second is not None
        assert first != second  # distinct faults, distinct keys
        assert key(scenarios[0]) == first  # deterministic
        assert key(scenarios[0], workload="commit") != first
        # The per-run seed is behaviour-neutral for safe triggers and must
        # not split cache lines; a behaviour-bearing option must.
        assert key(scenarios[0], options={"run_seed": 99}) == first
        assert key(scenarios[0], options={"requests": 5}) != first

    def test_unshareable_scenarios_get_no_key(self):
        target = MiniGitTarget()
        builder = ScenarioBuilder("ramped")
        builder.trigger("r", "RandomTrigger", probability=0.5)
        builder.inject("read", ["r"], return_value=-1, errno="EIO")
        assert (
            member_memo_key(target, "status", builder.build(), False, {}, False)
            is None
        )
        assert member_memo_key(target, "status", None, False, {}, False) is None


# ----------------------------------------------------------------------
# memoized campaigns: identity + reuse
# ----------------------------------------------------------------------
class TestMemoizedCampaigns:
    def test_resweep_with_warm_memo_is_identical_and_free(self, monkeypatch):
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:18]
        campaign = Campaign(target, workload="status")
        oracle = campaign.run(
            scenarios, seed=5, include_baseline=False, memo=False
        )
        reference = _campaign_observables(oracle)

        memo = SuffixMemo()
        cold = campaign.run(scenarios, seed=5, include_baseline=False, memo=memo)
        assert _campaign_observables(cold) == reference
        assert memo.stats().stores == len(scenarios)

        executions = _count_executions(monkeypatch)
        warm = campaign.run(scenarios, seed=5, include_baseline=False, memo=memo)
        assert _campaign_observables(warm) == reference
        assert executions["n"] == 0  # every member answered from the memo
        assert memo.stats().hits == len(scenarios)

    def test_memo_hits_are_detached_copies(self):
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:4]
        memo = SuffixMemo()
        first = run_scenarios_shared(
            target, "status", scenarios, options={"memo": memo}
        )
        second = run_scenarios_shared(
            target, "status", scenarios, options={"memo": memo}
        )
        for a, b in zip(first, second):
            assert a is not b
            assert a.outcome is not b.outcome
            assert a.log is not b.log

    def test_memo_survives_across_workload_and_option_boundaries(self):
        # Same scenarios on another workload must *miss* (the suffix runs
        # different steps), not collide.
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:6]
        memo = SuffixMemo()
        status = run_scenarios_shared(
            target, "status", scenarios, options={"memo": memo}
        )
        commit = run_scenarios_shared(
            target, "commit", scenarios, options={"memo": memo}
        )
        assert memo.stats().hits == 0
        plain_commit = run_scenarios_shared(
            target, "commit", scenarios, options={"memo": False}
        )
        assert [r.outcome.kind for r in commit] == [
            r.outcome.kind for r in plain_commit
        ]
        assert status  # both sweeps completed

    def test_campaign_run_surfaces_cache_stats(self):
        clear_suffix_memo()
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:8]
        campaign = Campaign(target, workload="status")
        first = campaign.run(
            scenarios, seed=1, include_baseline=False, memo=True
        )
        assert first.stats["sharing"] is True
        assert first.stats["backend"] == "SerialBackend"
        assert first.stats["suffix_memo"]["stores"] == len(scenarios)
        second = campaign.run(
            scenarios, seed=1, include_baseline=False, memo=True
        )
        assert second.stats["suffix_memo"]["hits"] == len(scenarios)
        assert second.stats["suffix_memo"]["misses"] == 0
        assert {"hits", "misses", "shared_hits"} <= set(
            second.stats["boot_template"]
        )
        clear_suffix_memo()

    def test_eviction_pressure_keeps_results_identical(self):
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:12]
        campaign = Campaign(target, workload="status")
        reference = _campaign_observables(
            campaign.run(scenarios, seed=2, include_baseline=False, memo=False)
        )
        # A budget holding only a couple of results: constant eviction, so
        # re-sweeps mix hits, misses, and re-executions.
        probe = SuffixMemo()
        campaign.run(scenarios[:1], seed=2, include_baseline=False, memo=probe)
        entry_bytes = max(1, probe.stats().current_bytes)
        tiny = SuffixMemo(max_bytes=2 * entry_bytes + entry_bytes // 2)
        for _ in range(2):
            swept = campaign.run(
                scenarios, seed=2, include_baseline=False, memo=tiny
            )
            assert _campaign_observables(swept) == reference
        stats = tiny.stats()
        assert stats.evictions > 0
        assert stats.current_bytes <= tiny.max_bytes


# ----------------------------------------------------------------------
# store resume must not poison the memo
# ----------------------------------------------------------------------
class TestStoreResumeMemoSafety:
    def test_replayed_records_never_enter_the_memo(self):
        target = MiniGitTarget()
        controller = LFIController(target)
        analysis = controller.analyze_target()
        points = controller.fault_space(analysis=analysis, include_checked=True)
        store = ResultStore()
        first_memo = SuffixMemo()
        engine = ExplorationEngine(
            target, store=store, seed=3, workload="status",
            request_options={"memo": first_memo},
        )
        engine.explore(points)
        assert first_memo.stats().stores > 0

        # Replay-only resume: everything is answered from the store, so a
        # fresh memo must end the run exactly as empty as it began — the
        # lossy stored records (no logs, no coverage) can never be mistaken
        # for runnable results.
        replay_memo = SuffixMemo()
        resumed = ExplorationEngine(
            target, store=store, seed=3, workload="status",
            request_options={"memo": replay_memo},
        )
        report = resumed.explore(points)
        assert report.resumed == len(points)
        assert report.executed == 0
        assert len(replay_memo) == 0
        assert replay_memo.stats().stores == 0


# ----------------------------------------------------------------------
# cross-workload boot-template sharing
# ----------------------------------------------------------------------
class TestCrossWorkloadBootSharing:
    WORKLOADS = ("status", "commit", "gc")

    def test_workloads_share_one_boot_template(self):
        clear_artifact_cache()
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:6]
        references = {}
        for workload in self.WORKLOADS:
            references[workload] = _campaign_observables(
                Campaign(target, workload=workload).run(
                    scenarios, include_baseline=False,
                    memo=False, snapshots=True,
                )
            )
        stats = artifact_cache_stats()
        # One template build serves every workload of the target: the
        # fixture-prefix key collapses what used to be one boot per
        # workload name.
        assert stats.boot_misses == 1
        assert stats.boot_shared_hits >= len(self.WORKLOADS) - 1
        # And sharing the boot state changed nothing observable.
        for workload in self.WORKLOADS:
            fresh = Campaign(target, workload=workload).run(
                scenarios, include_baseline=False,
                memo=False, snapshots=False,
            )
            assert _campaign_observables(fresh) == references[workload]

    def test_boot_scope_override_splits_templates(self):
        class SplitScopeTarget(MiniGitTarget):
            def boot_scope(self, workload):
                return ("boot", workload)

        clear_artifact_cache()
        target = SplitScopeTarget()
        scenarios = _fault_space_scenarios(target)[:2]
        for workload in ("status", "commit"):
            Campaign(target, workload=workload).run(
                scenarios, include_baseline=False, memo=False, snapshots=True
            )
        stats = artifact_cache_stats()
        assert stats.boot_misses == 2
        assert stats.boot_shared_hits == 0

    def test_libc_fingerprint_change_invalidates_shared_templates(self):
        clear_artifact_cache()
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:2]

        def sweep():
            Campaign(target, workload="status").run(
                scenarios, include_baseline=False, memo=False, snapshots=True
            )

        sweep()
        assert artifact_cache_stats().boot_misses == 1
        before = libc_spec_fingerprint()
        original = libc_module.LIBC_FUNCTIONS["read"]
        libc_module.LIBC_FUNCTIONS["read"] = dataclasses.replace(
            original, success="mutated-for-test"
        )
        try:
            assert libc_spec_fingerprint() != before
            sweep()
            # The mutated spec missed the template cache instead of serving
            # boot state built against the old spec.
            assert artifact_cache_stats().boot_misses == 2
        finally:
            libc_module.LIBC_FUNCTIONS["read"] = original
            clear_artifact_cache()
        assert libc_spec_fingerprint() == before


# ----------------------------------------------------------------------
# adaptive group scheduling
# ----------------------------------------------------------------------
class TestAdaptivePlanning:
    def test_policy_resolution_and_env_default(self, monkeypatch):
        assert resolve_group_schedule("adaptive") == "adaptive"
        assert resolve_group_schedule("static") == "static"
        assert resolve_group_schedule("round-robin") == "static"
        assert resolve_group_schedule("rr") == "static"
        monkeypatch.delenv("REPRO_GROUP_SCHED", raising=False)
        assert resolve_group_schedule(None) == "adaptive"
        monkeypatch.setenv("REPRO_GROUP_SCHED", "static")
        assert resolve_group_schedule(None) == "static"
        with pytest.raises(ValueError, match="unknown group schedule"):
            resolve_group_schedule("bogus")

    def test_no_empty_batches_when_workers_exceed_groups(self):
        tasks = [_group_task(0, [0, 1]), _group_task(1, [2])]
        for policy in ("static", "adaptive"):
            batches = plan_group_batches(tasks, 8, policy=policy)
            assert batches, policy
            assert all(batch.groups for batch in batches), policy
            covered = sorted(
                i
                for batch in batches
                for group in batch.groups
                for i, _s, _seed in group.entries
            )
            assert covered == [0, 1, 2], policy
        # The static shim itself never emits empties either.
        assert all(b.groups for b in shard_group_tasks(tasks, 8))
        assert plan_group_batches([], 4) == []

    def test_split_preserves_rank_order_and_membership(self):
        task = _group_task(0, list(range(10)))
        chunks = split_group_task(task, 3)
        assert [len(c.entries) for c in chunks] == [4, 3, 3]
        flattened = [i for chunk in chunks for i, _s, _seed in chunk.entries]
        assert flattened == list(range(10))
        assert split_group_task(task, 1) == [task]
        # More parts than members clamps to one member per chunk.
        assert [len(c.entries) for c in split_group_task(task, 99)] == [1] * 10

    def test_adaptive_splits_oversized_family_and_beats_static(self):
        # A skewed distribution: one 24-member errno family plus eight
        # singletons.  Static round-robin lands the whole family on one
        # shard; adaptive splits it across the fleet.
        tasks = [_group_task(0, list(range(24)))] + [
            _group_task(1 + n, [24 + n]) for n in range(8)
        ]
        shards = 4

        def makespan(batches):
            return max(
                sum(estimate_group_cost(group) for group in batch.groups)
                for batch in batches
            )

        static = plan_group_batches(tasks, shards, policy="static")
        adaptive = plan_group_batches(tasks, shards, policy="adaptive")
        for batches in (static, adaptive):
            covered = sorted(
                i
                for batch in batches
                for group in batch.groups
                for i, _s, _seed in group.entries
            )
            assert covered == list(range(32))
        assert len(adaptive) == shards
        assert makespan(adaptive) < makespan(static)
        # Deterministic: the plan is a pure function of its inputs.
        again = plan_group_batches(tasks, shards, policy="adaptive")
        assert [
            [(g.index, [e[0] for e in g.entries]) for g in b.groups]
            for b in again
        ] == [
            [(g.index, [e[0] for e in g.entries]) for g in b.groups]
            for b in adaptive
        ]

    def test_adaptive_campaign_bit_identical_on_every_backend(self):
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:20]
        campaign = Campaign(target, workload="status")
        reference = _campaign_observables(
            campaign.run(
                scenarios, seed=9, include_baseline=False,
                share_prefixes=False, memo=False,
            )
        )
        for parallelism in ("threads:2", "threads:3", "processes:2"):
            for policy in ("static", "adaptive"):
                swept = campaign.run(
                    scenarios, seed=9, include_baseline=False,
                    share_prefixes=True, parallelism=parallelism,
                    memo=False, group_sched=policy,
                )
                assert (
                    _campaign_observables(swept) == reference
                ), (parallelism, policy)


# ----------------------------------------------------------------------
# group-aware fabric leases + result batching
# ----------------------------------------------------------------------
GIT_SPEC_KWARGS = dict(
    target="mini_git", workload="status", seed=7, functions=["close", "malloc"],
)


class TestLeasePlanning:
    def test_without_keys_degrades_to_contiguous_chunks(self):
        plan = plan_lease_shards(list(range(7)), None, 3)
        assert plan == [[0, 1, 2], [3, 4, 5], [6]]
        assert plan_lease_shards([], None, 3) == []

    def test_group_members_are_colocated(self):
        keys = ["a", "b", "a", None, "b", "a"]
        plan = plan_lease_shards(list(range(6)), keys, 4)
        shard_of = {i: n for n, shard in enumerate(plan) for i in shard}
        assert shard_of[0] == shard_of[2] == shard_of[5]  # the "a" family
        assert shard_of[1] == shard_of[4]  # the "b" family
        assert sorted(i for shard in plan for i in shard) == list(range(6))
        assert all(len(shard) <= 4 for shard in plan)

    def test_oversized_groups_split_at_shard_size(self):
        keys = ["a"] * 10
        plan = plan_lease_shards(list(range(10)), keys, 4)
        assert [len(shard) for shard in plan] == [4, 4, 2]
        assert [i for shard in plan for i in shard] == list(range(10))


class TestFabricIntegration:
    def _run_fabric(self, tmp_path, store_name, **worker_kwargs):
        coordinator = CampaignCoordinator(port=0, shard_size=4, lease_timeout=10.0)
        address = coordinator.start()
        client = CampaignClient(address)
        workers = [
            CampaignWorker(address, worker_id=f"w{n}", **worker_kwargs)
            for n in range(2)
        ]
        try:
            spec = CampaignSpec(
                store_path=str(tmp_path / store_name), **GIT_SPEC_KWARGS
            )
            reply = client.submit(spec)
            worked = True
            while worked:
                worked = False
                for worker in workers:
                    worked |= worker.run_once()
            status = client.status(reply["campaign_id"])
            records = client.results(reply["campaign_id"])
            return status, records, workers
        finally:
            client.close()
            for worker in workers:
                worker.close()
            coordinator.stop()

    @staticmethod
    def _record_signature(records):
        return [
            (r["key"], r["outcome"], r["detail"], r["exit_code"], r["location"],
             r["injections"], r["fingerprint"], r["run_seed"])
            for r in records
        ]

    def _serial_signature(self):
        spec = CampaignSpec(**GIT_SPEC_KWARGS)
        engine, points = build_engine(spec, store=ResultStore())
        report = engine.explore(points)
        return [
            (engine.run_key(o.point), o.outcome.kind.value, o.outcome.detail,
             o.outcome.exit_code, o.outcome.location, o.injections,
             o.fingerprint, o.run_seed)
            for o in report.outcomes
        ]

    def test_batched_fabric_bit_identical_to_serial(self, tmp_path):
        reference = self._serial_signature()
        status, records, workers = self._run_fabric(
            tmp_path, "batched.jsonl", result_batch_size=4
        )
        assert status["state"] == "complete"
        assert status["executed"] == status["total"]
        assert self._record_signature(records) == reference
        assert sum(w.results_streamed for w in workers) == status["total"]
        # Worker-reported cache deltas surfaced through `status` (the CLI
        # prints this payload verbatim).
        assert "memo_hits" in status["cache"]
        assert "boot_hits" in status["cache"]

    def test_unbatched_worker_against_new_coordinator(self, tmp_path):
        # result_batch_size=1 keeps the per-record protocol-1 data path
        # alive (what a version-1 worker speaks); results are identical.
        reference = self._serial_signature()
        status, records, _workers = self._run_fabric(
            tmp_path, "unbatched.jsonl", result_batch_size=1
        )
        assert status["state"] == "complete"
        assert self._record_signature(records) == reference

    def test_worker_against_version1_coordinator_streams_per_record(
        self, tmp_path, monkeypatch
    ):
        # A version-1 coordinator never advertises batching; the worker
        # must fall back to per-record streaming (which it always accepted).
        import repro.distributed.campaignd as campaignd_module

        monkeypatch.setattr(campaignd_module, "PROTOCOL_VERSION", 1)
        reference = self._serial_signature()
        status, records, workers = self._run_fabric(
            tmp_path, "v1.jsonl", result_batch_size=8
        )
        assert status["state"] == "complete"
        assert all(w._coordinator_version == 1 for w in workers)
        assert self._record_signature(records) == reference
