"""Tests for the mini-C lexer, parser, semantic checker, and code generator."""

import pytest

from repro.minicc import CompilationError, compile_source, parse, tokenize
from repro.minicc import ast_nodes as ast
from repro.minicc.lexer import LexerError
from repro.minicc.parser import ParseError
from repro.minicc.semantic import SemanticChecker, SemanticError
from repro.oslib.os_model import SimOS
from repro.vm import ExitKind, Machine


def run_program(source, entry="main", args=(), os=None):
    binary = compile_source(source, name="t")
    machine = Machine(binary, os=os or SimOS("t"))
    return machine.run(entry=entry, args=args), machine


class TestLexer:
    def test_tokens(self):
        tokens = tokenize('int x = 42; // comment\nif (x >= 10) { puts("hi\\n"); }')
        kinds = [t.kind for t in tokens]
        assert kinds[-1] == "eof"
        texts = [t.text for t in tokens if t.kind == "op"]
        assert ">=" in texts and "{" in texts
        strings = [t.text for t in tokens if t.kind == "string"]
        assert strings == ["hi\n"]

    def test_hex_and_char_literals(self):
        tokens = tokenize("x = 0x10 + 'A';")
        values = [t.text for t in tokens if t.kind == "int"]
        assert values == ["0x10", str(ord("A"))]

    def test_block_comment_line_tracking(self):
        tokens = tokenize("/* one\ntwo */ int x;")
        assert tokens[0].line == 2

    def test_errors(self):
        with pytest.raises(LexerError):
            tokenize('"unterminated')
        with pytest.raises(LexerError):
            tokenize("`")
        with pytest.raises(LexerError):
            tokenize("/* unterminated")


class TestParser:
    def test_program_structure(self):
        program = parse("int g = 3;\nint main() { int x; x = g + 1; return x; }")
        assert [g.name for g in program.globals] == ["g"]
        assert program.function_names() == ["main"]
        body = program.function("main").body
        assert isinstance(body.statements[0], ast.VarDecl)

    def test_expression_precedence(self):
        program = parse("int main() { return 1 + 2 * 3; }")
        expression = program.function("main").body.statements[0].value
        assert isinstance(expression, ast.BinaryOp) and expression.op == "+"
        assert isinstance(expression.right, ast.BinaryOp) and expression.right.op == "*"

    def test_control_flow_forms(self):
        program = parse(
            "int main() { int i; for (i = 0; i < 3; i = i + 1) { if (i == 1) { continue; } } "
            "while (i > 0) { i = i - 1; break; } return 0; }"
        )
        statements = program.function("main").body.statements
        assert any(isinstance(s, ast.For) for s in statements)
        assert any(isinstance(s, ast.While) for s in statements)

    def test_pointer_and_index_forms(self):
        program = parse("int main() { int a[4]; int p; p = &a; *p = 1; a[2] = 3; return a[2]; }")
        assert program.function("main") is not None

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse("int main() { return 1 }")  # missing semicolon
        with pytest.raises(ParseError):
            parse("int main() { 3 = x; }")  # bad assignment target
        with pytest.raises(ParseError):
            parse("int main() { &5; }")


class TestSemantic:
    def check(self, source):
        return SemanticChecker(parse(source)).check()

    def test_collects_imports(self):
        symbols = self.check("int main() { int fd; fd = open(\"/x\", 0); close(fd); return 0; }")
        assert symbols.imports == {"open", "close"}

    def test_duplicate_global(self):
        with pytest.raises(SemanticError):
            self.check("int a; int a; int main() { return 0; }")

    def test_undeclared_variable(self):
        with pytest.raises(SemanticError):
            self.check("int main() { return ghost; }")

    def test_errno_is_builtin(self):
        symbols = self.check("int main() { if (errno == 4) { return 1; } return 0; }")
        assert "main" in symbols.functions

    def test_local_function_arity_checked(self):
        with pytest.raises(SemanticError):
            self.check("int f(int a) { return a; } int main() { return f(1, 2); }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            self.check("int main() { break; return 0; }")

    def test_duplicate_local_and_parameter(self):
        with pytest.raises(SemanticError):
            self.check("int main() { int x; int x; return 0; }")
        with pytest.raises(SemanticError):
            self.check("int f(int a, int a) { return 0; } int main() { return f(1,1); }")

    def test_function_used_as_variable(self):
        with pytest.raises(SemanticError):
            self.check("int f() { return 1; } int main() { return f + 1; }")


class TestCodegenExecution:
    def test_arithmetic_and_comparisons(self):
        status, _ = run_program(
            "int main() { int a; a = 7 * 3 - 4 / 2; if (a == 19) { return 0; } return 1; }"
        )
        assert status.kind is ExitKind.NORMAL

    def test_loops_and_break_continue(self):
        source = """
        int main() {
            int i;
            int total;
            total = 0;
            for (i = 0; i < 10; i = i + 1) {
                if (i == 3) { continue; }
                if (i == 8) { break; }
                total = total + i;
            }
            return total;
        }
        """
        status, _ = run_program(source)
        assert status.code == 0 + 1 + 2 + 4 + 5 + 6 + 7

    def test_recursion(self):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
        """
        status, _ = run_program(source)
        assert status.code == 55

    def test_arrays_pointers_and_address_of(self):
        source = """
        int main() {
            int values[5];
            int i;
            int p;
            for (i = 0; i < 5; i = i + 1) { values[i] = i * i; }
            p = &values;
            if (*p != 0) { return 1; }
            if (values[4] != 16) { return 2; }
            return 0;
        }
        """
        status, _ = run_program(source)
        assert status.kind is ExitKind.NORMAL

    def test_globals_and_logical_operators(self):
        source = """
        int flag = 0;
        int limit = 10;
        int main() {
            int x;
            x = 5;
            if (x > 0 && x < limit) { flag = 1; }
            if (x == 3 || flag == 1) { return 0; }
            return 1;
        }
        """
        status, _ = run_program(source)
        assert status.kind is ExitKind.NORMAL

    def test_unary_not_and_negation(self):
        status, _ = run_program(
            "int main() { int x; x = -5; if (!0 && x == -5 && !(x == 4)) { return 0; } return 1; }"
        )
        assert status.kind is ExitKind.NORMAL

    def test_string_literals_and_library_calls(self):
        os = SimOS("t")
        status, machine = run_program(
            'int main() { puts("first"); puts("second"); return 0; }', os=os
        )
        assert status.kind is ExitKind.NORMAL
        assert os.stdout_text() == "first\nsecond\n"

    def test_errno_variable_reads_libc_errno(self):
        source = """
        int main() {
            int fd;
            fd = open("/does/not/exist", 0);
            if (fd < 0) {
                if (errno == 2) { return 0; }
                return 2;
            }
            return 1;
        }
        """
        status, _ = run_program(source)
        assert status.kind is ExitKind.NORMAL

    def test_while_with_assignment_condition(self):
        os = SimOS("t")
        os.fs.make_dirs("/data")
        os.fs.add_file("/data/a.txt", b"")
        os.fs.add_file("/data/b.txt", b"")
        source = """
        int main() {
            int dir;
            int entry;
            int count;
            count = 0;
            dir = opendir("/data");
            if (dir == 0) { return 9; }
            while (entry = readdir(dir)) { count = count + 1; }
            closedir(dir);
            return count;
        }
        """
        status, _ = run_program(source, os=os)
        assert status.code == 2

    def test_argument_passing_order(self):
        source = """
        int weighted(int a, int b, int c) { return a * 100 + b * 10 + c; }
        int main() { return weighted(1, 2, 3); }
        """
        status, _ = run_program(source)
        assert status.code == 123

    def test_main_receives_argument(self):
        status, _ = run_program("int main(int command) { return command * 2; }", args=(21,))
        assert status.code == 42

    def test_compilation_error_wrapping(self):
        with pytest.raises(CompilationError):
            compile_source("int main() { return ghost; }")
        with pytest.raises(CompilationError):
            compile_source("int main() { @ }")

    def test_division_semantics_and_modulo(self):
        status, _ = run_program(
            "int main() { if (7 / 2 == 3 && 7 % 3 == 1 && -6 / 4 == -1) { return 0; } return 1; }"
        )
        assert status.kind is ExitKind.NORMAL
