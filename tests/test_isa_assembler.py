"""Unit tests for the assembler, operand model, disassembler, and linker."""

import pytest

from repro.isa import layout
from repro.isa.assembler import Assembler, AssemblyError, assemble_text
from repro.isa.disassembler import Disassembler, format_instruction
from repro.isa.instructions import (
    DataRef,
    Imm,
    ImportRef,
    Instruction,
    Label,
    Mem,
    Opcode,
    Reg,
)
from repro.isa.linker import DynamicLinker, SimpleLibrary, UnresolvedSymbolError


SAMPLE = """
.func main
    push 64
    call @malloc
    add sp, 1
    cmp r0, 0
    je fail
    mov r1, r0
    push $greeting
    call @puts
    add sp, 1
    mov r0, 0
    halt
fail:
    mov r0, 1
    halt
.endfunc
.func helper
    mov r0, [bp+2]
    ret
.endfunc
.string greeting "hello"
.global counter 2 = 7
"""


class TestOperands:
    def test_register_validation(self):
        with pytest.raises(ValueError):
            Reg("r9")

    def test_mem_validation(self):
        with pytest.raises(ValueError):
            Mem(base="zz", offset=0)

    def test_mem_str_forms(self):
        assert str(Mem(None, 16)) == "[16]"
        assert str(Mem("bp", -3)) == "[bp-3]"
        assert str(Mem("sp", 2)) == "[sp+2]"
        assert str(Mem(None, 0, symbol="counter")) == "[$counter]"
        assert str(Mem(None, 1, symbol="counter")) == "[$counter+1]"

    def test_label_resolution(self):
        label = Label("target")
        assert label.address is None
        resolved = label.resolved(12)
        assert resolved.address == 12 and resolved.name == "target"

    def test_instruction_predicates(self):
        call = Instruction(Opcode.CALL, (ImportRef("read"),))
        assert call.is_library_call and not call.is_local_call
        assert call.called_name == "read"
        local = Instruction(Opcode.CALL, (Label("helper", 4),))
        assert local.is_local_call and local.called_name == "helper"
        jump = Instruction(Opcode.JE, (Label("x", 9),))
        assert jump.jump_target().address == 9

    def test_opcode_classification(self):
        assert Opcode.JE.is_equality_jump and not Opcode.JE.is_inequality_jump
        assert Opcode.JL.is_inequality_jump
        assert Opcode.JMP.is_jump and not Opcode.JMP.is_conditional_jump
        assert Opcode.RET.terminates_block


class TestTextAssembler:
    def test_assembles_sample(self):
        binary = assemble_text(SAMPLE, name="sample")
        assert binary.name == "sample"
        assert set(binary.symbols) == {"main", "helper"}
        assert "malloc" in binary.imports and "puts" in binary.imports
        assert binary.entry_address("main") == 0

    def test_labels_resolved(self):
        binary = assemble_text(SAMPLE, name="sample")
        je = next(i for i in binary.instructions if i.opcode is Opcode.JE)
        target = je.operands[0]
        assert isinstance(target, Label) and target.address is not None
        # The label "fail" points at "mov r0, 1".
        fail_instruction = binary.instructions[target.address]
        assert fail_instruction.opcode is Opcode.MOV
        assert fail_instruction.operands[1] == Imm(1)

    def test_string_and_global_layout(self):
        binary = assemble_text(SAMPLE, name="sample")
        greeting = binary.data_symbols["greeting"]
        assert binary.data_words[greeting] == ord("h")
        assert binary.data_words[greeting + 5] == 0  # NUL terminator
        counter = binary.data_symbols["counter"]
        assert binary.data_words[counter] == 7
        assert binary.data_words[counter + 1] == 7
        assert greeting >= layout.DATA_BASE

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_text(".func main\n    frobnicate r0\n.endfunc")

    def test_unresolved_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_text(".func main\n    jmp nowhere\n.endfunc")

    def test_duplicate_function_rejected(self):
        with pytest.raises(AssemblyError):
            assemble_text(".func main\n    ret\n.endfunc\n.func main\n    ret\n.endfunc")

    def test_comments_and_inline_labels(self):
        binary = assemble_text(
            ".func main\nstart: mov r0, 5 ; set result\n    jmp start # loop\n.endfunc"
        )
        assert len(binary.instructions) == 2

    def test_function_scoped_labels(self):
        text = """
.func one
loop:
    jmp loop
.endfunc
.func two
loop:
    jmp loop
.endfunc
"""
        binary = assemble_text(text)
        first, second = binary.instructions[0], binary.instructions[1]
        assert first.operands[0].address == 0
        assert second.operands[0].address == 1


class TestProgrammaticAssembler:
    def test_emit_outside_function_rejected(self):
        assembler = Assembler("x")
        with pytest.raises(AssemblyError):
            assembler.emit(Opcode.NOP)

    def test_duplicate_label_rejected(self):
        assembler = Assembler("x")
        assembler.begin_function("main")
        assembler.mark_label("here")
        with pytest.raises(AssemblyError):
            assembler.mark_label("here")

    def test_unclosed_function_rejected(self):
        assembler = Assembler("x")
        assembler.begin_function("main")
        assembler.emit(Opcode.RET)
        with pytest.raises(AssemblyError):
            assembler.finish()

    def test_mem_symbol_resolution(self):
        assembler = Assembler("x")
        assembler.add_global("state", initial=3)
        assembler.begin_function("main")
        assembler.emit(Opcode.MOV, Reg("r0"), Mem(None, 0, symbol="state"))
        assembler.emit(Opcode.HALT)
        assembler.end_function()
        binary = assembler.finish()
        operand = binary.instructions[0].operands[1]
        assert operand.symbol is None
        assert operand.offset == binary.data_symbols["state"]

    def test_unknown_mem_symbol_rejected(self):
        assembler = Assembler("x")
        assembler.begin_function("main")
        assembler.emit(Opcode.MOV, Reg("r0"), Mem(None, 0, symbol="ghost"))
        assembler.emit(Opcode.HALT)
        assembler.end_function()
        with pytest.raises(AssemblyError):
            assembler.finish()

    def test_dataref_resolution(self):
        assembler = Assembler("x")
        assembler.add_string("msg", "ab")
        assembler.begin_function("main")
        assembler.emit(Opcode.MOV, Reg("r0"), DataRef("msg"))
        assembler.emit(Opcode.HALT)
        assembler.end_function()
        binary = assembler.finish()
        assert binary.instructions[0].operands[1].address == binary.data_symbols["msg"]


class TestDisassembler:
    def test_format_instruction_resolves_targets(self):
        binary = assemble_text(SAMPLE, name="sample")
        listing = Disassembler(binary).disassemble()
        assert "<fail>" in listing
        assert "call @malloc" in listing or "@malloc" in listing

    def test_function_listing(self):
        binary = assemble_text(SAMPLE, name="sample")
        text = Disassembler(binary).disassemble_function("helper")
        assert text.startswith("<helper>:")
        assert "[bp+2]" in text

    def test_call_summary(self):
        binary = assemble_text(SAMPLE, name="sample")
        summary = Disassembler(binary).call_summary()
        assert "malloc" in summary and "puts" in summary

    def test_format_single(self):
        instruction = Instruction(Opcode.MOV, (Reg("r0"), Imm(3)), address=7)
        assert "mov r0, 3" in format_instruction(instruction)


class TestLinker:
    def test_preload_takes_precedence(self):
        real = SimpleLibrary("libc", {"read": "real-read", "write": "real-write"})
        shim = SimpleLibrary("lfi-shim", {"read": "shim-read"})
        linker = DynamicLinker(libraries=[real], preload=[shim])
        resolved = linker.resolve("read")
        assert resolved.provider == "lfi-shim" and resolved.preloaded
        assert linker.resolve("write").provider == "libc"

    def test_unresolved_symbol(self):
        linker = DynamicLinker(libraries=[SimpleLibrary("libc", {})])
        with pytest.raises(UnresolvedSymbolError):
            linker.resolve("nonexistent")
        assert linker.try_resolve("nonexistent") is None

    def test_search_order_and_cache_invalidation(self):
        linker = DynamicLinker()
        linker.add_library(SimpleLibrary("libc", {"read": 1}))
        assert linker.resolve("read").provider == "libc"
        linker.preload_library(SimpleLibrary("shim", {"read": 2}))
        assert linker.search_order[0] == "shim"
        assert linker.resolve("read").provider == "shim"
        linker.remove_preloaded("shim")
        assert linker.resolve("read").provider == "libc"

    def test_resolve_all(self):
        linker = DynamicLinker(libraries=[SimpleLibrary("libc", {"a": 1, "b": 2})])
        resolved = linker.resolve_all(["a", "b"])
        assert set(resolved) == {"a", "b"}
