"""Tests for the fault-injection scenario language: model, builder, XML, validation."""

import pytest

from repro.core.injection.faults import FaultSpec
from repro.core.scenario.builder import ScenarioBuilder
from repro.core.scenario.model import Scenario
from repro.core.scenario.validate import ScenarioValidationError, validate_scenario
from repro.core.scenario.xml_io import ScenarioParseError, parse_scenario_xml, scenario_to_xml
from repro.core.triggers.registry import ensure_stock_triggers_registered

PAPER_EXAMPLE = """
<scenario name="pipe-read">
  <trigger id="readTrig2" class="ReadPipe">
    <args>
      <low>1024</low>
      <high>4096</high>
    </args>
  </trigger>
  <trigger id="mutexTrig" class="WithMutex" />
  <function name="read" argc="3" return="-1" errno="EINVAL">
    <reftrigger ref="readTrig2" />
    <reftrigger ref="mutexTrig" />
  </function>
  <function name="pthread_mutex_lock" return="unused" errno="unused">
    <reftrigger ref="mutexTrig" />
  </function>
  <function name="pthread_mutex_unlock" return="unused" errno="unused">
    <reftrigger ref="mutexTrig" />
  </function>
</scenario>
"""


class TestFaultSpec:
    def test_from_strings(self):
        fault = FaultSpec.from_strings("-1", "EINTR")
        assert fault.return_value == -1 and fault.errno == 4
        assert FaultSpec.from_strings("0", "unused").errno is None
        assert FaultSpec.from_strings("0x10", None).return_value == 16

    def test_describe(self):
        assert "EINTR" in FaultSpec(-1, 4).describe()
        assert FaultSpec(0).describe() == "return 0"


class TestModelAndBuilder:
    def test_builder_produces_paper_shape(self):
        scenario = (
            ScenarioBuilder("pipe-read")
            .trigger("readTrig2", "ReadPipe", low=1024, high=4096)
            .trigger("mutexTrig", "WithMutex")
            .inject("read", ["readTrig2", "mutexTrig"], return_value=-1, errno="EINVAL")
            .observe("pthread_mutex_lock", ["mutexTrig"])
            .observe("pthread_mutex_unlock", ["mutexTrig"])
            .build()
        )
        assert set(scenario.triggers) == {"readTrig2", "mutexTrig"}
        assert scenario.functions() == ["read", "pthread_mutex_lock", "pthread_mutex_unlock"]
        read_plan = scenario.plans_for("read")[0]
        assert read_plan.injects and read_plan.argc == 3
        assert not scenario.plans_for("pthread_mutex_lock")[0].injects
        assert len(scenario.injecting_plans()) == 1
        assert "pipe-read" in scenario.describe()

    def test_duplicate_trigger_id_rejected(self):
        scenario = Scenario("x")
        scenario.declare_trigger("t", "RandomTrigger")
        with pytest.raises(ValueError):
            scenario.declare_trigger("t", "RandomTrigger")

    def test_builder_metadata(self):
        scenario = ScenarioBuilder("m").trigger("t", "RandomTrigger", probability=0.1) \
            .inject("read", ["t"], return_value=-1, errno=5).metadata(origin="test").build()
        assert scenario.metadata["origin"] == "test"
        assert scenario.plans[0].fault.errno == 5


class TestXml:
    def test_parse_paper_example(self):
        scenario = parse_scenario_xml(PAPER_EXAMPLE)
        assert scenario.name == "pipe-read"
        assert scenario.triggers["readTrig2"].params == {"low": "1024", "high": "4096"}
        read_plan = scenario.plans_for("read")[0]
        assert read_plan.fault.return_value == -1
        assert read_plan.fault.errno == 22  # EINVAL
        assert read_plan.trigger_ids == ["readTrig2", "mutexTrig"]
        assert scenario.plans_for("pthread_mutex_lock")[0].fault is None

    def test_roundtrip(self):
        original = parse_scenario_xml(PAPER_EXAMPLE)
        text = scenario_to_xml(original)
        again = parse_scenario_xml(text)
        assert set(again.triggers) == set(original.triggers)
        assert [p.function for p in again.plans] == [p.function for p in original.plans]
        assert again.plans_for("read")[0].fault == original.plans_for("read")[0].fault

    def test_nested_frame_args_roundtrip(self):
        scenario = (
            ScenarioBuilder("frames")
            .trigger_with_params(
                "cs", "CallStackTrigger",
                {"frame": [{"module": "prog", "offset": 16}, {"module": "prog", "line": 9}]},
            )
            .inject("fopen", ["cs"], return_value=0, errno="ENOENT")
            .build()
        )
        parsed = parse_scenario_xml(scenario_to_xml(scenario))
        frames = parsed.triggers["cs"].params["frame"]
        assert isinstance(frames, list) and len(frames) == 2
        assert frames[0]["module"] == "prog"

    def test_parse_errors(self):
        with pytest.raises(ScenarioParseError):
            parse_scenario_xml("<notascenario/>")
        with pytest.raises(ScenarioParseError):
            parse_scenario_xml("<scenario><trigger class='X'/></scenario>")
        with pytest.raises(ScenarioParseError):
            parse_scenario_xml(
                "<scenario><function name='read' return='-1'>"
                "<reftrigger ref='ghost'/></function></scenario>"
            )
        with pytest.raises(ScenarioParseError):
            parse_scenario_xml("not xml at all <<<")


class TestValidation:
    def setup_method(self):
        ensure_stock_triggers_registered()

    def test_valid_scenario_produces_no_errors(self):
        scenario = parse_scenario_xml(PAPER_EXAMPLE)
        warnings = validate_scenario(scenario)
        assert warnings == []

    def test_unknown_trigger_class(self):
        scenario = Scenario("bad")
        scenario.declare_trigger("t", "NoSuchTriggerClass")
        scenario.associate("read", ["t"], fault=FaultSpec(-1, 5))
        with pytest.raises(ScenarioValidationError):
            validate_scenario(scenario)

    def test_unknown_function_warning_vs_strict(self):
        scenario = (
            ScenarioBuilder("w").trigger("t", "RandomTrigger", probability=0.5)
            .inject("frobnicate", ["t"], return_value=-1).build()
        )
        warnings = validate_scenario(scenario)
        assert any("frobnicate" in warning for warning in warnings)
        with pytest.raises(ScenarioValidationError):
            validate_scenario(scenario, strict_functions=True)

    def test_unreferenced_trigger_warning(self):
        scenario = (
            ScenarioBuilder("w").trigger("used", "RandomTrigger", probability=0.5)
            .trigger("unused", "SingletonTrigger")
            .inject("read", ["used"], return_value=-1).build()
        )
        warnings = validate_scenario(scenario)
        assert any("unused" in warning for warning in warnings)

    def test_empty_scenario_rejected(self):
        with pytest.raises(ScenarioValidationError):
            validate_scenario(Scenario("empty"))
