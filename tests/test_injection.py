"""Tests for the injection runtime, the library-call gate, logs, and replay."""

import pytest

from repro.core.injection.context import CallContext
from repro.core.injection.faults import FaultSpec
from repro.core.injection.gate import LibraryCallGate
from repro.core.injection.log import InjectionLog
from repro.core.injection.replay import build_replay_scenario, build_replay_scenarios, replay_script
from repro.core.injection.runtime import InjectionRuntime
from repro.core.scenario.builder import ScenarioBuilder
from repro.core.triggers.base import Trigger
from repro.oslib.errno_codes import Errno
from repro.oslib.libc import LibcResult


def simple_scenario(nth=1):
    return (
        ScenarioBuilder("simple")
        .trigger("count", "CallCountTrigger", nth=nth)
        .inject("read", ["count"], return_value=-1, errno="EINTR")
        .build()
    )


class TestRuntime:
    def test_o1_lookup_and_decision(self):
        runtime = InjectionRuntime(simple_scenario(nth=2))
        assert runtime.handles("read") and not runtime.handles("write")
        assert runtime.intercepted_functions() == ["read"]
        first = runtime.decide(CallContext(function="read"))
        second = runtime.decide(CallContext(function="read"))
        assert not first.inject and second.inject
        assert second.fault == FaultSpec(-1, int(Errno.EINTR))
        assert second.fired_triggers == ["count"]
        assert runtime.injections == 1

    def test_lazy_instantiation(self):
        runtime = InjectionRuntime(simple_scenario())
        assert runtime.instantiated_triggers() == {}
        runtime.decide(CallContext(function="read"))
        assert set(runtime.instantiated_triggers()) == {"count"}

    def test_conjunction_short_circuit(self):
        scenario = (
            ScenarioBuilder("conj")
            .trigger("never", "RandomTrigger", probability=0.0)
            .trigger("once", "SingletonTrigger")
            .inject("read", ["never", "once"], return_value=-1, errno="EIO")
            .build()
        )
        runtime = InjectionRuntime(scenario)
        for _ in range(5):
            assert not runtime.decide(CallContext(function="read")).inject
        singleton = runtime.trigger_instance("once")
        assert singleton.injections_granted == 0  # never evaluated

    def test_disjunction_across_plans(self):
        scenario = (
            ScenarioBuilder("disj")
            .trigger("third", "CallCountTrigger", nth=3)
            .trigger("first", "CallCountTrigger", nth=1)
            .inject("close", ["third"], return_value=-1, errno="EIO")
            .inject("close", ["first"], return_value=-1, errno="EBADF")
            .build()
        )
        runtime = InjectionRuntime(scenario)
        first = runtime.decide(CallContext(function="close"))
        assert first.inject and first.fault.errno == int(Errno.EBADF)

    def test_observe_only_association_updates_state(self):
        scenario = (
            ScenarioBuilder("mutex")
            .trigger("withmutex", "WithMutex")
            .inject("read", ["withmutex"], return_value=-1, errno="EIO")
            .observe("pthread_mutex_lock", ["withmutex"])
            .observe("pthread_mutex_unlock", ["withmutex"])
            .build()
        )
        runtime = InjectionRuntime(scenario)
        assert not runtime.decide(CallContext(function="read")).inject
        assert not runtime.decide(CallContext(function="pthread_mutex_lock")).inject
        assert runtime.decide(CallContext(function="read")).inject

    def test_shared_objects_resolution(self):
        class StubController:
            def should_inject(self, node, function, args, ctx):
                return True

        scenario = (
            ScenarioBuilder("dist")
            .trigger_with_params("remote", "DistributedTrigger", {"controller": "@controller"})
            .inject("sendto", ["remote"], return_value=-1, errno="EAGAIN")
            .build()
        )
        runtime = InjectionRuntime(scenario, shared_objects={"controller": StubController()})
        assert runtime.decide(CallContext(function="sendto", node="replica0")).inject

    def test_reset(self):
        runtime = InjectionRuntime(simple_scenario(nth=1))
        assert runtime.decide(CallContext(function="read")).inject
        runtime.reset()
        assert runtime.trigger_evaluations == 0
        assert runtime.decide(CallContext(function="read")).inject

    def test_unknown_trigger_reference(self):
        runtime = InjectionRuntime(simple_scenario())
        with pytest.raises(KeyError):
            runtime.trigger_instance("ghost")


class TestGate:
    def invoke_ok(self):
        return LibcResult(value=100, errno=None)

    def test_no_runtime_passthrough(self):
        gate = LibraryCallGate()
        result = gate.call("read", (1, 2, 3), self.invoke_ok)
        assert result.value == 100 and not result.injected
        assert gate.total_calls == 1 and gate.intercepted_calls == 0

    def test_injection_path_with_apply_fault(self):
        gate = LibraryCallGate(runtime=InjectionRuntime(simple_scenario(nth=1)))
        applied = {}

        def apply_fault(value, errno):
            applied["fault"] = (value, errno)
            return LibcResult(value=value, errno=errno, injected=True)

        result = gate.call("read", (3, 0, 64), self.invoke_ok, apply_fault=apply_fault)
        assert result.injected and result.value == -1
        assert applied["fault"] == (-1, int(Errno.EINTR))
        assert gate.injected_calls == 1
        assert gate.log.injection_count == 1
        record = gate.log.injections()[0]
        assert record.function == "read" and record.call_count == 1

    def test_injection_without_apply_fault(self):
        gate = LibraryCallGate(runtime=InjectionRuntime(simple_scenario(nth=1)))
        result = gate.call("read", (), self.invoke_ok)
        assert result.injected and result.errno == int(Errno.EINTR)

    def test_observe_only_never_injects(self):
        gate = LibraryCallGate(runtime=InjectionRuntime(simple_scenario(nth=1)), observe_only=True)
        result = gate.call("read", (), self.invoke_ok)
        assert not result.injected and result.value == 100
        assert gate.injected_calls == 0 and gate.intercepted_calls == 1

    def test_unhandled_function_skips_context_building(self):
        gate = LibraryCallGate(runtime=InjectionRuntime(simple_scenario()))
        result = gate.call("write", (), self.invoke_ok)
        assert result.value == 100
        assert gate.intercepted_calls == 0

    def test_per_function_call_counts(self):
        gate = LibraryCallGate()
        for _ in range(3):
            gate.call("read", (), self.invoke_ok)
        gate.call("close", (), self.invoke_ok)
        assert gate.call_counts == {"read": 3, "close": 1}
        gate.reset_counters()
        assert gate.total_calls == 0

    def test_python_stack_capture(self):
        scenario = (
            ScenarioBuilder("stack")
            .trigger_with_params("cs", "CallStackTrigger",
                                 {"frame": {"function": "application_level_helper"}})
            .inject("read", ["cs"], return_value=-1, errno="EIO")
            .build()
        )
        gate = LibraryCallGate(runtime=InjectionRuntime(scenario))

        def application_level_helper():
            return gate.call("read", (), self.invoke_ok)

        assert application_level_helper().injected
        assert not gate.call("read", (), self.invoke_ok).injected

    def test_state_provider_wiring(self):
        scenario = (
            ScenarioBuilder("state")
            .trigger("s", "ProgramStateTrigger", variable="shutting_down", op="==", value=1)
            .inject("fcntl", ["s"], return_value=-1, errno="EDEADLK")
            .build()
        )
        gate = LibraryCallGate(runtime=InjectionRuntime(scenario))
        state = {"shutting_down": 0}
        gate.add_state_provider(lambda name: state.get(name))
        assert not gate.call("fcntl", (1, 5), self.invoke_ok).injected
        state["shutting_down"] = 1
        assert gate.call("fcntl", (1, 5), self.invoke_ok).injected


class TestLogAndReplay:
    def make_log(self):
        log = InjectionLog()
        log.record("read", (3, 0, 8), injected=False, call_count=1)
        log.record(
            "read", (3, 0, 8), injected=True, call_count=2,
            fault=FaultSpec(-1, int(Errno.EINTR)), trigger_ids=["t"], node="mysqld",
            source="server.c:10",
        )
        return log

    def test_log_counts_and_queries(self):
        log = self.make_log()
        assert log.injection_count == 1 and log.passthrough_count == 1
        assert len(log.records) == 1  # passthrough not recorded by default
        assert log.last_injection().call_count == 2
        assert "EINTR" in log.summary()
        assert log.to_dicts()[0]["function"] == "read"
        log.clear()
        assert log.injection_count == 0

    def test_record_passthrough_mode(self):
        log = InjectionLog(record_passthrough=True)
        log.record("read", (), injected=False, call_count=1)
        assert len(log.records) == 1

    def test_replay_scenario(self):
        log = self.make_log()
        record = log.last_injection()
        replay = build_replay_scenario(record)
        assert replay.plans[0].function == "read"
        assert replay.plans[0].fault.errno == int(Errno.EINTR)
        declaration = list(replay.triggers.values())[0]
        assert declaration.class_name == "CallCountTrigger"
        assert declaration.params["nth"] == 2
        assert len(build_replay_scenarios(log)) == 1
        script = replay_script(log.records)
        assert "--call 2" in script

    def test_replay_requires_injection(self):
        log = InjectionLog(record_passthrough=True)
        record = log.record("read", (), injected=False, call_count=1)
        with pytest.raises(ValueError):
            build_replay_scenario(record)

    def test_replayed_injection_reproduces_decision(self):
        runtime = InjectionRuntime(simple_scenario(nth=3))
        gate = LibraryCallGate(runtime=runtime)
        for _ in range(4):
            gate.call("read", (), lambda: LibcResult(value=1))
        replay = build_replay_scenario(gate.log.last_injection())
        replay_runtime = InjectionRuntime(replay)
        decisions = [replay_runtime.decide(CallContext(function="read")).inject for _ in range(4)]
        assert decisions == [False, False, True, False]
