"""Smoke tests for the experiment harnesses (small parameters).

The full-size runs live in ``benchmarks/``; these tests only verify that
each harness produces a well-formed table with the qualitative properties
the corresponding benchmark asserts at full scale.
"""

import pytest

from repro.experiments import (
    analyzer_efficiency,
    dos_pbft,
    figure3_pbft_slowdown,
    mini_bind_campaign,
    table2_precision,
    table4_accuracy,
    table5_apache_overhead,
    table6_mysql_overhead,
)
from repro.experiments.common import TableResult, format_table, geometric_mean
from repro.core.exploration import BoundarySampleStrategy, ResultStore
from repro.experiments.table1_bugs import _compiled_target_bugs
from repro.experiments.table3_coverage import measure_target
from repro.targets.mini_bind import MiniBindTarget
from repro.targets.mini_git.target import COVERAGE_FUNCTIONS as GIT_FUNCTIONS
from repro.targets.mini_git.target import MiniGitTarget


class TestCommon:
    def test_table_result_and_formatting(self):
        table = TableResult(name="T", description="demo", columns=["a", "b"])
        table.add_row(a=1, b=0.5)
        table.add_row(a="x", b=True)
        table.add_note("a note")
        text = format_table(table)
        assert "T — demo" in text and "a note" in text
        assert table.column("a") == [1, "x"]
        assert table.to_dict()["rows"][0]["a"] == 1

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) is None


class TestExplorationWiring:
    """The exploration modes of the Table 1 / Table 3 harnesses."""

    def test_table1_exploration_mode_finds_bind_bugs_and_resumes(self, tmp_path):
        store_path = str(tmp_path / "table1-mini_bind.jsonl")
        bugs = _compiled_target_bugs(
            MiniBindTarget(), exploration=True, store=ResultStore(store_path)
        )
        functions = {bug.function for bug in bugs}
        assert {"malloc", "xmlNewTextWriterDoc"} <= functions
        assert all(bug.kind.is_high_impact for bug in bugs)
        completed = len(ResultStore(store_path))
        assert completed > 0

        # Re-running against the same store resumes: same candidates, and
        # the store does not grow (zero scenarios re-ran).
        again = _compiled_target_bugs(
            MiniBindTarget(), exploration=True, store=ResultStore(store_path)
        )
        assert {(b.function, b.kind, b.location) for b in again} == {
            (b.function, b.kind, b.location) for b in bugs
        }
        assert len(ResultStore(store_path)) == completed

    def test_table3_strategy_mode_still_improves_recovery_coverage(self):
        default_comparison, default_count = measure_target(MiniGitTarget(), GIT_FUNCTIONS)
        pruned_comparison, pruned_count = measure_target(
            MiniGitTarget(), GIT_FUNCTIONS, strategy=BoundarySampleStrategy()
        )
        assert 0 < pruned_count <= default_count * 2  # boundary may add errnos
        assert pruned_comparison.additional_recovery_fraction > 0.30
        assert (
            pruned_comparison.with_lfi.total_coverage
            > pruned_comparison.baseline.total_coverage
        )


class TestMiniBindCampaign:
    """The single-target BIND harness rides the dataplane end to end."""

    def test_campaign_mode_finds_both_planted_bugs(self):
        result = mini_bind_campaign.run()
        assert result.column("bug") == [
            "bind-statschannel-xml", "bind-dst-lib-init-malloc",
        ]
        assert result.column("found") == [True, True]

    def test_exploration_mode_resumes_from_store(self, tmp_path):
        store_path = str(tmp_path / "mini_bind.jsonl")
        first = mini_bind_campaign.run(exploration=True, store_path=store_path)
        assert first.column("found") == [True, True]
        completed = len(ResultStore(store_path))
        assert completed > 0
        again = mini_bind_campaign.run(exploration=True, store_path=store_path)
        assert again.column("found") == [True, True]
        assert len(ResultStore(store_path)) == completed

    def test_unknown_workload_is_rejected(self):
        with pytest.raises(ValueError, match="unknown mini_bind workload"):
            mini_bind_campaign.run(workload="no-such-workload")


class TestHarnesses:
    def test_table2_small(self):
        result = table2_precision.run(runs=12)
        assert [row["trigger scenario"] for row in result.rows][2] == "Close after mutex unlock"
        assert result.rows[2]["precision"] == 1.0

    def test_table4(self):
        result = table4_accuracy.run()
        accuracies = result.column("accuracy")
        assert all(0.0 <= value <= 1.0 for value in accuracies)
        bind_open = next(
            row for row in result.rows if row["system"] == "mini_bind" and row["function"] == "open"
        )
        assert bind_open["FP"] == 1

    def test_table5_small(self):
        result = table5_apache_overhead.run(requests=20, repeats=1, max_triggers=2)
        assert len(result.rows) == 3
        assert all(row["static HTML (s)"] > 0 for row in result.rows)

    def test_table6_small(self):
        result = table6_mysql_overhead.run(transactions=20, repeats=1, max_triggers=2)
        assert len(result.rows) == 3
        assert all(row["read-only (txns/s)"] > 0 for row in result.rows)

    def test_figure3_small(self):
        result = figure3_pbft_slowdown.run(requests=8, trials=1, probabilities=(0.0, 0.9))
        slowdowns = result.column("slowdown factor")
        assert slowdowns[0] == pytest.approx(1.0, abs=0.2)
        assert slowdowns[1] > 1.2

    def test_dos_small(self):
        result = dos_pbft.run(requests=8, trials=1, burst=50)
        assert len(result.rows) == 3
        silenced = result.rows[1]["relative to baseline"]
        rotating = result.rows[2]["relative to baseline"]
        assert silenced > rotating

    def test_analyzer_efficiency(self):
        result = analyzer_efficiency.run(repeats=1)
        assert any(row["call sites analyzed"] > 0 for row in result.rows)
        assert all(row["analysis time (ms)"] >= 0 for row in result.rows)
