"""Unit tests for the BinaryImage model."""

import pytest

from repro.isa.assembler import assemble_text
from repro.minicc import compile_source

SOURCE = """
int total = 0;

int helper(int fd) {
    int n;
    int buffer[8];
    n = read(fd, buffer, 4);
    if (n < 0) {
        return -1;
    }
    return n;
}

int main() {
    int fd;
    fd = open("/tmp/x", 0);
    if (fd < 0) {
        return 1;
    }
    helper(fd);
    close(fd);
    return 0;
}
"""


@pytest.fixture(scope="module")
def binary():
    return compile_source(SOURCE, name="binmodel")


class TestBinaryImage:
    def test_symbols_and_functions(self, binary):
        assert set(binary.symbols) == {"helper", "main"}
        helper = binary.functions["helper"]
        main = binary.functions["main"]
        assert helper.size > 0 and main.size > 0
        assert helper.end <= main.start or main.end <= helper.start

    def test_function_containing(self, binary):
        start = binary.symbols["helper"]
        info = binary.function_containing(start)
        assert info is not None and info.name == "helper"
        assert binary.function_containing(10**6) is None

    def test_instruction_at_bounds(self, binary):
        assert binary.instruction_at(0) is binary.instructions[0]
        with pytest.raises(IndexError):
            binary.instruction_at(len(binary) + 5)
        assert binary.has_address(0)
        assert not binary.has_address(-1)

    def test_imports_and_call_sites(self, binary):
        assert {"read", "open", "close"} <= set(binary.imports)
        read_sites = binary.call_sites("read")
        assert len(read_sites) == 1
        assert read_sites[0].caller == "helper"
        all_sites = binary.call_sites()
        assert len(all_sites) >= 3
        histogram = binary.called_imports()
        assert histogram["read"] == 1

    def test_line_table_and_sources(self, binary):
        site = binary.call_sites("read")[0]
        assert site.source is not None
        assert site.source.file == "binmodel.c"
        assert binary.source_of(site.address) == site.source
        lines = binary.lines()
        assert (site.source.file, site.source.line) in lines

    def test_addresses_for_line(self, binary):
        site = binary.call_sites("open")[0]
        addresses = binary.addresses_for_line(site.source.file, site.source.line)
        assert site.address in addresses

    def test_entry_address(self, binary):
        assert binary.entry_address() == binary.symbols["main"]
        with pytest.raises(KeyError):
            binary.entry_address("nonexistent")

    def test_iter_function_instructions(self, binary):
        addresses = [address for address, _ in binary.iter_function_instructions("helper")]
        info = binary.functions["helper"]
        assert addresses == list(range(info.start, info.end))
        with pytest.raises(KeyError):
            list(binary.iter_function_instructions("ghost"))

    def test_summary_mentions_name(self, binary):
        assert "binmodel" in binary.summary()


class TestInferredFunctions:
    def test_extents_inferred_from_symbols(self):
        binary = assemble_text(
            ".func a\n    nop\n    ret\n.endfunc\n.func b\n    nop\n    nop\n    ret\n.endfunc",
            name="two",
        )
        assert binary.functions["a"].size == 2
        assert binary.functions["b"].size == 3
