"""Differentials and regressions for parallel prefix-group scheduling.

PR 5 contract: prefix sharing composes with the pool backends (each
scenario group becomes one backend task) and groups share more — prefix
trees across call-count variants, errno-blind suffix replication — while
every result stays **bit-identical** to the serial shared path and to the
plain per-scenario path, on every backend.
"""

import pytest

from repro.core.controller.campaign import TestCampaign as Campaign
from repro.core.controller.controller import LFIController
from repro.core.controller import prefix
from repro.core.controller.executor import (
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro.core.controller.prefix import (
    partition_entries,
    resolve_sharing,
    run_scenarios_shared,
    scenario_group_key,
    scenario_group_key_parts,
    scenario_group_rank,
)
from repro.core.exploration.engine import ExplorationEngine
from repro.core.exploration.store import ResultStore
from repro.core.scenario.builder import ScenarioBuilder
from repro.targets.mini_apache.target import MiniApacheTarget
from repro.targets.mini_bind import MiniBindTarget
from repro.targets.mini_git import MiniGitTarget
from repro.targets.pbft import PBFTCheckpointTarget


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _campaign_observables(campaign):
    return [
        {
            "scenario": outcome.scenario.name,
            "kind": outcome.outcome.kind,
            "detail": outcome.outcome.detail,
            "exit_code": outcome.outcome.exit_code,
            "location": outcome.outcome.location,
            "injections": outcome.result.injections,
            "log": [record.to_dict() for record in outcome.result.log.records],
        }
        for outcome in campaign.outcomes
    ]


def _result_observables(result):
    return {
        "kind": result.outcome.kind,
        "detail": result.outcome.detail,
        "exit_code": result.outcome.exit_code,
        "injections": result.injections,
        "log": [record.to_dict() for record in result.log.records],
    }


def _coverage_observables(campaign):
    out = []
    for outcome in campaign.outcomes:
        tracker = outcome.result.stats.get("coverage")
        out.append(
            None
            if tracker is None
            else {a: tracker.hit_count(a) for a in tracker.covered_addresses}
        )
    return out


def _fault_space_scenarios(target):
    controller = LFIController(target)
    analysis = controller.analyze_target()
    points = controller.fault_space(analysis=analysis, include_checked=True)
    return [point.scenario() for point in points]


def _call_count_variants(function="read", counts=(1, 2, 4), errnos=("EIO", "EINTR")):
    scenarios = []
    for nth in counts:
        for errno in errnos:
            builder = ScenarioBuilder(f"{function}-{nth}-{errno}")
            builder.trigger("count", "CallCountTrigger", nth=nth)
            builder.inject(function, ["count"], return_value=-1, errno=errno)
            scenarios.append(builder.build())
    return scenarios


# ----------------------------------------------------------------------
# hierarchical group keys (prefix trees)
# ----------------------------------------------------------------------
class TestHierarchicalKeys:
    def test_call_count_variants_share_base_key_with_ranks(self):
        scenarios = _call_count_variants()
        parts = [scenario_group_key_parts(s) for s in scenarios]
        assert len({base for base, _rank in parts}) == 1
        assert [rank for _base, rank in parts] == [
            (1,), (1,), (2,), (2,), (4,), (4,)
        ]
        groups, ungrouped = partition_entries(
            [(i, s, None) for i, s in enumerate(scenarios)]
        )
        assert not ungrouped
        assert len(groups) == 1
        # members ordered by (rank, submission index)
        assert [entry[0] for entry in groups[0]] == [0, 1, 2, 3, 4, 5]

    def test_multiple_call_count_triggers_stay_flat(self):
        builder = ScenarioBuilder("two-counts")
        builder.trigger("a", "CallCountTrigger", nth=1)
        builder.trigger("b", "CallCountTrigger", nth=3)
        builder.inject("read", ["a", "b"], return_value=-1, errno="EIO")
        scenario = builder.build()
        base, rank = scenario_group_key_parts(scenario)
        assert rank == ()
        assert "3" in base  # the counts stay in the flat fingerprint

    def test_periodic_count_trigger_stays_flat(self):
        builder = ScenarioBuilder("periodic")
        builder.trigger("a", "CallCountTrigger", nth=2, every=2)
        builder.inject("read", ["a"], return_value=-1, errno="EIO")
        assert scenario_group_rank(builder.build()) == ()

    def test_count_trigger_on_observe_plan_stays_flat(self):
        builder = ScenarioBuilder("observe-count")
        builder.trigger("a", "CallCountTrigger", nth=2)
        builder.trigger("b", "SingletonTrigger")
        builder.observe("close", ["a"])
        builder.inject("read", ["b"], return_value=-1, errno="EIO")
        assert scenario_group_rank(builder.build()) == ()

    def test_flat_key_still_groups_errno_families(self):
        target = MiniGitTarget()
        by_key = {}
        for scenario in _fault_space_scenarios(target):
            key = scenario_group_key(scenario)
            assert key is not None
            by_key.setdefault(key, []).append(scenario)
        assert any(len(group) > 1 for group in by_key.values())


# ----------------------------------------------------------------------
# sharing guard (bugfix: explicit True bypassed the soundness check)
# ----------------------------------------------------------------------
class _UnshareableTarget:
    name = "unshareable"
    prefix_shareable = False

    def workloads(self):
        return ["default"]

    def binary(self):
        return None

    def run(self, request):  # pragma: no cover - never reached in the tests
        raise AssertionError("should not run")


class TestSharingGuard:
    def test_explicit_true_on_unshareable_target_raises(self):
        target = _UnshareableTarget()
        with pytest.raises(ValueError, match="prefix_shareable"):
            resolve_sharing(True, target)
        campaign = Campaign(target)
        with pytest.raises(ValueError, match="prefix_shareable"):
            campaign.run([], include_baseline=False, share_prefixes=True)
        engine = ExplorationEngine(
            target, store=ResultStore(), share_prefixes=True, workload="default"
        )
        with pytest.raises(ValueError, match="prefix_shareable"):
            engine.explore([])

    def test_none_still_auto_detects(self):
        assert resolve_sharing(None, _UnshareableTarget()) is False
        assert resolve_sharing(None, MiniGitTarget()) is True
        assert resolve_sharing(False, MiniGitTarget()) is False
        # None on an unshareable target quietly takes the per-scenario path.
        campaign = Campaign(_UnshareableTarget())
        result = campaign.run([], include_baseline=False)
        assert result.outcomes == []


# ----------------------------------------------------------------------
# executor bugfixes
# ----------------------------------------------------------------------
def _boom(value):
    if value < 0:
        raise RuntimeError("boom")
    return value


class TestExecutorFixes:
    def test_negative_parallelism_spec_raises(self):
        with pytest.raises(ValueError, match="negative"):
            resolve_backend(-1)
        with pytest.raises(ValueError, match="negative"):
            resolve_backend(-4)
        assert isinstance(resolve_backend(0), SerialBackend)
        assert isinstance(resolve_backend(1), SerialBackend)

    def test_map_cancels_pending_futures_on_failure(self):
        backend = ThreadPoolBackend(1)
        with backend:
            # One worker: the failing head task is processed first, so the
            # queued tail must be cancelled rather than leaked.
            with pytest.raises(RuntimeError, match="boom"):
                backend.map(_boom, [(-1,)] + [(i,) for i in range(64)])
            pool = backend._pool
            assert pool is not None
        # close() returned: shutdown(wait=True) would hang on leaked work
        # only if cancellation failed; reaching here is the assertion.

    def test_iter_cancels_outstanding_on_early_close(self):
        import time

        backend = ThreadPoolBackend(1)
        started = []

        def slow(value):
            started.append(value)
            time.sleep(0.01)
            return value

        with backend:
            iterator = backend._completed_iter(slow, list(range(128)))
            next(iterator)
            iterator.close()
        # Cancelled tasks never start: with one worker and an immediate
        # close, almost all of the 128 submissions must have been cancelled.
        assert len(started) < 8

    def test_campaign_raises_on_result_count_mismatch(self):
        class TruncatingBackend(SerialBackend):
            def run_tasks(self, tasks):
                return super().run_tasks(tasks)[:-1]

        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:3]
        campaign = Campaign(target, workload="status")
        with pytest.raises(RuntimeError, match="3 scenarios"):
            campaign.run(
                scenarios,
                include_baseline=False,
                share_prefixes=False,
                parallelism=TruncatingBackend(),
            )


# ----------------------------------------------------------------------
# observe-only propagation (bugfix: _resume_member_mid dropped the flag)
# ----------------------------------------------------------------------
class TestObserveOnlyPropagation:
    def test_resume_member_mid_threads_observe_only(self, monkeypatch):
        class _Stop(Exception):
            pass

        seen = {}

        def spy(scenario, observe_only=False, **kwargs):
            seen["observe_only"] = observe_only
            raise _Stop()

        monkeypatch.setattr(prefix, "make_gate", spy)
        with pytest.raises(_Stop):
            prefix._resume_member_mid(
                None, None, [], None, {}, ScenarioBuilder("s").build(),
                None, False, {}, observe_only=True,
            )
        assert seen["observe_only"] is True

    def test_observe_only_shared_runs_identical_and_injection_free(self):
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:12]
        from repro.core.controller.target import WorkloadRequest

        plain = [
            target.run(
                WorkloadRequest(workload="status", scenario=s, observe_only=True)
            )
            for s in scenarios
        ]
        shared = run_scenarios_shared(
            target, "status", scenarios, observe_only=True
        )
        assert [_result_observables(r) for r in shared] == [
            _result_observables(r) for r in plain
        ]
        assert all(r.injections == 0 for r in shared)


# ----------------------------------------------------------------------
# the parallel-shared differential
# ----------------------------------------------------------------------
COMPILED_TARGETS = (MiniGitTarget, MiniBindTarget, PBFTCheckpointTarget)


class TestParallelSharedDifferential:
    @pytest.mark.parametrize("target_class", COMPILED_TARGETS)
    def test_pooled_shared_identical_to_serial_shared_and_plain(self, target_class):
        target = target_class()
        workload = target.workloads()[0]
        scenarios = _fault_space_scenarios(target)[:24]
        campaign = Campaign(target, workload=workload)
        plain = campaign.run(
            scenarios, seed=3, include_baseline=False, share_prefixes=False
        )
        serial_shared = campaign.run(
            scenarios, seed=3, include_baseline=False, share_prefixes=True
        )
        reference = _campaign_observables(plain)
        assert _campaign_observables(serial_shared) == reference
        for spec in ("threads:2", "processes:2"):
            pooled = campaign.run(
                scenarios, seed=3, include_baseline=False,
                share_prefixes=True, parallelism=spec,
            )
            assert _campaign_observables(pooled) == reference, spec

    def test_pooled_shared_with_coverage_identical(self):
        target = MiniGitTarget()
        scenarios = _fault_space_scenarios(target)[:12]
        campaign = Campaign(target, workload="commit")
        plain = campaign.run(
            scenarios, include_baseline=False, collect_coverage=True,
            share_prefixes=False,
        )
        pooled = campaign.run(
            scenarios, include_baseline=False, collect_coverage=True,
            share_prefixes=True, parallelism="threads:2",
        )
        assert _campaign_observables(pooled) == _campaign_observables(plain)
        assert _coverage_observables(pooled) == _coverage_observables(plain)

    def test_apache_pooled_shared_identical(self):
        target = MiniApacheTarget()
        scenarios = []
        for caller, function, errnos in (
            ("_read_whole_file", "apr_file_read", ("EIO", "EINTR", "EAGAIN")),
            ("log_request", "write", ("EIO", "ENOSPC")),
        ):
            for nth in (1, 9):
                for errno in errnos:
                    builder = ScenarioBuilder(f"{caller}-{nth}-{errno}")
                    builder.trigger_with_params(
                        "site", "CallStackTrigger",
                        {"frame": {"module": "httpd_core", "function": caller}},
                    )
                    builder.trigger("count", "CallCountTrigger", nth=nth)
                    builder.trigger("once", "SingletonTrigger")
                    builder.inject(
                        function, ["site", "count", "once"],
                        return_value=-1, errno=errno,
                    )
                    scenarios.append(builder.build())
        campaign = Campaign(target, workload="ab-static")
        plain = campaign.run(
            scenarios, include_baseline=False, share_prefixes=False, requests=12
        )
        reference = _campaign_observables(plain)
        shared = campaign.run(
            scenarios, include_baseline=False, share_prefixes=True, requests=12
        )
        legacy = campaign.run(
            scenarios, include_baseline=False, share_prefixes=True, requests=12,
            fork="deepcopy",
        )
        pooled = campaign.run(
            scenarios, include_baseline=False, share_prefixes=True, requests=12,
            parallelism="processes:2",
        )
        assert _campaign_observables(shared) == reference
        assert _campaign_observables(legacy) == reference
        assert _campaign_observables(pooled) == reference

    def test_pooled_shared_exploration_identical_and_resumable(self):
        target = MiniGitTarget()
        controller = LFIController(target)
        analysis = controller.analyze_target()
        points = controller.fault_space(analysis=analysis, include_checked=True)

        def explore(parallelism, share, store=None, max_runs=None):
            engine = ExplorationEngine(
                target, store=store if store is not None else ResultStore(),
                seed=11, workload="status", parallelism=parallelism,
                share_prefixes=share,
            )
            return engine.explore(points, max_runs=max_runs)

        reference = explore(None, False)

        def observables(report):
            return [
                (o.point.key, o.outcome.kind, o.outcome.detail, o.injections,
                 o.fingerprint, o.run_seed)
                for o in report.outcomes
            ]

        pooled = explore("threads:2", True)
        assert observables(pooled) == observables(reference)
        # Interrupted pooled-shared exploration resumes seamlessly (group
        # checkpoints are path-independent).
        store = ResultStore()
        partial_report = explore("threads:2", True, store=store, max_runs=7)
        assert partial_report.pending > 0
        resumed = explore(None, False, store=store)
        assert observables(resumed) == observables(reference)
        assert resumed.resumed >= 7


# ----------------------------------------------------------------------
# prefix trees + errno-blind suffix replication
# ----------------------------------------------------------------------
class TestPrefixTrees:
    def test_tree_campaign_identical_without_plain_fallback(self, monkeypatch):
        target = MiniGitTarget()
        scenarios = _call_count_variants()
        campaign = Campaign(target, workload="default-tests")
        plain = campaign.run(
            scenarios, seed=7, include_baseline=False, share_prefixes=False
        )

        fallbacks = []
        original = MiniGitTarget.run

        def counting_run(self, request):
            fallbacks.append(request)
            return original(self, request)

        monkeypatch.setattr(MiniGitTarget, "run", counting_run)
        shared = campaign.run(
            scenarios, seed=7, include_baseline=False, share_prefixes=True
        )
        assert _campaign_observables(shared) == _campaign_observables(plain)
        # Every member ran via probe/resume/replication — the tree never
        # degraded to the plain per-scenario path.
        assert fallbacks == []

    def test_tree_campaign_identical_on_reference_engine(self):
        target = MiniGitTarget()
        scenarios = _call_count_variants(counts=(1, 3))
        campaign = Campaign(target, workload="status")
        plain = campaign.run(
            scenarios, include_baseline=False, share_prefixes=False,
            engine="reference",
        )
        shared = campaign.run(
            scenarios, include_baseline=False, share_prefixes=True,
            engine="reference",
        )
        assert _campaign_observables(shared) == _campaign_observables(plain)

    def test_errno_blind_family_collapses_onto_one_suffix(self):
        import repro.targets.base as base

        target = MiniGitTarget()
        # mini_git never reads errno after a faulted read, so the three
        # errno variants are suffix replicas of one probe run.
        scenarios = _call_count_variants(
            counts=(1,), errnos=("EIO", "EINTR", "EAGAIN")
        )
        executions = {"n": 0}
        original = base.CompiledTarget.execute_plan

        def counting(self, *args, **kwargs):
            executions["n"] += 1
            return original(self, *args, **kwargs)

        base.CompiledTarget.execute_plan = counting
        try:
            # Snapshots pinned on: suffix replication needs the mid-run
            # capture machinery, which the REPRO_SNAPSHOTS=0 oracle leg
            # would otherwise disable.
            results = run_scenarios_shared(
                target, "default-tests", scenarios,
                options={"snapshots": True},
            )
        finally:
            base.CompiledTarget.execute_plan = original
        assert executions["n"] == 1  # the probe; siblings replicated
        assert [r.injections for r in results] == [1, 1, 1]
        errnos = [r.log.records[-1].fault.errno for r in results]
        assert len(set(errnos)) == 3  # each replica carries its own errno

    def test_errno_reading_target_keeps_distinct_suffixes(self):
        # mini_bind branches on errno (ENOENT handling), so errno variants
        # must genuinely run — and still match the plain path bit for bit.
        target = MiniBindTarget()
        scenarios = _fault_space_scenarios(target)
        open_family = [
            s for s in scenarios
            if s.metadata.get("target_function") == "open"
        ][:6]
        assert len(open_family) >= 2
        workload = target.workloads()[0]
        campaign = Campaign(target, workload=workload)
        plain = campaign.run(
            open_family, include_baseline=False, share_prefixes=False
        )
        shared = campaign.run(
            open_family, include_baseline=False, share_prefixes=True
        )
        assert _campaign_observables(shared) == _campaign_observables(plain)

    def test_errno_address_taken_flag(self):
        from repro.minicc import compile_source

        aliased = compile_source(
            "int main() { int p; p = &errno; if (*p == 2) { return 1; } return 0; }",
            name="alias-flag-probe",
        )
        assert aliased.errno_address_taken is True
        plain = compile_source(
            "int main() { if (errno == 4) { return 1; } return 0; }",
            name="plain-flag-probe",
        )
        assert plain.errno_address_taken is False
        # The shipped targets never take errno's address, so blind
        # replication stays live for them.
        assert MiniGitTarget().binary().errno_address_taken is False

    def test_errno_alias_disables_blind_replication(self):
        # A suffix that branches on errno *through a pointer* is invisible
        # to the compiled engine's errno-read counter; the image-level
        # alias flag must veto blind replication so errno siblings still
        # genuinely run — and match the plain path bit for bit.
        from repro.core.controller.target import WorkloadRequest
        from repro.oslib.os_model import SimOS
        from repro.targets.base import CompiledTarget, WorkloadStep

        class ErrnoAliasTarget(CompiledTarget):
            name = "errno-alias-target"

            def source(self):
                return """
                int main() {
                    int fd;
                    int n;
                    int p;
                    int buf[8];
                    fd = open("/data.txt", 0);
                    n = read(fd, buf, 4);
                    if (n < 0) {
                        p = &errno;
                        if (*p == 5) { return 5; }
                        return 7;
                    }
                    close(fd);
                    return 0;
                }
                """

            def make_os(self):
                os = SimOS(self.name)
                os.fs.add_file("/data.txt", b"abcd")
                return os

            def workload_plan(self, workload):
                return [WorkloadStep()]

            def workloads(self):
                return ["default"]

        target = ErrnoAliasTarget()
        assert target.binary().errno_address_taken is True
        scenarios = _call_count_variants(
            function="read", counts=(1,), errnos=("EIO", "EINTR")
        )
        plain = [
            target.run(WorkloadRequest(workload="default", scenario=s))
            for s in scenarios
        ]
        shared = run_scenarios_shared(target, "default", scenarios)
        assert [_result_observables(r) for r in shared] == [
            _result_observables(r) for r in plain
        ]
        # EIO (5) takes the == 5 branch, EINTR (4) the other: a wrongly
        # blind replica would have collapsed both onto one exit code.
        assert [r.outcome.exit_code for r in shared] == [5, 7]

    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_errno_read_counter_counts_program_reads(self, engine):
        from repro.minicc import compile_source
        from repro.vm.machine import Machine

        source = """
        int main() {
            int fd;
            int seen;
            seen = 0;
            fd = open("/does/not/exist", 0);
            if (fd < 0) {
                seen = errno;
                if (errno == 2) {
                    return seen;
                }
            }
            return 0;
        }
        """
        binary = compile_source(source, name=f"errno-probe-{engine}")
        machine = Machine(binary, engine=engine)
        status = machine.run()
        assert status.code == 2  # ENOENT observed by the program
        assert machine.libc.errno_reads == 2  # exactly the two errno reads
