"""Tests for the campaign execution backends, the artifact cache, and the
injection-gate / controller fixes that shipped with them."""

import os

import pytest

from repro.core.controller.campaign import TestCampaign as InjectionCampaign
from repro.core.controller.controller import LFIController
from repro.core.controller.executor import (
    ExecutionTask,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    derive_run_seed,
    resolve_backend,
)
from repro.core.controller.monitor import OutcomeKind, RunResult, classify_exit_status
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.core.injection.gate import (
    _GATE_INTERNAL_FILES,
    _python_stack_provider,
    LibraryCallGate,
)
from repro.core.injection.log import InjectionLog
from repro.core.injection.runtime import InjectionRuntime
from repro.core.profiler.cache import (
    artifact_cache_stats,
    cached_all_library_binaries,
    cached_library_binary,
    cached_library_profile,
    cached_merged_profile,
    clear_artifact_cache,
)
from repro.core.scenario.builder import ScenarioBuilder
from repro.minicc import compile_source
from repro.oslib.os_model import SimOS
from repro.vm.machine import Machine

TOY_SOURCE = """
int main() {
    int p;
    int fd;
    fd = open("/cfg", 0);
    if (fd < 0) { return 1; }
    p = malloc(16);
    *p = 7;
    close(fd);
    return 0;
}
"""

_TOY_BINARY = None


def _toy_binary():
    global _TOY_BINARY
    if _TOY_BINARY is None:
        _TOY_BINARY = compile_source(TOY_SOURCE, name="toy")
    return _TOY_BINARY


class ToyTarget:
    """Module-level (hence picklable) compiled target for backend tests."""

    name = "toy"

    def binary(self):
        return _toy_binary()

    def workloads(self):
        return ["default", "repeat"]

    def run(self, request: WorkloadRequest) -> RunResult:
        os_state = SimOS("toy")
        os_state.fs.add_file("/cfg", b"x")
        gate = make_gate(request.scenario, observe_only=request.observe_only,
                         run_seed=request.options.get("run_seed"))
        machine = Machine(self.binary(), os=os_state, gate=gate)
        status = machine.run()
        result = RunResult(outcome=classify_exit_status(status), log=gate.log)
        result.stats["run_seed"] = request.options.get("run_seed")
        return result


def _scenarios():
    return [
        ScenarioBuilder("fail-malloc").trigger("once", "SingletonTrigger")
        .inject("malloc", ["once"], return_value=0, errno="ENOMEM").build(),
        ScenarioBuilder("fail-open").trigger("once", "SingletonTrigger")
        .inject("open", ["once"], return_value=-1, errno="ENOENT").build(),
        ScenarioBuilder("fail-close").trigger("once", "SingletonTrigger")
        .inject("close", ["once"], return_value=-1, errno="EIO").build(),
    ]


def _campaign_signature(campaign):
    return [
        (
            outcome.scenario.name,
            outcome.workload,
            outcome.outcome.kind,
            outcome.outcome.detail,
            outcome.result.injections,
        )
        for outcome in campaign.outcomes
    ]


class TestBackends:
    def test_resolve_backend_specs(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend(1), SerialBackend)
        assert isinstance(resolve_backend(False), SerialBackend)
        # The targets are CPU-bound pure Python: integer counts (and True)
        # select the process pool, the backend that scales with cores.
        assert isinstance(resolve_backend(4), ProcessPoolBackend)
        assert resolve_backend(4).workers == 4
        assert isinstance(resolve_backend(True), ProcessPoolBackend)
        assert isinstance(resolve_backend("threads"), ThreadPoolBackend)
        assert resolve_backend("threads:3").workers == 3
        assert isinstance(resolve_backend("threads:0"), SerialBackend)
        assert isinstance(resolve_backend("processes:0"), SerialBackend)
        assert isinstance(resolve_backend("processes:2"), ProcessPoolBackend)
        backend = ThreadPoolBackend(2)
        assert resolve_backend(backend) is backend
        with pytest.raises(ValueError):
            resolve_backend("gpu")
        with pytest.raises(ValueError):
            resolve_backend("threads:abc")
        with pytest.raises(ValueError):
            resolve_backend("threads:-2")
        with pytest.raises(TypeError):
            resolve_backend(3.5)

    def test_map_preserves_submission_order(self):
        with ThreadPoolBackend(4) as backend:
            results = backend.map(lambda value: value * 2, [(i,) for i in range(20)])
        assert results == [i * 2 for i in range(20)]

    def test_serial_thread_process_campaigns_identical(self):
        scenarios = _scenarios()
        target = ToyTarget()
        serial = InjectionCampaign(target).run(scenarios)
        threaded = InjectionCampaign(target, parallelism="threads:3").run(scenarios)
        with ProcessPoolBackend(2) as backend:
            processed = InjectionCampaign(target, parallelism=backend).run(scenarios)
        reference = _campaign_signature(serial)
        assert _campaign_signature(threaded) == reference
        assert _campaign_signature(processed) == reference
        assert serial.by_kind() == threaded.by_kind() == processed.by_kind()

    def test_controller_reports_identical_across_backends(self):
        def report_signature(report):
            return [
                (bug.function, bug.location, bug.kind, bug.occurrences, tuple(bug.scenarios))
                for bug in report.bugs
            ]

        serial = LFIController(ToyTarget()).test_automatically(workloads=["default"])
        threaded = LFIController(ToyTarget(), parallelism="threads:4").test_automatically(
            workloads=["default"]
        )
        assert report_signature(threaded) == report_signature(serial)
        assert serial.bugs and any(bug.function == "malloc" for bug in serial.bugs)

    def test_seed_threading_is_deterministic_and_order_free(self):
        assert derive_run_seed(None, 3) is None
        seeds = [derive_run_seed(42, index) for index in range(8)]
        assert seeds == [derive_run_seed(42, index) for index in range(8)]
        assert len(set(seeds)) == len(seeds)

        scenarios = _scenarios()
        serial = InjectionCampaign(ToyTarget()).run(scenarios, seed=42)
        threaded = InjectionCampaign(ToyTarget(), parallelism="threads:3").run(scenarios, seed=42)
        serial_seeds = [outcome.result.stats["run_seed"] for outcome in serial.outcomes]
        threaded_seeds = [outcome.result.stats["run_seed"] for outcome in threaded.outcomes]
        assert serial_seeds == threaded_seeds == seeds[: len(scenarios)]
        # No campaign seed -> requests untouched (historical behaviour).
        unseeded = InjectionCampaign(ToyTarget()).run(scenarios)
        assert all(outcome.result.stats["run_seed"] is None for outcome in unseeded.outcomes)

    def test_task_failure_propagates(self):
        class BrokenTarget:
            name = "broken"

            def workloads(self):
                return ["default"]

            def binary(self):
                return None

            def run(self, request):
                raise OSError("target harness itself broke")

        scenarios = _scenarios()[:1]
        with pytest.raises(OSError):
            InjectionCampaign(BrokenTarget()).run(scenarios, include_baseline=False)
        with pytest.raises(OSError):
            InjectionCampaign(BrokenTarget(), parallelism="threads:2").run(
                scenarios, include_baseline=False
            )


class TestStochasticSeedThreading:
    def _random_scenario(self, seed=None):
        params = {"probability": 0.5}
        if seed is not None:
            params["seed"] = seed
        return (
            ScenarioBuilder("random-close")
            .trigger_with_params("r", "RandomTrigger", params)
            .inject("close", ["r"], return_value=-1, errno="EIO")
            .build()
        )

    def test_runtime_derives_seed_for_unseeded_random_triggers(self):
        runtime = InjectionRuntime(self._random_scenario(), run_seed=5)
        trigger = runtime.trigger_instance("r")
        assert trigger._seed is not None
        # Deterministic in (run seed, trigger id): a second runtime with the
        # same run seed derives the same trigger seed.
        again = InjectionRuntime(self._random_scenario(), run_seed=5)
        assert again.trigger_instance("r")._seed == trigger._seed
        # An explicit scenario seed always wins over the derived one.
        explicit = InjectionRuntime(self._random_scenario(seed=9), run_seed=5)
        assert explicit.trigger_instance("r")._seed == 9
        # Without a run seed, unseeded triggers stay unseeded (historical).
        unseeded = InjectionRuntime(self._random_scenario())
        assert unseeded.trigger_instance("r")._seed is None

    def test_seeded_campaigns_reproducible_and_backend_independent(self):
        scenarios = [self._random_scenario() for _ in range(6)]
        first = InjectionCampaign(ToyTarget()).run(scenarios, seed=7, include_baseline=False)
        second = InjectionCampaign(ToyTarget()).run(scenarios, seed=7, include_baseline=False)
        threaded = InjectionCampaign(ToyTarget(), parallelism="threads:3").run(
            scenarios, seed=7, include_baseline=False
        )
        assert _campaign_signature(first) == _campaign_signature(second)
        assert _campaign_signature(threaded) == _campaign_signature(first)


class TestCrossWorkloadDedup:
    def test_occurrences_merge_without_duplicate_candidates(self):
        report = LFIController(ToyTarget()).test_automatically(
            workloads=["default", "repeat"]
        )
        malloc_bugs = [bug for bug in report.bugs if bug.function == "malloc"]
        assert len(malloc_bugs) == 1
        bug = malloc_bugs[0]
        # Both workloads exposed the same (function, location, kind) bug:
        # occurrences merged, scenario list extended, candidate not repeated.
        assert bug.occurrences == 2
        assert len(bug.scenarios) == 2
        keys = [(candidate.function, candidate.location, candidate.kind)
                for candidate in report.bugs]
        assert len(keys) == len(set(keys))
        assert set(report.campaigns) == {"default", "repeat"}


class TestArtifactCache:
    def setup_method(self):
        clear_artifact_cache()

    def teardown_method(self):
        clear_artifact_cache()

    def test_binaries_and_profiles_hit_after_first_build(self):
        first = cached_library_binary("libc")
        stats = artifact_cache_stats()
        assert stats.binary_misses == 1 and stats.binary_hits == 0
        assert cached_library_binary("libc") is first
        assert artifact_cache_stats().binary_hits == 1

        profile = cached_library_profile("libc")
        assert cached_library_profile("libc") is profile
        merged = cached_merged_profile()
        assert cached_merged_profile() is merged
        assert "malloc" in merged and "read" in merged

    def test_all_binaries_share_cached_images(self):
        images = cached_all_library_binaries()
        assert "libc.so" in images
        again = cached_all_library_binaries()
        assert all(again[name] is images[name] for name in images)

    def test_controllers_share_one_profile(self):
        clear_artifact_cache()
        first = LFIController(ToyTarget()).profile_libraries()
        misses_after_first = artifact_cache_stats().misses
        second = LFIController(ToyTarget()).profile_libraries()
        assert second is first
        assert artifact_cache_stats().misses == misses_after_first

    def test_explicit_profile_bypasses_cache(self):
        sentinel = cached_merged_profile()
        controller = LFIController(ToyTarget(), profile=sentinel)
        assert controller.profile_libraries() is sentinel

    def test_controller_reuses_single_analyzer(self):
        controller = LFIController(ToyTarget())
        analysis = controller.analyze_target()
        analyzer = controller._analyzer
        assert analyzer is not None
        controller.generate_scenarios(analysis)
        controller.analyze_target()
        assert controller._analyzer is analyzer


class TestGateFixes:
    def _observe_gate(self, nth=1):
        scenario = (
            ScenarioBuilder("observe")
            .trigger("count", "CallCountTrigger", nth=nth)
            .inject("read", ["count"], return_value=-1, errno="EIO")
            .build()
        )
        log = InjectionLog(record_passthrough=True)
        return LibraryCallGate(
            runtime=InjectionRuntime(scenario), log=log, observe_only=True
        )

    def test_observe_only_records_fired_triggers(self):
        from repro.oslib.libc import LibcResult

        gate = self._observe_gate(nth=2)
        invoke = lambda: LibcResult(value=100)
        gate.call("read", (), invoke)
        gate.call("read", (), invoke)
        records = gate.log.records
        assert [record.injected for record in records] == [False, False]
        # First call: trigger did not fire.  Second call: trigger fired but
        # observe-only suppressed the injection — the activation must still
        # be countable from the log (§7.4 methodology).
        assert records[0].trigger_ids == []
        assert records[1].trigger_ids == ["count"]
        assert gate.observed_injections == 1
        assert gate.injected_calls == 0
        gate.reset_counters()
        assert gate.observed_injections == 0

    def test_observe_association_records_fired_triggers(self):
        from repro.oslib.libc import LibcResult

        # ``observe`` associations (injects=False) must also surface their
        # fired triggers to the log — not just observe-only gates.
        scenario = (
            ScenarioBuilder("observe-assoc")
            .trigger("count", "CallCountTrigger", nth=1)
            .observe("read", ["count"])
            .build()
        )
        log = InjectionLog(record_passthrough=True)
        gate = LibraryCallGate(runtime=InjectionRuntime(scenario), log=log)
        gate.call("read", (), lambda: LibcResult(value=100))
        assert log.records[0].injected is False
        assert log.records[0].trigger_ids == ["count"]

    def test_stack_provider_keeps_app_frames_with_colliding_basenames(self, tmp_path):
        # An *application* module that happens to be called runtime.py must
        # stay visible to stack triggers; only the gate's own files are
        # filtered (by full path, not basename).
        app_file = tmp_path / "runtime.py"
        source = (
            "def application_entry(capture):\n"
            "    return capture()\n"
        )
        app_file.write_text(source)
        code = compile(source, str(app_file), "exec")
        namespace = {}
        exec(code, namespace)

        provider = _python_stack_provider(_GATE_INTERNAL_FILES)
        frames = namespace["application_entry"](provider)
        assert any(
            frame.module == "runtime" and frame.function == "application_entry"
            for frame in frames
        )

    def test_stack_provider_still_hides_gate_internals(self):
        from repro.oslib.libc import LibcResult

        scenario = (
            ScenarioBuilder("stack")
            .trigger_with_params("cs", "CallStackTrigger", {"frame": {"function": "caller"}})
            .inject("read", ["cs"], return_value=-1, errno="EIO")
            .build()
        )
        gate = LibraryCallGate(runtime=InjectionRuntime(scenario))

        def caller():
            return gate.call("read", (), lambda: LibcResult(value=100))

        result = caller()
        assert result.injected
        record = gate.log.injections()[0]
        internal_basenames = {os.path.basename(path) for path in _GATE_INTERNAL_FILES}
        assert record.stack, "stack should have been captured"
        assert all(frame.file not in internal_basenames for frame in record.stack)


class TestProcessPoolArtifactInheritance:
    def test_forked_workers_return_equivalent_results(self):
        # The pool is created after the binary cache is warm; fork workers
        # inherit it, and results cross the process boundary intact.
        scenarios = _scenarios()
        serial = InjectionCampaign(ToyTarget()).run(scenarios, include_baseline=False)
        with ProcessPoolBackend(2) as backend:
            forked = InjectionCampaign(ToyTarget(), parallelism=backend).run(
                scenarios, include_baseline=False
            )
        assert _campaign_signature(forked) == _campaign_signature(serial)
