"""Tests for the campaign fabric (PR 7 tentpole) and its durability fixes.

Covers the acceptance criteria end to end: a multi-worker campaign over
the wire protocol is bit-identical to a serial ``ExplorationEngine``
run — including after a worker dies mid-campaign and after the
coordinator itself is killed and restarted (resume from the result store
re-runs nothing already checkpointed) — plus the satellite bugfixes:
interior store corruption raises instead of being skipped, records are
flushed/fsynced per append, and the central controller's counters are
thread-safe.
"""

import json
import os
import socket
import threading
import time

import pytest

from repro.core.exploration.store import ResultStore, StoreCorruptError, StoredResult
from repro.distributed.campaignd import CampaignCoordinator
from repro.distributed.client import CampaignClient, CampaignServerError
from repro.distributed.central_controller import CentralController, Policy
from repro.distributed.protocol import (
    ConnectionClosed,
    MessageStream,
    MessageTooLarge,
    ProtocolError,
    connect,
)
from repro.distributed.spec import CampaignSpec, build_engine, spec_fingerprint
from repro.distributed.worker import CampaignWorker
from repro.targets import register_target, unregister_target
from repro.targets.mini_git import MiniGitTarget


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _stored(key, outcome="normal", index=0, run_seed=None):
    return StoredResult(
        key=key, index=index, scenario=f"s-{key}", function="read",
        return_value=-1, errno=5, category="unchecked", workload="w",
        outcome=outcome, run_seed=run_seed,
    )


def _signature_from_outcomes(report):
    return [
        (o.point.key, o.outcome.kind.value, o.outcome.detail, o.outcome.exit_code,
         o.outcome.location, o.injections, o.fingerprint, o.run_seed)
        for o in report.outcomes
    ]


def _signature_from_records(records):
    return [
        (r["key"].split("|", 1)[1], r["outcome"], r["detail"], r["exit_code"],
         r["location"], r["injections"], r["fingerprint"], r["run_seed"])
        for r in records
    ]


class _Fabric:
    """One coordinator plus helpers, torn down reliably."""

    def __init__(self, **kwargs):
        kwargs.setdefault("port", 0)
        self.coordinator = CampaignCoordinator(**kwargs)
        self.address = self.coordinator.start()
        self.workers = []
        self.threads = []
        self.clients = []

    def client(self) -> CampaignClient:
        client = CampaignClient(self.address)
        self.clients.append(client)
        return client

    def worker(self, **kwargs) -> CampaignWorker:
        worker = CampaignWorker(self.address, **kwargs)
        self.workers.append(worker)
        return worker

    def spawn(self, worker: CampaignWorker) -> threading.Thread:
        thread = threading.Thread(target=worker.run_forever, daemon=True)
        thread.start()
        self.threads.append(thread)
        return thread

    def close(self):
        for worker in self.workers:
            worker.stop()
        for client in self.clients:
            client.close()
        self.coordinator.stop()
        for worker in self.workers:
            worker.close()
        for thread in self.threads:
            thread.join(timeout=5)


@pytest.fixture
def fabric_factory():
    fabrics = []

    def make(**kwargs):
        fabric = _Fabric(**kwargs)
        fabrics.append(fabric)
        return fabric

    yield make
    for fabric in fabrics:
        fabric.close()


GIT_SPEC_KWARGS = dict(
    target="mini_git", workload="status", seed=7, functions=["close", "malloc"],
)


def _serial_signature(spec_kwargs=GIT_SPEC_KWARGS):
    spec = CampaignSpec(**spec_kwargs)
    engine, points = build_engine(spec, store=ResultStore())
    return _signature_from_outcomes(engine.explore(points))


# ----------------------------------------------------------------------
# satellite: store corruption semantics
# ----------------------------------------------------------------------
class TestStoreCorruption:
    def _write_lines(self, path, lines, final_newline=True):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("\n" if final_newline else ""))

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        good = json.dumps(_stored("a").to_dict())
        self._write_lines(path, [good, '{"key": "b", "outco', json.dumps(_stored("c").to_dict())])
        with pytest.raises(StoreCorruptError) as excinfo:
            ResultStore(str(path))
        assert excinfo.value.line_number == 2
        assert "torn" not in excinfo.value.reason

    def test_interior_non_object_line_raises(self, tmp_path):
        path = tmp_path / "store.jsonl"
        self._write_lines(path, ['[1, 2, 3]', json.dumps(_stored("a").to_dict())])
        with pytest.raises(StoreCorruptError):
            ResultStore(str(path))

    def test_torn_final_line_is_tolerated_and_repairable(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(str(path))
        store.record(_stored("a"))
        store.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "b", "outcome": "cra')  # crash mid-append
        reloaded = ResultStore(str(path))
        assert reloaded.completed_keys() == {"a"}
        assert reloaded.has_torn_tail
        assert reloaded.repair() is True
        assert not reloaded.has_torn_tail
        assert reloaded.repair() is False
        # The partial bytes are gone from disk.
        content = path.read_text(encoding="utf-8")
        assert content.endswith("\n") and '"b"' not in content
        assert ResultStore(str(path)).completed_keys() == {"a"}

    def test_append_after_torn_load_truncates_first(self, tmp_path):
        """A resumed store must never concatenate a new record onto the
        leftover partial line (that would turn a benign torn tail into
        interior corruption on the *next* load)."""
        path = tmp_path / "store.jsonl"
        ResultStore(str(path)).record(_stored("a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "b", "out')
        resumed = ResultStore(str(path))
        resumed.record(_stored("c", index=2))
        resumed.close()
        reloaded = ResultStore(str(path))  # would raise if concatenated
        assert reloaded.completed_keys() == {"a", "c"}

    def test_crash_simulated_partial_write_resumes_cleanly(self, tmp_path):
        """Simulate a hard kill mid-append by truncating the file at an
        arbitrary byte inside the last record."""
        path = tmp_path / "store.jsonl"
        store = ResultStore(str(path))
        for index, key in enumerate("abcd"):
            store.record(_stored(key, index=index))
        store.close()
        full = path.read_bytes()
        path.write_bytes(full[: len(full) - 17])  # tear the last record
        reloaded = ResultStore(str(path))
        assert reloaded.completed_keys() == {"a", "b", "c"}
        assert reloaded.has_torn_tail

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "store.jsonl"
        good = json.dumps(_stored("a").to_dict())
        self._write_lines(path, ["", good, "", ""])
        assert ResultStore(str(path)).completed_keys() == {"a"}


class TestStoreDurability:
    def test_records_are_flushed_per_append(self, tmp_path):
        """A second reader (the coordinator's status path, tail -f) must
        see each record immediately, while the writer stays open."""
        path = tmp_path / "store.jsonl"
        store = ResultStore(str(path), durable=False)
        store.record(_stored("a"))
        assert ResultStore(str(path)).completed_keys() == {"a"}
        store.record(_stored("b", index=1))
        assert ResultStore(str(path)).completed_keys() == {"a", "b"}
        store.close()

    def test_durable_knob_controls_fsync(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd)))
        durable = ResultStore(str(tmp_path / "durable.jsonl"), durable=True)
        durable.record(_stored("a"))
        durable.record(_stored("b", index=1))
        assert len(calls) == 2
        relaxed = ResultStore(str(tmp_path / "relaxed.jsonl"), durable=False)
        relaxed.record(_stored("a"))
        assert len(calls) == 2  # unchanged: no fsync without the knob
        durable.close()
        relaxed.close()

    def test_store_is_reusable_after_close(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(str(path)) as store:
            store.record(_stored("a"))
        store.record(_stored("b", index=1))  # reopens transparently
        store.close()
        assert ResultStore(str(path)).completed_keys() == {"a", "b"}


# ----------------------------------------------------------------------
# satellite: central controller thread safety
# ----------------------------------------------------------------------
class _YieldingPolicy(Policy):
    """Always injects, yielding the GIL mid-decision to force interleaving."""

    def should_inject(self, node, function, args, ctx):
        time.sleep(0)
        return True


class TestCentralControllerLocking:
    def test_concurrent_consultations_count_exactly(self):
        controller = CentralController(_YieldingPolicy())
        controller.history_limit = 10_000_000
        threads_n, per_thread = 8, 400
        barrier = threading.Barrier(threads_n)

        def drive(node):
            barrier.wait()
            for _ in range(per_thread):
                controller.should_inject(node, "sendto", (), None)

        threads = [
            threading.Thread(target=drive, args=(f"n{i}",)) for i in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = threads_n * per_thread
        assert controller.consultations == total
        assert sum(controller.consultations_by_node.values()) == total
        assert sum(controller.injections_by_node.values()) == total
        assert all(
            count == per_thread for count in controller.injections_by_node.values()
        )
        assert len(controller.history) == total

    def test_concurrent_reset_leaves_consistent_state(self):
        controller = CentralController(_YieldingPolicy())
        stop = threading.Event()

        def consult():
            while not stop.is_set():
                controller.should_inject("n", "sendto", (), None)

        thread = threading.Thread(target=consult)
        thread.start()
        for _ in range(50):
            controller.reset()
        stop.set()
        thread.join()
        controller.reset()
        assert controller.consultations == 0
        assert controller.injections_by_node == {}


# ----------------------------------------------------------------------
# satellite: wire-protocol framing edge cases
# ----------------------------------------------------------------------
class TestProtocolFraming:
    def _pair(self, max_message_bytes=1024):
        left, right = socket.socketpair()
        return (
            MessageStream(left, max_message_bytes=max_message_bytes),
            MessageStream(right, max_message_bytes=max_message_bytes),
        )

    def test_round_trip(self):
        a, b = self._pair()
        a.send({"type": "ping", "n": 1})
        assert b.recv() == {"type": "ping", "n": 1}
        b.send({"type": "pong"})
        assert a.recv() == {"type": "pong"}
        a.close()
        b.close()

    def test_oversized_outgoing_message_is_rejected_locally(self):
        a, b = self._pair(max_message_bytes=128)
        with pytest.raises(MessageTooLarge):
            a.send({"type": "submit", "blob": "x" * 1024})
        a.close()
        b.close()

    def test_oversized_incoming_line_is_rejected(self):
        a, b = self._pair(max_message_bytes=256)
        raw = b'{"type": "x", "blob": "' + b"y" * 2048 + b'"}\n'
        a._sock.sendall(raw)  # bypass the sender-side cap
        with pytest.raises(MessageTooLarge):
            b.recv()
        a.close()
        b.close()

    def test_garbage_line_raises_protocol_error(self):
        a, b = self._pair()
        a._sock.sendall(b"this is not json\n")
        with pytest.raises(ProtocolError):
            b.recv()
        a.close()
        b.close()

    def test_message_without_type_raises(self):
        a, b = self._pair()
        a._sock.sendall(b'{"no_type": 1}\n')
        with pytest.raises(ProtocolError):
            b.recv()
        a.close()
        b.close()

    def test_half_closed_socket_raises_connection_closed(self):
        a, b = self._pair()
        a.send({"type": "ping"})
        a._sock.shutdown(socket.SHUT_WR)  # half-close: we still could read
        assert b.recv() == {"type": "ping"}
        with pytest.raises(ConnectionClosed):
            b.recv()
        a.close()
        b.close()

    def test_blank_lines_are_skipped(self):
        a, b = self._pair()
        a._sock.sendall(b"\n\n" + b'{"type": "ping"}\n' + b"\n")
        assert b.recv() == {"type": "ping"}
        a.close()
        b.close()

    def test_split_and_coalesced_frames(self):
        a, b = self._pair()
        payload = b'{"type": "one"}\n{"type": "two"}\n'
        a._sock.sendall(payload[:7])
        a._sock.sendall(payload[7:])
        assert b.recv()["type"] == "one"
        assert b.recv()["type"] == "two"
        a.close()
        b.close()


class TestServerFraming:
    """The same edge cases through a real coordinator."""

    def test_server_reports_oversized_then_closes(self, fabric_factory):
        fabric = fabric_factory(max_message_bytes=512)
        stream = connect(fabric.address)
        stream._sock.sendall(b'{"pad": "' + b"x" * 4096 + b'"}\n')
        reply = stream.recv()
        assert reply["type"] == "error"
        with pytest.raises(ConnectionClosed):
            stream.recv()
        stream.close()

    def test_server_survives_garbage_and_keeps_serving(self, fabric_factory):
        fabric = fabric_factory()
        stream = connect(fabric.address)
        stream._sock.sendall(b"garbage garbage\n")
        assert stream.recv()["type"] == "error"
        stream.send({"type": "ping"})
        assert stream.recv()["type"] == "pong"
        stream.close()

    def test_server_handles_half_close_gracefully(self, fabric_factory):
        fabric = fabric_factory()
        stream = connect(fabric.address)
        stream.send({"type": "ping"})
        assert stream.recv()["type"] == "pong"
        stream._sock.shutdown(socket.SHUT_WR)
        with pytest.raises(ConnectionClosed):
            stream.recv()  # server closed its side in response
        stream.close()
        # The coordinator still serves fresh connections.
        with fabric.client() as client:
            assert client.ping()["type"] == "pong"

    def test_unknown_message_type_is_an_error_not_a_drop(self, fabric_factory):
        fabric = fabric_factory()
        stream = connect(fabric.address)
        stream.send({"type": "frobnicate"})
        assert stream.recv()["type"] == "error"
        stream.send({"type": "ping"})
        assert stream.recv()["type"] == "pong"
        stream.close()

    def test_interleaved_clients_get_consistent_streams(self, fabric_factory):
        """Two clients on one coordinator: each connection's replies stay
        internally ordered while the other hammers the server."""
        fabric = fabric_factory()
        errors = []

        def hammer():
            try:
                with CampaignClient(fabric.address) as client:
                    for _ in range(50):
                        assert client.ping()["type"] == "pong"
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


# ----------------------------------------------------------------------
# campaign spec
# ----------------------------------------------------------------------
class TestCampaignSpec:
    def test_round_trip_and_fingerprint_stability(self):
        spec = CampaignSpec(**GIT_SPEC_KWARGS)
        clone = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert spec_fingerprint(clone) == spec_fingerprint(spec)
        assert spec_fingerprint(CampaignSpec(target="mini_git", seed=8)) != (
            spec_fingerprint(CampaignSpec(target="mini_git", seed=7))
        )

    def test_rejects_unknown_fields_and_missing_target(self):
        with pytest.raises(ValueError):
            CampaignSpec.from_dict({"target": "mini_git", "bogus": 1})
        with pytest.raises(ValueError):
            CampaignSpec.from_dict({"workload": "status"})
        with pytest.raises(ValueError):
            CampaignSpec.from_dict("mini_git")


# ----------------------------------------------------------------------
# the fabric end to end
# ----------------------------------------------------------------------
class TestCampaignFabric:
    def test_multi_worker_campaign_is_bit_identical_to_serial(
        self, fabric_factory, tmp_path
    ):
        fabric = fabric_factory(shard_size=3, lease_timeout=10.0)
        client = fabric.client()
        spec = CampaignSpec(store_path=str(tmp_path / "git.jsonl"), **GIT_SPEC_KWARGS)
        reply = client.submit(spec)
        assert reply["type"] == "submitted" and reply["state"] == "running"
        # Two workers drain the queue in strict alternation — deterministic
        # interleaving, so both provably execute shards of this campaign.
        w0 = fabric.worker(worker_id="w0")
        w1 = fabric.worker(worker_id="w1")
        worked = True
        while worked:
            worked = w0.run_once() | w1.run_once()
        assert w0.shards_completed and w1.shards_completed
        events = list(client.tail(reply["campaign_id"], timeout=60))
        assert events[-1]["type"] == "campaign_complete"

        status = client.status(reply["campaign_id"])
        assert status["state"] == "complete"
        assert status["completed"] == status["total"]
        assert status["executed"] == status["total"]  # every point ran exactly once
        assert set(status["workers_seen"]) == {"w0", "w1"}

        records = client.results(reply["campaign_id"])
        assert _signature_from_records(records) == _serial_signature()
        # Tail events carry the same records, in completion order.
        tailed = [e["record"] for e in events if e["type"] == "result"]
        assert {r["key"] for r in tailed} == {r["key"] for r in records}

    def test_submit_is_idempotent_per_spec(self, fabric_factory, tmp_path):
        fabric = fabric_factory()
        client = fabric.client()
        spec = CampaignSpec(store_path=str(tmp_path / "s.jsonl"), **GIT_SPEC_KWARGS)
        first = client.submit(spec)
        second = client.submit(spec)
        assert second["campaign_id"] == first["campaign_id"]
        assert second["resubmitted"] is True

    def test_unknown_target_is_a_clean_error(self, fabric_factory):
        fabric = fabric_factory()
        client = fabric.client()
        with pytest.raises(CampaignServerError, match="unknown target"):
            client.submit(CampaignSpec(target="no_such_target"))
        assert client.ping()["type"] == "pong"  # connection survives

    def test_cancel_stops_scheduling(self, fabric_factory, tmp_path):
        fabric = fabric_factory(shard_size=2)
        client = fabric.client()
        spec = CampaignSpec(store_path=str(tmp_path / "c.jsonl"), **GIT_SPEC_KWARGS)
        reply = client.submit(spec)  # no workers: nothing will run
        cancelled = client.cancel(reply["campaign_id"])
        assert cancelled["state"] == "cancelled"
        status = client.status(reply["campaign_id"])
        assert status["state"] == "cancelled" and status["queued"] == 0
        worker = fabric.worker()
        assert worker.run_once() is False  # nothing to fetch
        events = list(client.tail(reply["campaign_id"], timeout=10))
        assert events[-1]["type"] == "campaign_cancelled"

    def test_worker_killed_mid_campaign_shard_is_requeued(
        self, fabric_factory, tmp_path
    ):
        """Kill one of two workers mid-shard: its lease expires, the shard
        re-queues, and the merged results are still bit-identical."""

        class DyingWorker(CampaignWorker):
            def __init__(self, address, die_after, **kwargs):
                super().__init__(address, **kwargs)
                self._result_budget = die_after

            def _rpc(self, message):
                if message.get("type") == "result":
                    if self._result_budget <= 0:
                        # Simulated crash: drop the link mid-shard, no
                        # shard_done, no further traffic.
                        self.stop()
                        self._drop_stream()
                        raise ConnectionClosed("simulated worker crash")
                    self._result_budget -= 1
                return super()._rpc(message)

        fabric = fabric_factory(shard_size=4, lease_timeout=0.5)
        dying = DyingWorker(
            fabric.address, die_after=2, worker_id="doomed", poll_interval=0.01
        )
        fabric.workers.append(dying)
        survivor = fabric.worker(worker_id="survivor", poll_interval=0.01)
        client = fabric.client()
        spec = CampaignSpec(store_path=str(tmp_path / "kill.jsonl"), **GIT_SPEC_KWARGS)
        reply = client.submit(spec)

        fabric.spawn(dying)
        fabric.spawn(survivor)
        events = list(client.tail(reply["campaign_id"], timeout=60))
        assert events[-1]["type"] == "campaign_complete"

        status = client.status(reply["campaign_id"])
        assert status["completed"] == status["total"]
        assert "doomed" in status["workers_seen"]
        records = client.results(reply["campaign_id"])
        assert _signature_from_records(records) == _serial_signature()

    def test_stale_lease_after_expiry_reconnect(self, fabric_factory, tmp_path):
        """A worker that goes silent past the lease timeout and then comes
        back finds its lease honoured no more: results and heartbeats are
        answered stale, and the shard has been handed to someone else."""
        fabric = fabric_factory(shard_size=4, lease_timeout=0.3)
        client = fabric.client()
        spec = CampaignSpec(store_path=str(tmp_path / "stale.jsonl"), **GIT_SPEC_KWARGS)
        client.submit(spec)

        stream = connect(fabric.address)
        stream.send({"type": "hello", "role": "worker", "worker_id": "sleepy"})
        assert stream.recv()["type"] == "welcome"
        stream.send({"type": "fetch", "worker_id": "sleepy"})
        shard = stream.recv()
        assert shard["type"] == "shard"

        time.sleep(0.5)  # outlive the lease without a heartbeat

        # Another worker now gets the same (re-queued) indices.
        other = connect(fabric.address)
        other.send({"type": "hello", "role": "worker", "worker_id": "fresh"})
        assert other.recv()["type"] == "welcome"
        other.send({"type": "fetch", "worker_id": "fresh"})
        reissued = other.recv()
        assert reissued["type"] == "shard"
        assert reissued["indices"] == shard["indices"]
        assert reissued["lease_id"] != shard["lease_id"]

        # The sleeper's lease is rejected on every verb.
        stream.send({"type": "heartbeat", "lease_id": shard["lease_id"]})
        assert stream.recv()["type"] == "stale_lease"
        engine, points = build_engine(CampaignSpec(**GIT_SPEC_KWARGS))
        record = next(iter(engine.run_schedule_indices(points, shard["indices"][:1])))
        stream.send({
            "type": "result", "lease_id": shard["lease_id"],
            "record": record.to_dict(),
        })
        assert stream.recv()["type"] == "stale_lease"
        stream.send({"type": "shard_done", "lease_id": shard["lease_id"]})
        assert stream.recv()["type"] == "stale_lease"
        stream.close()
        other.close()

    def test_duplicate_result_delivery_is_idempotent(self, fabric_factory, tmp_path):
        """The same record delivered twice (retry races) stores once."""
        fabric = fabric_factory(shard_size=2, lease_timeout=30.0)
        client = fabric.client()
        spec = CampaignSpec(store_path=str(tmp_path / "dup.jsonl"), **GIT_SPEC_KWARGS)
        reply = client.submit(spec)

        stream = connect(fabric.address)
        stream.send({"type": "hello", "role": "worker", "worker_id": "dupper"})
        stream.recv()
        stream.send({"type": "fetch", "worker_id": "dupper"})
        shard = stream.recv()
        engine, points = build_engine(CampaignSpec(**GIT_SPEC_KWARGS))
        record = next(iter(engine.run_schedule_indices(points, shard["indices"][:1])))
        for _ in range(2):
            stream.send({
                "type": "result", "lease_id": shard["lease_id"],
                "record": record.to_dict(),
            })
            assert stream.recv()["type"] == "ack"
        stream.close()

        status = client.status(reply["campaign_id"])
        assert status["completed"] == status["resumed_at_submit"] + 1
        store = ResultStore(str(tmp_path / "dup.jsonl"))
        assert len([k for k in store.completed_keys() if k == record.key]) == 1


class TestCoordinatorRestart:
    def test_resume_after_coordinator_and_worker_restart(self, tmp_path):
        """The acceptance criterion: kill the coordinator (and the worker)
        mid-campaign, restart both, resubmit the same spec — the campaign
        resumes from the store, re-runs nothing already checkpointed, and
        the merged results are bit-identical to a serial run."""
        runs = {"count": 0}

        class CountingGitTarget:
            def __init__(self):
                self._inner = MiniGitTarget()
                self.name = "counting_git"

            def binary(self):
                return self._inner.binary()

            def workloads(self):
                return self._inner.workloads()

            def run(self, request):
                runs["count"] += 1
                return self._inner.run(request)

        register_target("counting_git", CountingGitTarget)
        try:
            store_path = str(tmp_path / "restart.jsonl")
            spec = CampaignSpec(
                target="counting_git", workload="status", seed=11,
                store_path=store_path,
            )
            total = len(build_engine(spec)[1])
            assert total > 8  # the test needs a partial first phase

            # Phase 1: run exactly two shards, then everything dies.
            coordinator = CampaignCoordinator(port=0, shard_size=4)
            address = coordinator.start()
            with CampaignClient(address) as client:
                first = client.submit(spec)
                assert first["resumed"] == 0
            worker = CampaignWorker(address, worker_id="w-phase1")
            assert worker.run_once() and worker.run_once()
            worker.close()
            coordinator.stop()  # hard stop: no draining, no farewell

            checkpointed = len(ResultStore(store_path))
            assert checkpointed == 8 == runs["count"]

            # Phase 2: a new coordinator on the same store resumes.
            coordinator = CampaignCoordinator(port=0, shard_size=4)
            address = coordinator.start()
            try:
                with CampaignClient(address) as client:
                    second = client.submit(spec)
                    assert second["resumed"] == checkpointed
                    worker = CampaignWorker(address, worker_id="w-phase2")
                    while worker.run_once():
                        pass
                    worker.close()
                    status = client.status(second["campaign_id"])
                    assert status["state"] == "complete"
                    assert status["executed"] == total - checkpointed
                    records = client.results(second["campaign_id"])
            finally:
                coordinator.stop()

            # Nothing already checkpointed re-ran.
            assert runs["count"] == total
            # And the merged records are bit-identical to one serial run.
            oracle_spec = CampaignSpec(
                target="counting_git", workload="status", seed=11,
            )
            engine, points = build_engine(oracle_spec, store=ResultStore())
            serial = _signature_from_outcomes(engine.explore(points))
            assert _signature_from_records(records) == serial
        finally:
            unregister_target("counting_git")

    def test_resubmit_against_mismatched_seed_store_is_rejected(
        self, fabric_factory, tmp_path
    ):
        store_path = str(tmp_path / "seeded.jsonl")
        fabric = fabric_factory()
        client = fabric.client()
        spec = dict(GIT_SPEC_KWARGS)
        reply = client.submit(CampaignSpec(store_path=store_path, **spec))
        worker = fabric.worker()
        while worker.run_once():
            pass
        assert client.status(reply["campaign_id"])["state"] == "complete"
        spec["seed"] = 99  # same store, different schedule seeds
        with pytest.raises(CampaignServerError, match="seed mismatch"):
            client.submit(CampaignSpec(store_path=store_path, **spec))


# ----------------------------------------------------------------------
# engine shard API
# ----------------------------------------------------------------------
class TestRunScheduleIndices:
    def test_shard_records_match_explore_checkpoints(self, tmp_path):
        spec = CampaignSpec(**GIT_SPEC_KWARGS)
        engine, points = build_engine(
            spec, store=ResultStore(str(tmp_path / "oracle.jsonl"))
        )
        report = engine.explore(points)
        by_key = {r.key: r for r in engine.store.results()}

        shard_engine, shard_points = build_engine(spec)
        indices = list(range(len(report.outcomes)))
        records = list(shard_engine.run_schedule_indices(shard_points, indices))
        assert len(records) == len(report.outcomes)
        for record in records:
            assert record.to_dict() == by_key[record.key].to_dict()

    def test_out_of_range_index_raises(self):
        engine, points = build_engine(CampaignSpec(**GIT_SPEC_KWARGS))
        with pytest.raises(IndexError):
            list(engine.run_schedule_indices(points, [10_000]))


# ----------------------------------------------------------------------
# the CLI mains, in process
# ----------------------------------------------------------------------
class TestCampaignCLI:
    def test_submit_wait_status_results_roundtrip(
        self, fabric_factory, tmp_path, capsys
    ):
        from repro.cli import campaign as cli

        fabric = fabric_factory(shard_size=4)
        fabric.spawn(fabric.worker(worker_id="cli-w"))
        host, port = fabric.address
        base = ["--host", host, "--port", str(port)]

        rc = cli.main(base + [
            "submit", "--target", "mini_git", "--workload", "status",
            "--seed", "7", "--functions", "close,malloc",
            "--store", str(tmp_path / "cli.jsonl"), "--wait",
        ])
        assert rc == 0
        submitted, final = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        campaign_id = submitted["campaign_id"]
        assert final["state"] == "complete"

        assert cli.main(base + ["status", campaign_id]) == 0
        assert json.loads(capsys.readouterr().out)["state"] == "complete"

        assert cli.main(base + ["results", campaign_id]) == 0
        lines = capsys.readouterr().out.splitlines()
        records = [json.loads(line) for line in lines]
        assert _signature_from_records(records) == _serial_signature()

        assert cli.main(base + ["list"]) == 0
        assert json.loads(capsys.readouterr().out.splitlines()[0])["campaign_id"] == campaign_id

        assert cli.main(base + ["ping"]) == 0
        assert json.loads(capsys.readouterr().out)["type"] == "pong"

    def test_tail_no_follow_catches_up(self, fabric_factory, tmp_path, capsys):
        from repro.cli import campaign as cli

        fabric = fabric_factory(shard_size=4)
        client = fabric.client()
        spec = CampaignSpec(store_path=str(tmp_path / "t.jsonl"), **GIT_SPEC_KWARGS)
        reply = client.submit(spec)
        worker = fabric.worker()
        while worker.run_once():
            pass
        host, port = fabric.address
        rc = cli.main([
            "--host", host, "--port", str(port),
            "tail", reply["campaign_id"], "--no-follow",
        ])
        assert rc == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert lines[-1]["type"] == "campaign_complete"
        assert len(lines) - 1 == client.status(reply["campaign_id"])["total"]

    def test_worker_cli_max_idle_exits(self, fabric_factory):
        from repro.cli import campaignd as cli

        host, port = fabric_factory().address
        rc = cli.main([
            "worker", "--host", host, "--port", str(port),
            "--max-idle", "2", "--poll-interval", "0.01",
        ])
        assert rc == 0
