"""Tests for the simulated OS: filesystem, heap, mutexes, env, network, libc."""

import pytest

from repro.isa import layout
from repro.oslib import fs as fsmod
from repro.oslib.clock import SimClock
from repro.oslib.errno_codes import Errno, errno_name, errno_value
from repro.oslib.errors import MemoryFault, MutexAbort, OSFault, SimExit
from repro.oslib.facade import LibcFacade
from repro.oslib.heap import SimHeap
from repro.oslib.libc import LIBC_FUNCTIONS, SimLibc, spec_for
from repro.oslib.libc_binary import build_all_library_binaries, build_library_binary
from repro.oslib.net import SimNetwork
from repro.oslib.os_model import SimOS
from repro.oslib.sync import MutexTable
from repro.vm.memory import Memory


class TestErrno:
    def test_roundtrip(self):
        assert errno_value("EINTR") == 4
        assert errno_name(4) == "EINTR"
        assert errno_value("22") == 22
        assert errno_name(99999).startswith("E?")
        with pytest.raises(KeyError):
            errno_value("ENOTAREALERRNO")

    def test_enum_values_match_linux(self):
        assert Errno.ENOENT == 2 and Errno.EIO == 5 and Errno.EAGAIN == 11


class TestFileSystem:
    def test_create_read_write(self):
        fs = fsmod.SimFileSystem()
        fs.add_file("/etc/conf", b"hello")
        fd = fs.open("/etc/conf", fsmod.O_RDWR)
        assert fs.read(fd, 5) == b"hello"
        assert fs.read(fd, 5) == b""
        fs.lseek(fd, 0)
        fs.write(fd, b"HELLO!")
        fs.close(fd)
        assert fs.file_contents("/etc/conf") == b"HELLO!"

    def test_open_errors(self):
        fs = fsmod.SimFileSystem()
        with pytest.raises(OSFault) as excinfo:
            fs.open("/missing", fsmod.O_RDONLY)
        assert excinfo.value.errno == Errno.ENOENT
        fs.make_dirs("/dir")
        with pytest.raises(OSFault):
            fs.open("/dir", fsmod.O_RDONLY)

    def test_create_and_truncate_flags(self):
        fs = fsmod.SimFileSystem()
        fs.make_dirs("/var")
        fd = fs.open("/var/new.log", fsmod.O_WRONLY | fsmod.O_CREAT)
        fs.write(fd, b"abc")
        fs.close(fd)
        fd = fs.open("/var/new.log", fsmod.O_WRONLY | fsmod.O_CREAT | fsmod.O_TRUNC)
        fs.close(fd)
        assert fs.file_contents("/var/new.log") == b""

    def test_bad_descriptor(self):
        fs = fsmod.SimFileSystem()
        with pytest.raises(OSFault) as excinfo:
            fs.read(99, 4)
        assert excinfo.value.errno == Errno.EBADF

    def test_unlink_and_stat(self):
        fs = fsmod.SimFileSystem()
        fs.add_file("/a/b.txt", b"x" * 10)
        stat = fs.stat("/a/b.txt")
        assert stat.size == 10 and fsmod.s_isreg(stat.mode)
        fs.unlink("/a/b.txt")
        assert not fs.exists("/a/b.txt")
        with pytest.raises(OSFault):
            fs.unlink("/a/b.txt")

    def test_read_only_files(self):
        fs = fsmod.SimFileSystem()
        fs.add_file("/ro.txt", b"data", read_only=True)
        with pytest.raises(OSFault) as excinfo:
            fs.open("/ro.txt", fsmod.O_WRONLY)
        assert excinfo.value.errno == Errno.EACCES
        with pytest.raises(OSFault):
            fs.unlink("/ro.txt")

    def test_directories_and_streams(self):
        fs = fsmod.SimFileSystem()
        fs.add_file("/repo/a", b"")
        fs.add_file("/repo/b", b"")
        fs.make_dirs("/repo/sub")
        assert fs.list_dir("/repo") == ["a", "b", "sub"]
        handle = fs.opendir("/repo")
        names = []
        while True:
            name = fs.readdir(handle)
            if name is None:
                break
            names.append(name)
        assert names == ["a", "b", "sub"]
        fs.closedir(handle)
        with pytest.raises(OSFault):
            fs.readdir(handle)
        with pytest.raises(OSFault):
            fs.opendir("/repo/a")

    def test_symlinks_and_readlink(self):
        fs = fsmod.SimFileSystem()
        fs.add_file("/target.txt", b"content")
        fs.add_symlink("/link", "/target.txt")
        assert fs.readlink("/link") == "/target.txt"
        fd = fs.open("/link", fsmod.O_RDONLY)
        assert fs.read(fd, 7) == b"content"
        with pytest.raises(OSFault):
            fs.readlink("/target.txt")

    def test_pipes_and_fstat(self):
        fs = fsmod.SimFileSystem()
        read_end, write_end = fs.make_pipe()
        fs.write(write_end, b"ping")
        assert fs.read(read_end, 4) == b"ping"
        assert fs.fstat(read_end).is_fifo()
        nb_read, _nb_write = fs.make_pipe(nonblocking=True)
        with pytest.raises(OSFault) as excinfo:
            fs.read(nb_read, 1)
        assert excinfo.value.errno == Errno.EAGAIN

    def test_mkdir(self):
        fs = fsmod.SimFileSystem()
        fs.make_dirs("/var")
        fs.mkdir("/var/cache")
        assert fs.exists("/var/cache")
        with pytest.raises(OSFault):
            fs.mkdir("/var/cache")
        with pytest.raises(OSFault):
            fs.mkdir("/nonexistent/child")


class TestHeap:
    def test_allocation_and_free(self):
        heap = SimHeap(base=1000, capacity=100)
        a = heap.malloc(10)
        b = heap.malloc(10)
        assert a != b and heap.owns(a)
        assert heap.bytes_in_use == 20
        heap.free(a)
        assert heap.bytes_in_use == 10
        with pytest.raises(OSFault):
            heap.free(a)  # double free
        heap.free(0)  # free(NULL) is a no-op

    def test_exhaustion(self):
        heap = SimHeap(base=0x1000, capacity=16)
        heap.malloc(10)
        with pytest.raises(OSFault) as excinfo:
            heap.malloc(10)
        assert excinfo.value.errno == Errno.ENOMEM

    def test_realloc(self):
        heap = SimHeap(base=0x1000, capacity=100)
        a = heap.malloc(4)
        assert heap.realloc(a, 2) == a
        bigger = heap.realloc(a, 16)
        assert bigger != a
        fresh = heap.realloc(0, 8)
        assert heap.owns(fresh)


class TestMutexes:
    def test_lock_unlock(self):
        table = MutexTable()
        table.lock(1)
        assert table.is_locked(1) and table.held_count() == 1
        table.unlock(1)
        assert not table.is_locked(1)

    def test_double_unlock_aborts(self):
        table = MutexTable()
        table.lock(5)
        table.unlock(5)
        with pytest.raises(MutexAbort):
            table.unlock(5)

    def test_relock_deadlock_and_destroy(self):
        table = MutexTable()
        table.lock(7)
        with pytest.raises(OSFault):
            table.lock(7)
        with pytest.raises(OSFault):
            table.destroy(7)
        table.unlock(7)
        table.init(8)
        assert table.destroy(8) == 0

    def test_non_strict_mode(self):
        table = MutexTable(strict=False)
        with pytest.raises(OSFault):
            table.unlock(3)


class TestEnvironmentAndNetwork:
    def test_environment(self):
        os = SimOS("p", environment={"HOME": "/root"})
        assert os.env.getenv("HOME") == "/root"
        os.env.setenv("PATH", "/bin")
        assert "PATH" in os.env and len(os.env) == 2
        os.env.setenv("PATH", "/usr/bin", overwrite=False)
        assert os.env.getenv("PATH") == "/bin"
        os.env.unsetenv("PATH")
        assert os.env.getenv("PATH") is None
        with pytest.raises(OSFault):
            os.env.setenv("BAD=NAME", "x")

    def test_network_datagrams(self):
        network = SimNetwork()
        a = network.socket("a")
        b = network.socket("b")
        network.bind(a, 1)
        network.bind(b, 2)
        network.sendto(a, b"hello", 2)
        payload, source = network.recvfrom(b)
        assert payload == b"hello" and source == 1
        with pytest.raises(OSFault) as excinfo:
            network.recvfrom(b)
        assert excinfo.value.errno == Errno.EAGAIN

    def test_network_drop_hook_and_unbound_destination(self):
        network = SimNetwork()
        a = network.socket("a")
        network.bind(a, 1)
        network.add_delivery_hook(lambda datagram: False)
        network.sendto(a, b"x", 1)
        assert network.dropped_count == 1
        network.clear_delivery_hooks()
        network.sendto(a, b"x", 99)  # nobody bound there
        assert network.dropped_count == 2

    def test_address_in_use(self):
        network = SimNetwork()
        a = network.socket("a")
        b = network.socket("b")
        network.bind(a, 7)
        with pytest.raises(OSFault):
            network.bind(b, 7)

    def test_clock(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance_to(1.0)  # never goes backwards
        assert clock.now == 1.5
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestSimLibc:
    def make(self):
        os = SimOS("libc-test")
        return os, SimLibc(os), Memory()

    def test_spec_table_consistency(self):
        for name, spec in LIBC_FUNCTIONS.items():
            assert spec.name == name
            assert spec.argc >= 0
            for error in spec.error_returns:
                for errno in error.errnos:
                    assert errno_value(errno) > 0
        assert spec_for("read").argc == 3
        with pytest.raises(KeyError):
            spec_for("not_a_function")

    def test_genuine_failure_sets_errno(self):
        os, libc, memory = self.make()
        path = layout.DATA_BASE
        memory.write_string(path, "/missing")
        result = libc.call("open", (path, 0), memory)
        assert result.value == -1
        assert result.errno == Errno.ENOENT
        assert memory.peek(layout.ERRNO_ADDRESS) == Errno.ENOENT

    def test_malloc_and_free(self):
        os, libc, memory = self.make()
        result = libc.call("malloc", (16,), memory)
        assert result.value >= layout.HEAP_BASE
        assert libc.call("free", (result.value,), memory).value == 0

    def test_invalid_free_aborts(self):
        os, libc, memory = self.make()
        with pytest.raises(SimExit):
            libc.call("free", (layout.HEAP_BASE + 5,), memory)

    def test_fwrite_null_file_crashes(self):
        os, libc, memory = self.make()
        with pytest.raises(MemoryFault):
            libc.call("fwrite", (layout.DATA_BASE, 1, 4, 0), memory)

    def test_pthread_errors_via_return(self):
        os, libc, memory = self.make()
        assert libc.call("pthread_mutex_lock", (0x10,), memory).value == 0
        result = libc.call("pthread_mutex_lock", (0x10,), memory)
        assert result.value == Errno.EDEADLK
        assert result.errno is None

    def test_string_helpers(self):
        os, libc, memory = self.make()
        src = layout.DATA_BASE
        dst = layout.DATA_BASE + 100
        memory.write_string(src, "-42abc")
        assert libc.call("strlen", (src,), memory).value == 6
        assert libc.call("atoi", (src,), memory).value == -42
        libc.call("strcpy", (dst, src), memory)
        assert memory.read_string(dst) == "-42abc"

    def test_injected_fault_application(self):
        os, libc, memory = self.make()
        result = libc.apply_injected_fault("read", -1, int(Errno.EINTR), memory)
        assert result.injected and result.value == -1
        assert memory.peek(layout.ERRNO_ADDRESS) == Errno.EINTR


class TestFacade:
    def test_file_roundtrip_and_errno(self):
        os = SimOS("f")
        os.fs.add_file("/data.txt", b"abcdef")
        libc = LibcFacade(os)
        fd = libc.open("/data.txt")
        assert libc.read(fd, 3) == b"abc"
        assert libc.close(fd) == 0
        assert libc.open("/missing") == -1
        assert libc.errno == Errno.ENOENT

    def test_stdio_handles(self):
        os = SimOS("f")
        os.fs.make_dirs("/out")
        libc = LibcFacade(os)
        handle = libc.fopen("/out/x.txt", "w")
        assert handle > 0
        assert libc.fwrite(handle, b"hello") == 5
        assert libc.fclose(handle) == 0
        assert os.fs.file_contents("/out/x.txt") == b"hello"
        with pytest.raises(MemoryFault):
            libc.fwrite(0, b"boom")

    def test_directories_env_and_mutexes(self):
        os = SimOS("f")
        os.fs.add_file("/d/one", b"")
        libc = LibcFacade(os)
        handle = libc.opendir("/d")
        assert libc.readdir(handle) == "one"
        assert libc.readdir(handle) is None
        assert libc.closedir(handle) == 0
        assert libc.setenv("KEY", "VALUE") == 0
        assert libc.getenv("KEY") == "VALUE"
        assert libc.getenv("NOPE") is None
        assert libc.mutex_lock(1) == 0
        assert libc.mutex_unlock(1) == 0
        with pytest.raises(MutexAbort):
            libc.mutex_unlock(1)

    def test_sockets(self):
        network = SimNetwork()
        os_a = SimOS("a", network=network)
        os_b = SimOS("b", network=network)
        libc_a, libc_b = LibcFacade(os_a), LibcFacade(os_b)
        fd_a, fd_b = libc_a.socket(), libc_b.socket()
        libc_a.bind(fd_a, 10)
        libc_b.bind(fd_b, 20)
        assert libc_a.sendto(fd_a, b"msg", 20) == 3
        assert libc_b.recvfrom(fd_b) == (b"msg", 10)
        assert libc_b.recvfrom(fd_b) is None


class TestLibcBinaries:
    def test_all_libraries_built(self):
        images = build_all_library_binaries()
        assert {"libc.so", "libpthread.so", "libxml2.so", "libapr.so"} == set(images)
        libc = images["libc.so"]
        assert "read" in libc.symbols and "malloc" in libc.symbols

    def test_unknown_library_rejected(self):
        with pytest.raises(ValueError):
            build_library_binary("libnotreal")

    def test_restricted_function_set(self):
        image = build_library_binary("libc", functions=["read", "close"])
        assert set(image.symbols) == {"close", "read"}
