"""Tests for the fault-space exploration engine (PR 2 tentpole).

Covers the acceptance criteria: exhaustive coverage of every (unchecked
site x errno) pair exactly once on mini_bind, zero re-runs after an
interrupted exploration resumes from the result store, and bit-identical
results between serial and parallel explorations with the same seed.
"""

import json

import pytest

from repro.core.analysis.scenario_gen import fault_candidates
from repro.core.controller.controller import LFIController
from repro.core.controller.monitor import OutcomeKind
from repro.core.exploration import (
    BoundarySampleStrategy,
    ExhaustiveStrategy,
    FailureDeduplicator,
    FaultPoint,
    RandomSampleStrategy,
    ResultStore,
    StoredResult,
    enumerate_fault_space,
    priority_order,
    resolve_strategy,
    stack_fingerprint,
)
from repro.core.exploration.engine import ExplorationEngine
from repro.common.frames import StackFrame
from repro.core.controller.monitor import Outcome
from repro.targets.mini_bind import MiniBindTarget
from repro.targets.mini_mysql import MiniMySQLTarget


def _point(function="read", address=0x10, category="unchecked", rv=-1, errno=None,
           fault_index=0, binary="bin"):
    return FaultPoint(
        binary=binary, function=function, address=address, category=category,
        return_value=rv, errno=errno, fault_index=fault_index,
    )


class CountingBindTarget:
    """MiniBindTarget wrapper counting workload executions (resume checks)."""

    def __init__(self):
        self._inner = MiniBindTarget()
        self.name = self._inner.name
        self.runs = 0

    def binary(self):
        return self._inner.binary()

    def workloads(self):
        return self._inner.workloads()

    def run(self, request):
        self.runs += 1
        return self._inner.run(request)


def _signature(report):
    return [
        (outcome.point.key, outcome.outcome.kind, outcome.outcome.detail,
         outcome.outcome.exit_code, outcome.outcome.location,
         outcome.injections, outcome.fingerprint, outcome.run_seed)
        for outcome in report.outcomes
    ]


# ----------------------------------------------------------------------
# space enumeration and priority ordering
# ----------------------------------------------------------------------
class TestFaultSpace:
    def test_exhaustive_covers_every_unchecked_site_errno_pair_once(self):
        controller = LFIController(MiniBindTarget())
        analysis = controller.analyze_target()
        profile = controller.profile_libraries()

        expected = set()
        for function, classification in analysis.classifications.items():
            for fault in fault_candidates(profile.function(function)):
                for site in classification.unchecked:
                    expected.add((function, site.address, fault["return_value"], fault["errno"]))
                for site in classification.partially_checked:
                    expected.add((function, site.address, fault["return_value"], fault["errno"]))

        points = controller.fault_space()
        covered = [(p.function, p.address, p.return_value, p.errno) for p in points]
        assert len(covered) == len(set(covered)), "no pair may appear twice"
        assert set(covered) == expected, "every pair must appear exactly once"

    def test_point_keys_are_stable_and_unique(self):
        points = LFIController(MiniBindTarget()).fault_space()
        keys = [point.key for point in points]
        assert len(keys) == len(set(keys))
        again = LFIController(MiniBindTarget()).fault_space()
        assert keys == [point.key for point in again]

    def test_include_flags_grow_the_space(self):
        controller = LFIController(MiniBindTarget())
        base = controller.fault_space(include_partial=False, include_checked=False)
        with_checked = controller.fault_space(include_checked=True)
        assert len(with_checked) > len(base)
        assert {p.category for p in base} == {"unchecked"}
        assert "checked" in {p.category for p in with_checked}

    def test_python_level_target_raises(self):
        with pytest.raises(ValueError):
            LFIController(MiniMySQLTarget()).fault_space()

    def test_priority_unchecked_before_partial_before_checked(self):
        points = [
            _point(category="checked", address=1),
            _point(category="partial", address=2),
            _point(category="unchecked", address=3),
        ]
        ordered = priority_order(points)
        assert [p.category for p in ordered] == ["unchecked", "partial", "checked"]

    def test_priority_novel_fault_classes_first(self):
        # Three sites of one function x two errnos: the first occurrence of
        # each (function, rv, errno) class outranks every repeat.
        points = []
        for address in (0x30, 0x10, 0x20):
            for fault_index, errno in enumerate((5, 11)):
                points.append(_point(address=address, errno=errno, fault_index=fault_index))
        ordered = priority_order(points)
        first_classes = [(p.function, p.return_value, p.errno) for p in ordered[:2]]
        assert len(set(first_classes)) == 2, "both errno classes probed before repeats"
        assert [p.address for p in ordered[:2]] == [0x10, 0x10]
        # Determinism: same input (any order) -> same schedule.
        assert priority_order(list(reversed(points))) == ordered


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
class TestStrategies:
    def _mixed_points(self):
        points = []
        for address in (0x10, 0x20):
            for fault_index in range(4):
                points.append(_point(address=address, errno=fault_index + 2,
                                     fault_index=fault_index))
        return points

    def test_exhaustive_keeps_everything(self):
        points = self._mixed_points()
        assert ExhaustiveStrategy().select(points) == points

    def test_boundary_keeps_first_and_last_fault_per_site(self):
        selected = BoundarySampleStrategy().select(self._mixed_points())
        by_site = {}
        for point in selected:
            by_site.setdefault(point.address, []).append(point.fault_index)
        assert by_site == {0x10: [0, 3], 0x20: [0, 3]}

    def test_boundary_degenerates_to_exhaustive_on_small_profiles(self):
        points = [_point(fault_index=0), _point(address=0x20, fault_index=0)]
        assert BoundarySampleStrategy().select(points) == points

    def test_random_sample_is_seed_deterministic_and_order_preserving(self):
        points = self._mixed_points()
        strategy = RandomSampleStrategy(seed=5, fraction=0.5)
        first = strategy.select(points)
        assert first == RandomSampleStrategy(seed=5, fraction=0.5).select(points)
        assert len(first) == 4
        indices = [points.index(point) for point in first]
        assert indices == sorted(indices), "selection preserves priority order"
        different = any(
            RandomSampleStrategy(seed=seed, fraction=0.5).select(points) != first
            for seed in range(6, 16)
        )
        assert different, "the seed must actually steer the sample"

    def test_random_sample_count_and_validation(self):
        points = self._mixed_points()
        assert len(RandomSampleStrategy(seed=0, count=3).select(points)) == 3
        assert len(RandomSampleStrategy(seed=0, count=99).select(points)) == len(points)
        assert len(RandomSampleStrategy(seed=0, fraction=0.01).select(points)) == 1
        assert RandomSampleStrategy(seed=0).select([]) == []
        with pytest.raises(ValueError):
            RandomSampleStrategy(seed=0, fraction=1.5)
        with pytest.raises(ValueError):
            RandomSampleStrategy(seed=0, count=0)

    def test_resolve_strategy_specs(self):
        assert isinstance(resolve_strategy(None), ExhaustiveStrategy)
        assert isinstance(resolve_strategy("exhaustive"), ExhaustiveStrategy)
        assert isinstance(resolve_strategy("boundary"), BoundarySampleStrategy)
        assert isinstance(resolve_strategy("random"), RandomSampleStrategy)
        strategy = BoundarySampleStrategy()
        assert resolve_strategy(strategy) is strategy
        with pytest.raises(ValueError):
            resolve_strategy("clever")
        with pytest.raises(TypeError):
            resolve_strategy(3)


# ----------------------------------------------------------------------
# result store
# ----------------------------------------------------------------------
def _stored(key, outcome="normal", index=0):
    return StoredResult(
        key=key, index=index, scenario=f"s-{key}", function="read",
        return_value=-1, errno=5, category="unchecked", workload="w",
        outcome=outcome,
    )


class TestResultStore:
    def test_persist_and_reload(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(str(path))
        store.append(_stored("a"))
        store.append(_stored("b", outcome="crash", index=1))
        reloaded = ResultStore(str(path))
        assert reloaded.completed_keys() == {"a", "b"}
        assert reloaded.get("b").outcome_kind is OutcomeKind.CRASH
        assert [result.key for result in reloaded.results()] == ["a", "b"]
        assert "a" in reloaded and len(reloaded) == 2

    def test_duplicate_appends_are_idempotent(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(str(path))
        store.append(_stored("a"))
        store.append(_stored("a", outcome="crash"))
        assert store.get("a").outcome == "normal"
        assert len(ResultStore(str(path))) == 1

    def test_torn_final_line_is_discarded(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(str(path))
        store.append(_stored("a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "b", "outcome": "cra')  # killed mid-write
        reloaded = ResultStore(str(path))
        assert reloaded.completed_keys() == {"a"}

    def test_memory_store_has_no_file(self):
        store = ResultStore()
        store.append(_stored("a"))
        assert store.path is None and len(store) == 1

    def test_stored_outcome_keeps_exit_code_and_location(self, tmp_path):
        path = tmp_path / "store.jsonl"
        result = _stored("a", outcome="crash")
        result.exit_code = 139
        result.location = "httpd.c:42"
        ResultStore(str(path)).append(result)
        restored = ResultStore(str(path)).get("a").to_outcome()
        assert restored.exit_code == 139 and restored.location == "httpd.c:42"
        assert restored.kind is OutcomeKind.CRASH

    def test_unknown_fields_round_trip_via_extra(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            payload = _stored("a").to_dict()
            payload["future_field"] = 42
            handle.write(json.dumps(payload) + "\n")
        reloaded = ResultStore(str(path))
        assert reloaded.get("a").extra["future_field"] == 42


# ----------------------------------------------------------------------
# failure dedup
# ----------------------------------------------------------------------
class TestDeduplication:
    def test_same_stack_same_class_collapses(self):
        stack = [StackFrame(module="m", function="f", line=3)]
        fingerprint = stack_fingerprint(stack)
        dedup = FailureDeduplicator()
        crash = Outcome(kind=OutcomeKind.CRASH, detail="boom")
        assert dedup.add("malloc", 12, crash, fingerprint, scenario="s1") is True
        assert dedup.add("malloc", 12, crash, fingerprint, scenario="s2") is False
        assert len(dedup) == 1
        unique = dedup.unique()[0]
        assert unique.occurrences == 2 and unique.scenarios == ["s1", "s2"]

    def test_distinct_dimension_changes_are_novel(self):
        stack_a = stack_fingerprint([StackFrame(module="m", function="f", line=3)])
        stack_b = stack_fingerprint([StackFrame(module="m", function="g", line=9)])
        crash = Outcome(kind=OutcomeKind.CRASH)
        abort = Outcome(kind=OutcomeKind.ABORT)
        dedup = FailureDeduplicator()
        assert dedup.add("malloc", 12, crash, stack_a)
        assert dedup.add("open", 12, crash, stack_a)      # function differs
        assert dedup.add("malloc", 2, crash, stack_a)     # errno differs
        assert dedup.add("malloc", 12, abort, stack_a)    # outcome differs
        assert dedup.add("malloc", 12, crash, stack_b)    # stack differs
        assert len(dedup) == 5

    def test_fingerprint_is_stable_and_ignores_offsets(self):
        frames = [StackFrame(module="m", function="f", offset=0x10, line=3)]
        moved = [StackFrame(module="m", function="f", offset=0x99, line=3)]
        assert stack_fingerprint(frames) == stack_fingerprint(moved)
        assert stack_fingerprint([], fallback="loc") == stack_fingerprint([], fallback="loc")
        assert stack_fingerprint([]) == ""


# ----------------------------------------------------------------------
# the engine: resume, determinism, dedup across runs
# ----------------------------------------------------------------------
class TestExplorationEngine:
    def test_interrupted_exploration_resumes_with_zero_reruns(self, tmp_path):
        path = str(tmp_path / "bind.jsonl")

        # Phase 1: exploration "killed" after 10 completed scenario runs.
        target = CountingBindTarget()
        first = LFIController(target).explore(
            store=ResultStore(path), seed=7, max_runs=10
        )
        assert first.executed == 10 and target.runs == 10
        assert not first.complete and first.pending > 0

        # Phase 2: a fresh process resumes from the store and only runs the
        # remainder — none of the 10 completed scenarios re-runs.
        target = CountingBindTarget()
        resumed = LFIController(target).explore(store=ResultStore(path), seed=7)
        assert resumed.resumed == 10
        assert target.runs == resumed.executed == resumed.selected - 10
        assert resumed.complete

        # Phase 3: everything is in the store; nothing at all re-runs.
        target = CountingBindTarget()
        replayed = LFIController(target).explore(store=ResultStore(path), seed=7)
        assert target.runs == 0 and replayed.executed == 0
        assert replayed.resumed == replayed.selected
        assert len(ResultStore(path)) == replayed.selected

        # The resumed exploration is indistinguishable from an uninterrupted
        # one (same outcomes, same seeds, same fingerprints).
        uninterrupted = LFIController(MiniBindTarget()).explore(seed=7)
        assert _signature(replayed) == _signature(uninterrupted)

    def test_parallel_results_bit_identical_to_serial(self):
        serial = LFIController(MiniBindTarget()).explore(seed=11)
        threaded = LFIController(MiniBindTarget(), parallelism="threads:4").explore(seed=11)
        assert _signature(threaded) == _signature(serial)
        assert [f.describe() for f in threaded.unique_failures] == [
            f.describe() for f in serial.unique_failures
        ]

    def test_exploration_finds_binds_planted_unchecked_bugs(self):
        report = LFIController(MiniBindTarget()).explore(seed=7)
        assert report.complete
        failing = {failure.function for failure in report.unique_failures}
        assert "malloc" in failing
        assert "xmlNewTextWriterDoc" in failing
        candidates = report.to_bug_candidates()
        assert all(candidate.kind.is_high_impact for candidate in candidates)
        assert {candidate.function for candidate in candidates} >= {"malloc"}
        assert "exploration of mini_bind" in report.summary()

    def test_dedup_spans_resumed_and_fresh_runs(self, tmp_path):
        path = str(tmp_path / "bind.jsonl")
        controller = LFIController(MiniBindTarget())
        partial = controller.explore(store=ResultStore(path), seed=7, max_runs=25)
        resumed = controller.explore(store=ResultStore(path), seed=7)
        full = LFIController(MiniBindTarget()).explore(seed=7)
        assert partial.selected == resumed.selected
        assert [f.key for f in resumed.unique_failures] == [f.key for f in full.unique_failures]

    def test_resume_with_wrong_seed_is_rejected(self, tmp_path):
        path = str(tmp_path / "bind.jsonl")
        LFIController(MiniBindTarget()).explore(store=ResultStore(path), seed=7, max_runs=5)
        with pytest.raises(ValueError, match="seed mismatch"):
            LFIController(MiniBindTarget()).explore(store=ResultStore(path), seed=8)
        # The mismatch is caught before anything executes: store unchanged.
        assert len(ResultStore(path)) == 5
        # The original seed still resumes cleanly.
        resumed = LFIController(MiniBindTarget()).explore(store=ResultStore(path), seed=7)
        assert resumed.resumed == 5 and resumed.complete

    def test_functions_narrow_a_precomputed_analysis(self):
        controller = LFIController(MiniBindTarget())
        analysis = controller.analyze_target()
        narrowed = controller.fault_space(analysis=analysis, functions=["malloc"])
        assert narrowed and {point.function for point in narrowed} == {"malloc"}
        report = controller.explore(analysis=analysis, functions=["malloc"], seed=7)
        assert {o.point.function for o in report.outcomes} == {"malloc"}

    def test_strategy_and_seed_reach_the_engine(self):
        report = LFIController(MiniBindTarget()).explore(
            strategy=RandomSampleStrategy(seed=3, fraction=0.2), seed=9
        )
        assert 0 < report.selected < report.space_size
        assert report.strategy.startswith("random-sample")
        again = LFIController(MiniBindTarget()).explore(
            strategy=RandomSampleStrategy(seed=3, fraction=0.2), seed=9
        )
        assert _signature(again) == _signature(report)

    def test_store_is_written_incrementally(self, tmp_path):
        # A crash mid-campaign must only lose in-flight work: when the 6th
        # run blows up the harness itself, the first 5 are already on disk.
        path = str(tmp_path / "bind.jsonl")

        class DyingBindTarget(CountingBindTarget):
            def run(self, request):
                if self.runs >= 5:
                    raise RuntimeError("harness killed")
                return super().run(request)

        with pytest.raises(RuntimeError):
            LFIController(DyingBindTarget()).explore(store=ResultStore(path), seed=7)
        assert len(ResultStore(path)) == 5

        target = CountingBindTarget()
        resumed = LFIController(target).explore(store=ResultStore(path), seed=7)
        assert resumed.resumed == 5 and target.runs == resumed.selected - 5
        assert _signature(resumed) == _signature(LFIController(MiniBindTarget()).explore(seed=7))

    def test_non_injected_failures_are_not_bug_candidates(self, tmp_path):
        # Parity with build_bug_report: a run that fails while the fault was
        # never injected is a workload problem, not an exploration finding.
        class BrokenWorkloadTarget(CountingBindTarget):
            def run(self, request):
                result = super().run(request)
                if result.log is None or result.log.injection_count == 0:
                    result.outcome = Outcome(kind=OutcomeKind.CRASH, detail="flaky harness")
                return result

        report = LFIController(BrokenWorkloadTarget()).explore(seed=7)
        non_injected_failures = [
            o for o in report.outcomes if o.outcome.is_failure and o.injections == 0
        ]
        assert non_injected_failures, "fixture should produce non-injected failures"
        assert all(f.occurrences > 0 for f in report.unique_failures)
        flaky = [f for f in report.unique_failures if f.detail == "flaky harness"]
        assert flaky == [], "non-injected failures must not be deduplicated as findings"
        assert all(c.description != "flaky harness" for c in report.to_bug_candidates())

    def test_pool_backends_checkpoint_in_completion_order(self, tmp_path):
        # A slow head-of-line task must not delay checkpointing of finished
        # runs: with two threads, the store fills up while task 0 sleeps.
        import threading
        from repro.core.controller.executor import ExecutionTask, ThreadPoolBackend
        from repro.core.controller.monitor import RunResult
        from repro.core.controller.target import WorkloadRequest

        release = threading.Event()

        class GatedTarget:
            name = "gated"

            def workloads(self):
                return ["w"]

            def binary(self):
                return None

            def run(self, request):
                if request.options.get("slow"):
                    release.wait(timeout=30)
                return RunResult(outcome=Outcome(kind=OutcomeKind.NORMAL))

        target = GatedTarget()
        tasks = [
            ExecutionTask(index=0, target=target,
                          request=WorkloadRequest(workload="w", options={"slow": True})),
            ExecutionTask(index=1, target=target, request=WorkloadRequest(workload="w")),
            ExecutionTask(index=2, target=target, request=WorkloadRequest(workload="w")),
        ]
        seen = []
        with ThreadPoolBackend(2) as backend:
            for task, _result in backend.run_tasks_iter(tasks):
                seen.append(task.index)
                if len(seen) == 2:
                    # Two fast tasks arrived while task 0 is still blocked.
                    assert 0 not in seen
                    release.set()
        assert sorted(seen) == [0, 1, 2]

    def test_engine_schedule_is_priority_ordered(self):
        controller = LFIController(MiniBindTarget())
        points = controller.fault_space(include_checked=True)
        engine = ExplorationEngine(MiniBindTarget())
        schedule = engine.schedule(points)
        ranks = [{"unchecked": 0, "partial": 1, "checked": 2}[p.category] for p in schedule]
        assert ranks == sorted(ranks)
