"""Tests for the library profiler, coverage tracking, and recovery identification."""

import pytest

from repro.core.controller.target import WorkloadRequest, make_gate
from repro.core.profiler.fault_profile import (
    ErrorSpecification,
    FaultProfile,
    FunctionProfile,
    merge_profiles,
    parse_profile_xml,
    profile_to_xml,
)
from repro.core.profiler.spec_profiles import (
    combined_reference_profile,
    reference_profile,
    reference_profiles,
)
from repro.core.profiler.static_profiler import profile_library
from repro.core.scenario.builder import ScenarioBuilder
from repro.coverage.recovery import identify_recovery_regions
from repro.coverage.report import build_report, compare_coverage
from repro.coverage.tracker import CoverageTracker
from repro.minicc import compile_source
from repro.oslib.libc import LIBC_FUNCTIONS
from repro.oslib.libc_binary import build_library_binary
from repro.oslib.os_model import SimOS
from repro.vm import Machine


class TestFaultProfileModel:
    def test_function_profile_queries(self):
        profile = FunctionProfile(
            name="read",
            error_returns=[ErrorSpecification(-1, ("EINTR", "EIO"))],
        )
        assert profile.error_values() == (-1,)
        assert profile.all_errnos() == ("EINTR", "EIO")
        assert profile.primary_fault() == (-1, 4)

    def test_library_profile_and_merge(self):
        a = FaultProfile("libc")
        a.add(FunctionProfile("read", [ErrorSpecification(-1, ("EIO",))]))
        b = FaultProfile("libxml2")
        b.add(FunctionProfile("xmlNewTextWriterDoc", [ErrorSpecification(0, ())]))
        merged = merge_profiles([a, b])
        assert "read" in merged and "xmlNewTextWriterDoc" in merged
        assert merged.error_values("read") == (-1,)
        assert len(merged) == 2

    def test_xml_roundtrip(self):
        original = reference_profile("libc")
        text = profile_to_xml(original)
        parsed = parse_profile_xml(text)
        assert set(parsed.functions) == set(original.functions)
        for name, function in original.functions.items():
            restored = parsed.function(name)
            assert restored.error_values() == function.error_values()
            assert set(restored.all_errnos()) == set(function.all_errnos())

    def test_bad_xml_rejected(self):
        with pytest.raises(ValueError):
            parse_profile_xml("<wrong/>")


class TestStaticProfiler:
    @pytest.mark.parametrize("library", ["libc", "libpthread", "libxml2", "libapr"])
    def test_inference_matches_reference(self, library):
        inferred = profile_library(build_library_binary(library))
        reference = reference_profile(library)
        for name, expected in reference.functions.items():
            actual = inferred.function(name)
            assert actual is not None, name
            expected_set = {
                (e.return_value, tuple(sorted(e.errnos))) for e in expected.error_returns
            }
            actual_set = {
                (e.return_value, tuple(sorted(e.errnos))) for e in actual.error_returns
            }
            assert actual_set == expected_set, name

    def test_reference_profiles_cover_all_functions(self):
        combined = combined_reference_profile()
        assert set(combined.functions) == set(LIBC_FUNCTIONS)
        per_library = reference_profiles()
        assert set(per_library) == {"libapr", "libc", "libpthread", "libxml2"}


RECOVERY_SOURCE = """
int main(int fail_mode) {
    int fd;
    int n;
    int buffer[8];
    fd = open("/etc/app.conf", 0);
    if (fd < 0) {
        puts("recovering: using defaults");
        return 0;
    }
    n = read(fd, buffer, 4);
    if (n < 0) {
        puts("recovering: retry later");
        close(fd);
        return 0;
    }
    close(fd);
    return 0;
}
"""


class TestCoverage:
    def build(self):
        return compile_source(RECOVERY_SOURCE, name="recovery_demo")

    def run_with_coverage(self, binary, os, scenario=None):
        tracker = CoverageTracker()
        gate = make_gate(scenario)
        machine = Machine(binary, os=os, gate=gate, coverage=tracker)
        machine.run()
        tracker.finish_run()
        return tracker

    def test_tracker_basics(self):
        binary = self.build()
        os = SimOS("r")
        os.fs.add_file("/etc/app.conf", b"key=value")
        tracker = self.run_with_coverage(binary, os)
        assert 0.0 < tracker.instruction_coverage(binary) <= 1.0
        assert tracker.runs == 1
        assert tracker.covered_lines(binary)
        assert tracker.hit_count(binary.entry_address()) >= 1

    def test_recovery_regions_identified(self):
        binary = self.build()
        recovery = identify_recovery_regions(binary, combined_reference_profile())
        assert recovery.region_count() >= 2  # open and read recovery branches
        lines = recovery.all_lines()
        assert any(line for line in lines)

    def test_injection_increases_recovery_coverage(self):
        binary = self.build()
        profile = combined_reference_profile()
        recovery = identify_recovery_regions(binary, profile)

        os = SimOS("r")
        os.fs.add_file("/etc/app.conf", b"key=value")
        baseline_tracker = self.run_with_coverage(binary, os)
        baseline = build_report(binary, baseline_tracker, recovery, "baseline")
        assert baseline.recovery_coverage == 0.0  # happy path covers no recovery

        scenario = (
            ScenarioBuilder("fail-read")
            .trigger("once", "SingletonTrigger")
            .inject("read", ["once"], return_value=-1, errno="EIO")
            .build()
        )
        os2 = SimOS("r")
        os2.fs.add_file("/etc/app.conf", b"key=value")
        merged = CoverageTracker()
        merged.merge(baseline_tracker)
        merged.merge(self.run_with_coverage(binary, os2, scenario))
        with_lfi = build_report(binary, merged, recovery, "with LFI")
        comparison = compare_coverage(baseline, with_lfi)
        assert with_lfi.recovery_coverage > baseline.recovery_coverage
        assert comparison.additional_recovery_fraction > 0
        assert comparison.additional_lines_covered > 0
        assert comparison.row()["system"] == "recovery_demo"

    def test_merge_and_clear(self):
        tracker_a, tracker_b = CoverageTracker(), CoverageTracker()
        tracker_a.record(1)
        tracker_b.record(2)
        tracker_a.merge(tracker_b)
        assert tracker_a.covered_addresses == {1, 2}
        tracker_a.clear()
        assert not tracker_a.covered_addresses
