"""Tests for the structured fault-class layer (PR 8 tentpole + satellites).

Covers the acceptance criteria: every fault class applies identically under
the compiled and reference VM engines, partial-write and crash-point sweeps
are bit-identical across serial / pooled / distributed execution, the
crash-consistency campaign detects the seeded mini_git short-write bug, a
usage-profile report is built from a real campaign trace, and the
satellites — spec validation at submit, delivery-hook hygiene, fault-spec
serialization round-trips with old-store forward compatibility.
"""

import json
import threading

import pytest

from repro.core.controller.monitor import OutcomeKind
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.core.exploration import ResultStore, StoredResult, priority_order
from repro.core.exploration.engine import ExplorationEngine
from repro.core.exploration.space import (
    StructuredFaultPoint,
    enumerate_structured_space,
)
from repro.core.faults import (
    FAULT_CLASSES,
    MID_RESUMABLE_CLASSES,
    UNSHAREABLE_CLASSES,
    DropAllHook,
    PartitionHook,
    class_names,
    is_structured_class,
    make_fault,
    structured_scenario,
)
from repro.core.injection.log import InjectionRecord
from repro.coverage.report import build_usage_profile
from repro.distributed.client import CampaignServerError
from repro.distributed.spec import CampaignSpec, build_engine, validate_spec
from repro.oslib.facade import LibcFacade
from repro.oslib.net import SimNetwork
from repro.oslib.os_model import SimOS
from repro.targets.mini_git import MiniGitTarget
from repro.targets.mini_mysql.myisam import MyISAMEngine
from repro.targets.pbft import PBFTTarget

from test_campaignd import _Fabric


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _outcome_signature(result):
    outcome = result.outcome
    return (
        outcome.kind,
        outcome.detail,
        outcome.exit_code,
        outcome.location,
        result.injections,
    )


def _report_signature(report):
    return [
        (o.point.key, o.outcome.kind, o.outcome.detail, o.outcome.exit_code,
         o.outcome.location, o.injections, o.fingerprint, o.run_seed)
        for o in report.outcomes
    ]


def _run_git(scenario, workload="commit", options=None):
    return MiniGitTarget().run(
        WorkloadRequest(workload=workload, scenario=scenario,
                        options=dict(options or {}))
    )


#: One representative (function, nth, params, workload) per VM-applicable
#: class, chosen so the trigger actually fires on the workload.
VM_CLASS_PROBES = [
    ("partial_write", "write", 2, {"fraction": 0.5}, "commit"),
    ("short_read", "read", 1, {"fraction": 0.5}, "status"),
    ("fd_exhaustion", "open", 1, {"budget": 2}, "commit"),
    ("heap_exhaustion", "malloc", 1, {"budget": 2}, "merge"),
    ("clock_skew", "time", 1, {"delta": 5.0}, "commit"),
    ("clock_jump", "time", 1, {"delta": 86400.0}, "commit"),
    ("crash_point", "write", 2, {"torn": 1, "fraction": 0.5}, "commit"),
]

NET_CLASS_PROBES = [
    ("net_drop", {}),
    ("net_partition", {"scope": "dst"}),
    ("net_reorder", {}),
]


# ----------------------------------------------------------------------
# taxonomy registry
# ----------------------------------------------------------------------
class TestFaultClassRegistry:
    def test_every_class_is_registered_and_probed(self):
        probed = {name for name, *_ in VM_CLASS_PROBES}
        probed |= {name for name, _ in NET_CLASS_PROBES}
        assert probed == set(class_names()) == set(FAULT_CLASSES)

    def test_class_predicates(self):
        assert is_structured_class("partial_write")
        assert not is_structured_class("errno")
        assert "crash_point" in UNSHAREABLE_CLASSES
        assert "partial_write" not in UNSHAREABLE_CLASSES
        assert "crash_point" not in MID_RESUMABLE_CLASSES
        assert "partial_write" in MID_RESUMABLE_CLASSES

    def test_make_fault_carries_class_and_ramp_errnos(self):
        fault = make_fault("fd_exhaustion", {"budget": 2})
        assert fault.fault_class == "fd_exhaustion"
        assert fault.return_value == -1 and fault.errno is not None
        with pytest.raises(ValueError, match="unknown fault class"):
            make_fault("bogus_class")
        with pytest.raises(ValueError, match="ScenarioBuilder.inject"):
            make_fault("errno")

    def test_structured_point_keys_are_stable_and_unique(self):
        points = enumerate_structured_space("mini_git", class_names())
        keys = [point.key for point in points]
        assert len(keys) == len(set(keys))
        assert "mini_git:write#1:partial_write[fraction=0.5]" in keys
        assert "mini_git:write#1:crash_point[torn=0]" in keys
        # Priority ordering is a permutation — no point is lost or invented.
        ordered = priority_order(points)
        assert sorted(p.key for p in ordered) == sorted(keys)

    def test_unknown_class_enumeration_raises(self):
        with pytest.raises(ValueError, match="unknown fault class"):
            enumerate_structured_space("mini_git", ["bogus"])


# ----------------------------------------------------------------------
# tentpole: every class differentially guaranteed
# ----------------------------------------------------------------------
class TestDifferentialEngines:
    """Compiled vs. reference VM engine: bit-identical per class."""

    @pytest.mark.parametrize(
        "klass,function,nth,params,workload",
        VM_CLASS_PROBES,
        ids=[probe[0] for probe in VM_CLASS_PROBES],
    )
    def test_class_identical_under_both_engines(
        self, klass, function, nth, params, workload
    ):
        scenario = structured_scenario(klass, function, nth=nth, params=params)
        compiled = _run_git(scenario, workload, {"engine": "compiled"})
        reference = _run_git(scenario, workload, {"engine": "reference"})
        assert compiled.injections >= 1  # the probe actually fired
        assert _outcome_signature(compiled) == _outcome_signature(reference)

    @pytest.mark.parametrize(
        "klass,params", NET_CLASS_PROBES, ids=[probe[0] for probe in NET_CLASS_PROBES]
    )
    def test_net_classes_deterministic_on_pbft(self, klass, params):
        """Network classes only exist on the Python cluster (no compiled
        engine) — the differential guarantee there is run-to-run
        determinism of the whole cluster under the fault."""
        def run():
            scenario = structured_scenario(klass, "sendto", nth=5, params=params)
            return PBFTTarget().run(
                WorkloadRequest(workload="simple", scenario=scenario)
            )

        first, second = run(), run()
        assert first.injections == second.injections >= 1
        assert _outcome_signature(first) == _outcome_signature(second)
        assert first.stats["messages_sent"] == second.stats["messages_sent"]
        assert first.stats["rounds"] == second.stats["rounds"]

    def test_partial_write_truncates_on_disk(self):
        scenario = structured_scenario(
            "partial_write", "write", nth=2, params={"fraction": 0.5}
        )
        result = _run_git(scenario, "commit")
        # The seeded short-write blind spot: the 16-byte object write is
        # truncated to 8 bytes, mini_git treats the short count as success,
        # and the data-loss oracle catches the torn object.
        assert result.outcome.kind is OutcomeKind.DATA_LOSS
        assert "truncated (8 of 16 bytes)" in result.outcome.detail

    def test_clock_jump_advances_simulated_clock(self):
        scenario = structured_scenario(
            "clock_jump", "time", nth=1, params={"delta": 86400.0}
        )
        result = _run_git(scenario, "commit")
        assert result.injections == 1
        assert result.outcome.kind is OutcomeKind.NORMAL


# ----------------------------------------------------------------------
# tentpole: crash-consistency kills and recovery
# ----------------------------------------------------------------------
class TestCrashPoints:
    def test_crash_with_rerun_recovery_heals(self):
        # Default recovery re-runs the crashed workload; write_object then
        # rewrites the torn object completely, so recovery is clean and the
        # kill itself is not reported as a bug.
        scenario = structured_scenario(
            "crash_point", "write", nth=2, params={"torn": 1, "fraction": 0.5}
        )
        result = _run_git(scenario, "commit")
        assert result.outcome.kind is OutcomeKind.NORMAL
        assert result.outcome.detail.startswith("recovered after [crash injected")

    def test_crash_with_foreign_recovery_exposes_torn_state(self):
        # Recovery via the "status" workload never rewrites the object, so
        # the torn 8-byte file survives recovery and the oracle reports it.
        scenario = structured_scenario(
            "crash_point", "write", nth=2,
            params={"torn": 1, "fraction": 0.5}, recovery_workload="status",
        )
        result = _run_git(scenario, "commit")
        assert result.outcome.kind is OutcomeKind.DATA_LOSS
        assert "truncated" in result.outcome.detail

    def test_crash_without_recovery_metadata_is_world_crash(self):
        scenario = structured_scenario(
            "crash_point", "write", nth=2, params={"torn": 0}
        )
        del scenario.metadata["recovery_workload"]
        result = _run_git(scenario, "commit")
        assert result.outcome.kind is OutcomeKind.WORLD_CRASH
        assert not result.outcome.kind.is_high_impact  # oracles still ran

    def test_crash_campaign_detects_seeded_bug(self):
        """The acceptance test: a crash-consistency campaign over enumerated
        crash points — plus the recovery dimension — finds the seeded
        mini_git short-write bug."""
        points = list(enumerate_structured_space("mini_git", ["crash_point"]))
        # Sweep the recovery dimension as first-class points: each torn
        # crash point is also explored with a post-crash "status" recovery.
        for point in list(points):
            if dict(point.params).get("torn"):
                points.append(
                    StructuredFaultPoint(
                        binary=point.binary, function=point.function,
                        address=0, category="structured",
                        return_value=point.return_value, errno=point.errno,
                        fault_index=point.fault_index, site=None,
                        klass=point.klass,
                        params=tuple(sorted(
                            dict(point.params, recovery="status").items()
                        )),
                        occurrence=point.occurrence,
                    )
                )
        engine = ExplorationEngine(
            MiniGitTarget(), seed=13, workload="commit", store=ResultStore()
        )
        report = engine.explore(points)
        assert report.complete
        data_loss = [
            o for o in report.outcomes
            if o.outcome.kind is OutcomeKind.DATA_LOSS
        ]
        assert data_loss, "campaign failed to find the seeded short-write bug"
        assert all("truncated" in o.outcome.detail for o in data_loss)
        # The finding names the recovery dimension in its point key.
        assert any("recovery=status" in o.point.key for o in data_loss)

    def test_partial_write_campaign_detects_seeded_bug(self):
        engine = ExplorationEngine(
            MiniGitTarget(), seed=13, workload="commit", store=ResultStore()
        )
        report = engine.explore(
            enumerate_structured_space("mini_git", ["partial_write"])
        )
        hits = [o for o in report.outcomes if o.outcome.kind is OutcomeKind.DATA_LOSS]
        assert hits and all(o.point.klass == "partial_write" for o in hits)


# ----------------------------------------------------------------------
# tentpole: serial == pooled == distributed
# ----------------------------------------------------------------------
SWEEP_CLASSES = ["crash_point", "partial_write"]


def _sweep_engine(parallelism=None, store=None):
    engine = ExplorationEngine(
        MiniGitTarget(), seed=13, workload="commit",
        store=store if store is not None else ResultStore(),
        parallelism=parallelism,
    )
    points = enumerate_structured_space("mini_git", SWEEP_CLASSES)
    return engine, points


class TestExecutionPathIdentity:
    def test_pooled_sweep_bit_identical_to_serial(self):
        serial_engine, points = _sweep_engine()
        serial = serial_engine.explore(points)
        pooled_engine, points = _sweep_engine(parallelism="threads:4")
        pooled = pooled_engine.explore(points)
        assert serial.executed == len(points) > 0
        assert _report_signature(pooled) == _report_signature(serial)

    def test_distributed_sweep_bit_identical_to_serial(self, tmp_path):
        spec = CampaignSpec(
            target="mini_git", workload="commit", seed=13,
            functions=["write", "fwrite"], fault_classes=SWEEP_CLASSES,
            store_path=str(tmp_path / "faults.jsonl"),
        )
        fabric = _Fabric(shard_size=3, lease_timeout=10.0)
        try:
            client = fabric.client()
            reply = client.submit(spec)
            w0, w1 = fabric.worker(worker_id="w0"), fabric.worker(worker_id="w1")
            worked = True
            while worked:
                worked = w0.run_once() | w1.run_once()
            status = client.status(reply["campaign_id"])
            assert status["state"] == "complete"
            records = client.results(reply["campaign_id"])
        finally:
            fabric.close()

        serial_engine, serial_points = build_engine(spec, store=ResultStore())
        serial = serial_engine.explore(serial_points)
        assert [
            (r["key"].split("|", 1)[1], r["outcome"], r["detail"], r["exit_code"],
             r["location"], r["injections"], r["fingerprint"], r["run_seed"])
            for r in records
        ] == [
            (o.point.key, o.outcome.kind.value, o.outcome.detail,
             o.outcome.exit_code, o.outcome.location, o.injections,
             o.fingerprint, o.run_seed)
            for o in serial.outcomes
        ]
        # Structured dimensions survive the wire round trip.
        structured = [r for r in records if r.get("fault_class") != "errno"]
        assert {r["fault_class"] for r in structured} == set(SWEEP_CLASSES)


# ----------------------------------------------------------------------
# tentpole: usage-profile report from a real campaign trace
# ----------------------------------------------------------------------
class TestUsageProfile:
    def test_profile_built_from_campaign_store(self):
        engine, points = _sweep_engine()
        engine.explore(points)
        profile = build_usage_profile("mini_git", engine.store.results())
        assert profile.runs == len(points)
        ranked = profile.ranked()
        assert ranked and ranked[0].total_calls >= ranked[-1].total_calls
        write = profile.functions["write"]
        assert write.total_calls > 0 and write.runs_reached == profile.runs
        # Both classes target write and fwrite; write gets half the points.
        assert write.points_swept == len(points) // 2
        assert write.fault_classes == set(SWEEP_CLASSES)
        assert write.failures >= 1  # the seeded short-write data loss
        assert 0.0 < write.failure_rate <= 1.0
        # Functions the workload exercises but the sweep never targeted.
        unswept = profile.unswept()
        assert "open" in unswept and "write" not in unswept
        payload = profile.to_dict()
        assert payload["target"] == "mini_git"
        assert payload["functions"][0]["function"] == ranked[0].function
        assert "usage profile for mini_git" in profile.describe()

    def test_profile_tolerates_old_records_without_calls(self):
        old = StoredResult(
            key="w|k", index=0, scenario="s", function="close",
            return_value=-1, errno=9, category="unchecked", workload="w",
            outcome="crash",
        )
        profile = build_usage_profile("legacy", [old])
        assert profile.runs == 1
        close = profile.functions["close"]
        assert close.points_swept == 1 and close.failures == 1
        assert close.fault_classes == {"errno"}
        assert close.total_calls == 0  # no per-call trace in old records


# ----------------------------------------------------------------------
# satellite: fault-spec serialization round-trips + forward compat
# ----------------------------------------------------------------------
class TestFaultSerialization:
    @pytest.mark.parametrize("klass", sorted(FAULT_CLASSES))
    def test_injection_record_round_trips_every_class(self, klass):
        definition = FAULT_CLASSES[klass]
        fault = make_fault(klass, definition.param_dicts()[0])
        record = InjectionRecord(
            index=0, function=definition.functions[0], args=(1, 2),
            injected=True, call_count=3, node="n", fault=fault,
            trigger_ids=["t"],
        )
        clone = InjectionRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert clone.fault is not None
        assert clone.fault.fault_class == klass
        assert clone.fault.params == fault.params
        assert clone.fault.return_value == fault.return_value
        assert clone.fault.errno == fault.errno

    def test_errno_log_without_class_fields_loads_as_errno(self):
        # A record dict written before the taxonomy existed.
        payload = {
            "index": 0, "function": "read", "args": [3, 64], "injected": True,
            "call_count": 1, "has_fault": True, "return_value": -1, "errno": 5,
            "triggers": [], "stack": [], "frames": [], "source": "", "sim_time": 0.0,
        }
        record = InjectionRecord.from_dict(payload)
        assert record.fault.fault_class == "errno"
        assert record.fault.params == ()

    def test_stored_result_round_trips_structured_fields(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        result = StoredResult(
            key="w|k", index=1, scenario="s", function="write",
            return_value=8, errno=None, category="structured", workload="w",
            outcome="data_loss", fault_class="partial_write",
            fault_params={"fraction": 0.5}, calls={"write": 4, "open": 2},
        )
        with ResultStore(path) as store:
            store.record(result)
        loaded = ResultStore(path).get("w|k")
        assert loaded.fault_class == "partial_write"
        assert loaded.fault_params == {"fraction": 0.5}
        assert loaded.calls == {"write": 4, "open": 2}

    def test_old_errno_only_store_loads_and_resumes(self, tmp_path):
        """A store written before the taxonomy (no fault_class /
        fault_params / calls keys) loads with errno defaults and resumes
        with zero re-runs."""
        path = str(tmp_path / "old.jsonl")

        def fresh():
            return ExplorationEngine(
                MiniGitTarget(), seed=7, workload="status",
                store=ResultStore(path),
            )

        points = enumerate_structured_space("mini_git", ["partial_write"])
        fresh().explore(points, max_runs=3)

        # Rewrite the store as an old campaign would have written it.
        stripped = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                payload = json.loads(line)
                for key in ("fault_class", "fault_params", "calls"):
                    payload.pop(key, None)
                stripped.append(json.dumps(payload))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(stripped) + "\n")

        loaded = ResultStore(path)
        assert len(loaded) == 3
        assert all(r.fault_class == "errno" and r.calls == {} for r in loaded)

        resumed = fresh().explore(points)
        assert resumed.resumed == 3 and resumed.complete
        assert resumed.executed == len(points) - 3


# ----------------------------------------------------------------------
# satellite: campaign-spec validation at submit
# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_validate_spec_accepts_structured_campaign(self):
        validate_spec(CampaignSpec(
            target="mini_git", workload="commit",
            fault_classes=["partial_write", "crash_point"],
        ))

    def test_validate_spec_rejects_each_field(self):
        with pytest.raises(ValueError, match="known targets"):
            validate_spec(CampaignSpec(target="nope"))
        with pytest.raises(ValueError, match="known workloads"):
            validate_spec(CampaignSpec(target="mini_git", workload="nope"))
        with pytest.raises(ValueError, match="strategy"):
            validate_spec(CampaignSpec(target="mini_git", strategy="nope"))
        with pytest.raises(ValueError, match="known classes"):
            validate_spec(CampaignSpec(target="mini_git", fault_classes=["nope"]))

    def test_submit_rejects_bad_spec_with_structured_error(self):
        fabric = _Fabric()
        try:
            client = fabric.client()
            with pytest.raises(CampaignServerError, match="known workloads"):
                client.submit(CampaignSpec(target="mini_git", workload="nope"))
            with pytest.raises(CampaignServerError, match="unknown fault class"):
                client.submit(CampaignSpec(target="mini_git", fault_classes=["bogus"]))
            # The rejection is a clean reply, not a dropped connection.
            assert client.ping()["type"] == "pong"
            # And a valid structured spec still submits.
            reply = client.submit(CampaignSpec(
                target="mini_git", workload="status", seed=7,
                functions=["write"], fault_classes=["partial_write"],
            ))
            assert reply["type"] == "submitted"
        finally:
            fabric.close()


# ----------------------------------------------------------------------
# satellite: delivery-hook hygiene (capture/restore/reset)
# ----------------------------------------------------------------------
class TestDeliveryHookHygiene:
    def test_hooks_are_structural_values(self):
        assert PartitionHook([2, 1]) == PartitionHook((1, 2))
        assert hash(DropAllHook()) == hash(DropAllHook())
        network = SimNetwork()
        network.add_delivery_hook(PartitionHook([3]))
        assert network.has_delivery_hook(PartitionHook([3]))
        assert not network.has_delivery_hook(PartitionHook([4]))

    def test_capture_restore_round_trips_hooks(self):
        network = SimNetwork()
        a = network.socket("a")
        network.bind(a, 1)
        network.add_delivery_hook(DropAllHook())
        state = network.capture_state()
        network.clear_delivery_hooks()
        assert network.delivery_hook_count() == 0
        network.restore_state(state)
        assert network.has_delivery_hook(DropAllHook())
        network.sendto(a, b"x", 1)
        assert network.dropped_count >= 1

    def test_os_reset_clears_hooks(self):
        os = SimOS("hygiene")
        os.network.add_delivery_hook(DropAllHook())
        os.reset()
        assert os.network.delivery_hook_count() == 0
        # Delivery works again after the reset.
        a = os.network.socket("a")
        os.network.bind(a, 1)
        os.network.sendto(a, b"ok", 1)
        payload, _source = os.network.recvfrom(a)
        assert payload == b"ok"

    def test_net_partition_does_not_leak_between_runs(self):
        """The drop-everything regression: a partition installed by one run
        must never survive into the next run's fresh cluster."""
        scenario = structured_scenario(
            "net_partition", "sendto", nth=5, params={"scope": "dst"}
        )
        target = PBFTTarget()
        faulted = target.run(WorkloadRequest(workload="simple", scenario=scenario))
        assert faulted.injections == 1
        clean = target.run(WorkloadRequest(workload="simple", scenario=None))
        assert clean.outcome.kind is OutcomeKind.NORMAL
        cluster = clean.stats["cluster"]
        assert cluster.network.delivery_hook_count() == 0


# ----------------------------------------------------------------------
# satellite: short-write audit of the target suite
# ----------------------------------------------------------------------
class TestShortWriteAudit:
    def _facade(self, scenario):
        os = SimOS("audit")
        os.fs.make_dirs("/var/lib/mysql/data")
        gate = make_gate(scenario)
        return LibcFacade(os, gate=gate, node="mysqld"), os

    def test_mi_repair_rejects_short_write(self):
        scenario = structured_scenario(
            "partial_write", "write", nth=1, params={"fraction": 0.5}
        )
        libc, os = self._facade(scenario)
        engine = MyISAMEngine(libc)
        assert engine.mi_repair("t1") == -1  # fixed: short write aborts repair

    def test_mi_repair_clean_path_still_succeeds(self):
        libc, os = self._facade(None)
        engine = MyISAMEngine(libc)
        assert engine.mi_repair("t1") == 0
        assert os.fs.file_contents("/var/lib/mysql/data/t1.MYD") == b"repaired"

    def test_seeded_mini_git_blind_spot_is_silent_without_oracle(self):
        # The seeded bug's defining property: the program itself reports
        # success; only the data-loss oracle (exercised above) catches it.
        scenario = structured_scenario(
            "partial_write", "write", nth=2, params={"fraction": 0.5}
        )
        result = _run_git(scenario, "commit")
        assert result.injections == 1
        assert result.outcome.kind is OutcomeKind.DATA_LOSS
        assert result.outcome.exit_code == 0  # mini_git exited "successfully"
