"""Tests for the trigger framework: interface, registry, stock and custom triggers."""

import pytest

from repro.core.injection.context import CallContext
from repro.core.triggers import (
    CallCountTrigger,
    CallStackTrigger,
    CloseAfterMutexUnlockTrigger,
    ConjunctionTrigger,
    DisjunctionTrigger,
    FrameSpec,
    NegationTrigger,
    ProgramStateTrigger,
    RandomTrigger,
    ReadPipe1K4KwithMutexTrigger,
    ReadPipeTrigger,
    SingletonTrigger,
    Trigger,
    TriggerError,
    WithMutexTrigger,
    declare_trigger,
)
from repro.core.triggers.custom import ArgumentEqualsTrigger
from repro.core.triggers.distributed import DistributedTrigger
from repro.core.triggers.registry import default_registry, ensure_stock_triggers_registered
from repro.common.frames import StackFrame
from repro.oslib.os_model import SimOS


def ctx(function="read", args=(), **kwargs):
    return CallContext(function=function, args=args, **kwargs)


class TestRegistry:
    def test_stock_triggers_registered(self):
        registry = ensure_stock_triggers_registered()
        for name in ("CallStackTrigger", "RandomTrigger", "SingletonTrigger",
                     "CallCountTrigger", "ProgramStateTrigger", "DistributedTrigger",
                     "ReadPipe", "WithMutex", "CloseAfterMutexUnlock"):
            assert registry.known(name), name

    def test_create_initializes(self):
        registry = ensure_stock_triggers_registered()
        trigger = registry.create("CallCountTrigger", {"nth": 3})
        assert isinstance(trigger, CallCountTrigger) and trigger.nth == 3

    def test_unknown_class(self):
        with pytest.raises(TriggerError):
            default_registry().lookup("NoSuchTrigger")

    def test_declare_trigger_decorator(self):
        @declare_trigger("TestOnlyAlways")
        class AlwaysTrigger(Trigger):
            def eval(self, context):
                return True

        registry = default_registry()
        assert registry.known("TestOnlyAlways")
        assert registry.create("TestOnlyAlways").eval(ctx())
        registry.unregister("TestOnlyAlways")

    def test_non_trigger_rejected(self):
        with pytest.raises(TriggerError):
            default_registry().register("Bogus", object)  # type: ignore[arg-type]


class TestCallCountAndSingleton:
    def test_nth_call(self):
        trigger = CallCountTrigger()
        trigger.init({"nth": 3})
        results = [trigger.eval(ctx()) for _ in range(5)]
        assert results == [False, False, True, False, False]
        trigger.reset()
        assert trigger.eval(ctx()) is False

    def test_every(self):
        trigger = CallCountTrigger()
        trigger.init({"nth": 2, "every": 3})
        results = [trigger.eval(ctx()) for _ in range(8)]
        assert results == [False, True, False, False, True, False, False, True]

    def test_invalid_params(self):
        with pytest.raises(TriggerError):
            CallCountTrigger().init({"nth": 0})

    def test_singleton(self):
        trigger = SingletonTrigger()
        trigger.init({"max": 2})
        assert [trigger.eval(ctx()) for _ in range(4)] == [True, True, False, False]
        assert trigger.injections_granted == 2
        trigger.reset()
        assert trigger.eval(ctx()) is True


class TestRandom:
    def test_probability_bounds(self):
        with pytest.raises(TriggerError):
            RandomTrigger().init({"probability": 1.5})

    def test_deterministic_with_seed(self):
        a, b = RandomTrigger(), RandomTrigger()
        a.init({"probability": 0.5, "seed": 7})
        b.init({"probability": 0.5, "seed": 7})
        assert [a.eval(ctx()) for _ in range(50)] == [b.eval(ctx()) for _ in range(50)]

    def test_extremes(self):
        never = RandomTrigger()
        never.init({"probability": 0.0})
        always = RandomTrigger()
        always.init({"probability": 1.0, "seed": 1})
        assert not any(never.eval(ctx()) for _ in range(20))
        assert all(always.eval(ctx()) for _ in range(20))

    def test_reset_replays_sequence(self):
        trigger = RandomTrigger()
        trigger.init({"probability": 0.5, "seed": 3})
        first = [trigger.eval(ctx()) for _ in range(20)]
        trigger.reset()
        assert [trigger.eval(ctx()) for _ in range(20)] == first


class TestCallStack:
    STACK = [
        StackFrame(module="mini_bind", function="render_stats", offset=0x315,
                   file="mini_bind.c", line=315),
        StackFrame(module="mini_bind", function="stats_channel_request", offset=0x340,
                   file="mini_bind.c", line=330),
        StackFrame(module="mini_bind", function="main", offset=0x400, file="mini_bind.c", line=400),
    ]

    def make_context(self):
        return ctx(stack_provider=lambda: list(self.STACK))

    def test_contains_mode(self):
        trigger = CallStackTrigger()
        trigger.init({"frame": {"module": "mini_bind", "function": "stats_channel_request"}})
        assert trigger.eval(self.make_context())
        trigger = CallStackTrigger()
        trigger.init({"frame": {"module": "other"}})
        assert not trigger.eval(self.make_context())

    def test_offset_and_line_matching(self):
        trigger = CallStackTrigger()
        trigger.init({"frame": {"module": "mini_bind", "offset": "0x315"}})
        assert trigger.eval(self.make_context())
        trigger = CallStackTrigger()
        trigger.init({"frame": {"file": "mini_bind.c", "line": 330}})
        assert trigger.eval(self.make_context())

    def test_top_mode(self):
        trigger = CallStackTrigger()
        trigger.init({
            "frame": [{"function": "render_stats"}, {"function": "stats_channel_request"}],
            "mode": "top",
        })
        assert trigger.eval(self.make_context())
        trigger = CallStackTrigger()
        trigger.init({"frame": [{"function": "main"}], "mode": "top"})
        assert not trigger.eval(self.make_context())

    def test_multiple_required_frames(self):
        trigger = CallStackTrigger()
        trigger.init({"frame": [{"function": "render_stats"}, {"function": "main"}]})
        assert trigger.eval(self.make_context())

    def test_requires_frames(self):
        with pytest.raises(TriggerError):
            CallStackTrigger().init({})
        with pytest.raises(TriggerError):
            CallStackTrigger().init({"frame": {"module": "x"}, "mode": "sideways"})

    def test_empty_stack_never_matches(self):
        trigger = CallStackTrigger(frames=[FrameSpec(module="x")])
        assert not trigger.eval(ctx())


class TestProgramState:
    def reader(self, values):
        return lambda name: values.get(name)

    def test_compare_to_literal(self):
        trigger = ProgramStateTrigger()
        trigger.init({"variable": "thread_count", "op": ">", "value": "64"})
        context = ctx(state_reader=self.reader({"thread_count": 100}))
        assert trigger.eval(context)
        context = ctx(state_reader=self.reader({"thread_count": 10}))
        assert not trigger.eval(context)

    def test_compare_two_variables(self):
        trigger = ProgramStateTrigger()
        trigger.init({"variable": "numConnections", "op": "==", "other": "maxConnections"})
        context = ctx(state_reader=self.reader({"numConnections": 5, "maxConnections": 5}))
        assert trigger.eval(context)

    def test_unknown_variable_is_false(self):
        trigger = ProgramStateTrigger()
        trigger.init({"variable": "ghost", "value": 1})
        assert not trigger.eval(ctx(state_reader=self.reader({})))
        assert not trigger.eval(ctx())  # no reader at all

    def test_invalid_params(self):
        with pytest.raises(TriggerError):
            ProgramStateTrigger().init({"variable": "x", "op": "~", "value": 1})
        with pytest.raises(TriggerError):
            ProgramStateTrigger().init({"variable": "x"})


class TestComposition:
    class Flag(Trigger):
        def __init__(self, value):
            self.value = value
            self.calls = 0

        def eval(self, context):
            self.calls += 1
            return self.value

    def test_conjunction_short_circuit(self):
        no = self.Flag(False)
        yes = self.Flag(True)
        conjunction = ConjunctionTrigger([no, yes])
        assert not conjunction.eval(ctx())
        assert no.calls == 1 and yes.calls == 0  # short-circuited

    def test_disjunction_short_circuit(self):
        yes = self.Flag(True)
        other = self.Flag(True)
        disjunction = DisjunctionTrigger([yes, other])
        assert disjunction.eval(ctx())
        assert other.calls == 0

    def test_negation(self):
        negation = NegationTrigger(self.Flag(False))
        assert negation.eval(ctx())
        with pytest.raises(TriggerError):
            NegationTrigger().init({})

    def test_empty_composite_rejected(self):
        with pytest.raises(TriggerError):
            ConjunctionTrigger().init({})


class TestCustomTriggers:
    def test_argument_equals(self):
        trigger = ArgumentEqualsTrigger()
        trigger.init({"index": 1, "value": 5})
        assert trigger.eval(ctx(function="fcntl", args=(3, 5)))
        assert not trigger.eval(ctx(function="fcntl", args=(3, 4)))
        assert not trigger.eval(ctx(function="fcntl", args=(3,)))

    def test_with_mutex_tracks_lock_state(self):
        trigger = WithMutexTrigger()
        assert not trigger.eval(ctx(function="read"))
        trigger.eval(ctx(function="pthread_mutex_lock", args=(1,)))
        assert trigger.eval(ctx(function="read"))
        trigger.eval(ctx(function="pthread_mutex_unlock", args=(1,)))
        assert not trigger.eval(ctx(function="read"))

    def test_read_pipe_trigger(self):
        os = SimOS("p")
        read_fd, _write_fd = os.fs.make_pipe()
        regular = os.fs.open("/f.txt", 0o100 | 1)  # O_CREAT|O_WRONLY via add
        trigger = ReadPipeTrigger()
        trigger.init({"low": 1024, "high": 4096})
        assert trigger.eval(ctx(function="read", args=(read_fd, 0, 2048), os=os))
        assert not trigger.eval(ctx(function="read", args=(read_fd, 0, 10), os=os))
        assert not trigger.eval(ctx(function="read", args=(regular, 0, 2048), os=os))
        assert not trigger.eval(ctx(function="write", args=(read_fd, 0, 2048), os=os))
        with pytest.raises(TriggerError):
            ReadPipeTrigger().init({"low": 10, "high": 1})

    def test_read_pipe_with_mutex_composite(self):
        os = SimOS("p")
        read_fd, _ = os.fs.make_pipe()
        trigger = ReadPipe1K4KwithMutexTrigger()
        call = ctx(function="read", args=(read_fd, 0, 2048), os=os)
        assert not trigger.eval(call)  # no mutex held yet
        trigger.eval(ctx(function="pthread_mutex_lock", args=(9,)))
        assert trigger.eval(call)

    def test_close_after_unlock_by_call_distance(self):
        trigger = CloseAfterMutexUnlockTrigger()
        trigger.init({"distance": 2})
        assert not trigger.eval(ctx(function="close", global_index=1))
        trigger.eval(ctx(function="pthread_mutex_unlock", global_index=5))
        assert trigger.eval(ctx(function="close", global_index=6))
        assert not trigger.eval(ctx(function="close", global_index=20))

    def test_distributed_trigger_delegates(self):
        class FakeController:
            def __init__(self):
                self.seen = []

            def should_inject(self, node, function, args, context):
                self.seen.append((node, function))
                return node == "replica1"

        controller = FakeController()
        trigger = DistributedTrigger()
        trigger.init({"controller": controller})
        assert trigger.eval(ctx(function="sendto", node="replica1"))
        assert not trigger.eval(ctx(function="sendto", node="replica2"))
        assert controller.seen[0] == ("replica1", "sendto")
        with pytest.raises(TriggerError):
            DistributedTrigger().init({})
