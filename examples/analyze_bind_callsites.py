#!/usr/bin/env python3
"""Call-site analysis: find unchecked error returns in the BIND analog.

Shows the analyzer's raw output the way a tester would use it interactively:
the classification of every ``malloc``/``open``/``close``/``unlink`` call
site (fully checked / partially checked / unchecked), the file and line of
each suspicious site (the DWARF-style debug info), the generated injection
scenario for one of them, and a replay scenario derived from the injection
log after the fault fired.

Run with::

    python examples/analyze_bind_callsites.py
"""

from repro.core.analysis.analyzer import CallSiteAnalyzer
from repro.core.controller.target import WorkloadRequest
from repro.core.injection.replay import build_replay_scenario, replay_script
from repro.core.scenario.xml_io import scenario_to_xml
from repro.isa.disassembler import Disassembler
from repro.targets.mini_bind import MiniBindTarget


def main() -> None:
    target = MiniBindTarget()
    binary = target.binary()
    print(binary.summary())

    analyzer = CallSiteAnalyzer()
    report = analyzer.analyze(binary, functions=["malloc", "open", "close", "unlink",
                                                 "xmlNewTextWriterDoc"])
    print()
    print(report.summary())

    print("\nsuspicious call sites (unchecked or partially checked):")
    for classification in report.classifications.values():
        for site in classification.unchecked + classification.partially_checked:
            print(f"  {site.describe()}")

    scenarios = analyzer.generate_scenarios(report)
    print(f"\n{len(scenarios)} scenarios generated; the first one as XML:\n")
    print(scenario_to_xml(scenarios[0]))

    print("disassembly around the statistics-channel xml call site:")
    disassembler = Disassembler(binary)
    print(disassembler.disassemble_function("render_stats"))

    # Run the stats workload under the xml scenario and derive a replay.
    xml_scenarios = [s for s in scenarios if s.metadata.get("target_function") == "xmlNewTextWriterDoc"]
    if xml_scenarios:
        result = target.run(WorkloadRequest(workload="stats", scenario=xml_scenarios[0]))
        print(f"\nrunning the stats workload under that scenario: {result.outcome.describe()}")
        injection = result.log.last_injection()
        if injection is not None:
            replay = build_replay_scenario(injection)
            print("\nreplay scenario derived from the log (pin to the same call count):\n")
            print(scenario_to_xml(replay))
            print(replay_script(result.log.injections()))


if __name__ == "__main__":
    main()
