#!/usr/bin/env python3
"""Custom triggers: reproduce the MySQL double-unlock bug with high precision.

This example follows §7.1 of the paper step by step.  The MySQL analog has a
bug in its storage engine: when the final ``close`` of a table-creation call
fails, the error-handling code releases a mutex the normal path has already
released, and the server aborts.

Three injection scenarios of increasing precision target that bug:

1. random injection into every ``close`` call (low precision — most injected
   failures derail the workload before the buggy call site is reached);
2. random injection restricted, via a call-stack trigger, to ``close`` calls
   issued from the storage-engine module;
3. the custom ``CloseAfterMutexUnlock`` trigger, which fires only for a
   ``close`` issued within two calls of a mutex unlock — this reproduces the
   bug on every run.

Run with::

    python examples/custom_trigger_mysql.py
"""

from repro.core.controller.target import WorkloadRequest
from repro.core.scenario.xml_io import scenario_to_xml
from repro.targets.mini_mysql import MiniMySQLTarget
from repro.targets.mini_mysql.scenarios import (
    close_after_unlock_scenario,
    random_close_in_module_scenario,
    random_close_scenario,
)


def measure(target: MiniMySQLTarget, scenario_factory, runs: int, label: str) -> float:
    activations = 0
    for index in range(runs):
        result = target.run(
            WorkloadRequest(workload="merge-big", scenario=scenario_factory(index))
        )
        if target.outcome_is_double_unlock(result.outcome):
            activations += 1
    precision = activations / runs
    print(f"  {label:<42} {precision:6.0%}  ({activations}/{runs} runs hit the bug)")
    return precision


def main() -> None:
    target = MiniMySQLTarget()
    runs = 40

    print("The close-after-unlock scenario, as it would be written in the XML language:\n")
    print(scenario_to_xml(close_after_unlock_scenario(distance=2)))

    print(f"precision of each scenario over {runs} merge-big runs:")
    measure(target, lambda index: random_close_scenario(0.1, seed=index), runs,
            "random 10% on every close")
    measure(target, lambda index: random_close_in_module_scenario(0.1, seed=index), runs,
            "random 10%, only closes from the myisam module")
    measure(target, lambda index: close_after_unlock_scenario(2), 10,
            "custom trigger: close right after mutex unlock")

    print("\nA single run under the custom trigger, with the injection log:")
    result = target.run(
        WorkloadRequest(workload="merge-big", scenario=close_after_unlock_scenario(2))
    )
    print(f"  outcome: {result.outcome.describe()}")
    print("  " + result.log.summary().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
