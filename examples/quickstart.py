#!/usr/bin/env python3
"""Quickstart: find recovery-code bugs in a program with zero annotations.

The script walks the full LFI pipeline on a small program compiled from
mini-C:

1. profile the simulated shared libraries (what errors can they return?);
2. run the call-site analyzer on the program binary to find call sites that
   do not check those errors;
3. let the analyzer generate injection scenarios (call-stack triggers pinned
   to each suspicious site);
4. run the program's workload once per scenario and report the crashes the
   injections exposed.

Two knobs worth knowing about:

* ``parallelism=`` — every campaign entry point
  (``LFIController.test_automatically`` / ``run_campaign``,
  ``TestCampaign.run``, the experiment harnesses) accepts ``"serial"``
  (default), an integer worker count (a process pool — the backend that
  scales these CPU-bound targets), ``"threads[:N]"``, ``"processes[:N]"``
  or an ``ExecutionBackend`` instance.  Scenario runs are independent, so
  parallel campaigns return bit-identical results to serial ones — results
  keep submission order and per-run seeds are derived deterministically.
* the **artifact cache** — library binaries and their static fault profiles
  are memoized process-wide (``repro.core.profiler.cache``), so the first
  controller pays the assemble + profile cost and every later controller,
  experiment, or benchmark in the same process reuses the artifacts.  Since
  the VM's predecoded program is cached on the image itself, the cache now
  also shares the compiled closure array across every run of a campaign.
* the **execution engine** — ``Machine(..., engine=...)`` picks between
  ``"compiled"`` (the default: instructions predecoded once per image into
  specialized closures, then straight-line blocks fused into single
  *superclosure* functions with dead CMP/Jcc flag work elided and a
  coverage-off hot loop for untracked runs; see
  ``benchmarks/bench_vm_speed.py`` / ``bench_dataplane.py``),
  ``"compiled-steps"`` (the per-instruction closure loop, kept as a second
  oracle and benchmark baseline) and ``"reference"`` (the original
  decode-as-you-go interpreter, the differential-testing ground truth).
  Compiled targets accept the same knob through
  ``WorkloadRequest(options={"engine": ...})``, and ``REPRO_ENGINE`` sets
  the process-wide default.
* ``explore()`` — instead of one scenario per suspicious site,
  systematically cover the whole (call site x error return x errno) space
  with a pluggable strategy, deduplicated failures, and a resumable
  JSON-lines result store (see the walkthrough at the bottom and
  ``repro.core.exploration``).
* **snapshot-accelerated campaigns** — compiled-target runs are
  forkserver-style by default (``repro.vm.snapshot``): a resident boot
  template is restored per request in O(dirty words) via copy-on-write
  memory instead of rebuilding the OS fixture/libc/machine, and campaigns
  additionally *share prefixes*: the analyzer's (site x errno) scenario
  families differ only in the injected fault, so the group's common
  prefix — boot plus every instruction up to the trigger site — executes
  once, a ``MidRunCapture`` freezes the machine at the injection point,
  and each sibling scenario resumes there with its own fault (or, if the
  trigger never fires under the workload, simply inherits the probe run's
  result).  Results are bit-identical to the per-scenario rebuild path
  (``tests/test_snapshot.py``), which stays selectable via
  ``WorkloadRequest(options={"snapshots": False})`` and
  ``campaign.run(..., share_prefixes=False)``;
  ``benchmarks/bench_snapshot.py`` tracks the >= 2x campaign-throughput
  win in ``BENCH_snapshot.json``.
* **parallel prefix groups, prefix trees, errno-blind suffixes** — prefix
  sharing composes with the pool backends: ``share_prefixes=True`` with
  ``parallelism="processes:4"`` ships each scenario group to a worker as
  one task (``run_groups`` in ``repro.core.controller.executor``) — the
  worker runs the probe and resumes the siblings locally, so the two
  throughput levers multiply instead of cancelling.  Groups are
  hierarchical: call-count variants of one site share the sub-prefix up to
  their earliest divergence via nested mid-run captures, and suffixes that
  never read ``errno`` (a libc errno-read counter proves it) collapse
  errno-only variants into patched replicas of one run.  The mini_apache
  server world forks by capture/restore instead of ``copy.deepcopy``.
  Bit-identity across serial/threads/processes schedules is enforced by
  ``tests/test_prefix_parallel.py``;
  ``benchmarks/bench_prefix_parallel.py`` writes
  ``BENCH_prefix_parallel.json``.
* **the dataplane: run-to-completion batches + delta results** — pooled
  shared campaigns shard their scenario groups round-robin into one batch
  per worker (``GroupBatchTask`` / ``run_group_batches`` in
  ``repro.core.controller.executor``); each worker drains its batch
  back-to-back on a warm boot template instead of paying a pool round trip
  per group.  Workers publish each run's OS on the *delta result channel*:
  a ``DeltaOSClone`` pickles only the OS subsystems the run changed since
  boot and rehydrates lazily on the parent against its memoized boot
  template (``WorkloadRequest(options={"os_channel": "full"})`` restores
  the full-state clone, the differential oracle).
  ``benchmarks/bench_dataplane.py`` writes ``BENCH_dataplane.json``;
  ``tests/test_dataplane.py`` enforces bit-identity through the whole
  stack.  See the "Execution pipeline architecture" section of the
  package docstring (``repro/__init__.py``) for the five-layer walk.
* **the campaign fabric** — for explorations that outlive one process,
  a resident coordinator (``repro-campaignd serve``) accepts campaign
  specs over a line-oriented JSON protocol (``doc/PROTOCOL.md``),
  shards the schedule across pull-model worker nodes
  (``repro-campaignd worker``), streams results as they complete, and
  checkpoints every record in the same JSON-lines store ``explore()``
  uses — so killing the daemon, a worker, or both mid-campaign loses
  nothing: resubmit the same spec (``repro-campaign submit ...
  --store X.jsonl``) and only unfinished points run.  Results are
  bit-identical to a local serial ``explore()``.  See the walkthrough
  at the bottom and ``repro.distributed``.

Run with::

    python examples/quickstart.py
"""

import os
import tempfile

from repro import ExhaustiveStrategy, LFIController, ResultStore, compile_source
from repro.core.controller.monitor import RunResult, classify_exit_status
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.oslib.os_model import SimOS
from repro.vm.machine import Machine

# A small "log shipper": it rotates a log file and uploads it.  Two of its
# library calls are not checked — exactly the kind of low-probability error
# path that input testing never reaches.
PROGRAM = r"""
int rotate_log() {
    int fd;
    int n;
    int buffer[64];
    fd = open("/var/log/app.log", 0);
    if (fd < 0) {
        puts("nothing to rotate");
        return 0;
    }
    n = read(fd, buffer, 32);          /* BUG: read error not checked */
    write(fd, buffer, n);
    close(fd);
    return n;
}

int upload(int size) {
    int payload;
    payload = malloc(size);            /* BUG: allocation not checked */
    *payload = 42;
    puts("uploaded");
    free(payload);
    return 0;
}

int main() {
    int rotated;
    rotated = rotate_log();
    if (rotated < 0) {
        return 1;
    }
    return upload(256);
}
"""


class LogShipperTarget:
    """Minimal target adapter: how to build and run the program under test."""

    name = "log_shipper"

    def binary(self):
        return compile_source(PROGRAM, name=self.name)

    def workloads(self):
        return ["default"]

    def run(self, request: WorkloadRequest) -> RunResult:
        os = SimOS(self.name)
        os.fs.add_file("/var/log/app.log", b"2026-06-14 INFO started\n" * 4)
        gate = make_gate(request.scenario, observe_only=request.observe_only)
        machine = Machine(self.binary(), os=os, gate=gate)
        status = machine.run()
        return RunResult(outcome=classify_exit_status(status), log=gate.log)


def main() -> None:
    controller = LFIController(LogShipperTarget())

    profile = controller.profile_libraries()
    print(f"profiled {len(profile)} library functions "
          f"(e.g. read can fail with {profile.function('read').all_errnos()})")

    analysis = controller.analyze_target()
    print()
    print(analysis.summary())

    scenarios = controller.generate_scenarios(analysis)
    print(f"\nanalyzer generated {len(scenarios)} injection scenarios")

    # The campaign fans out over a process pool (the backend that scales
    # these CPU-bound targets with cores); an integer worker count does the
    # same, and "threads:N" exists for targets that block on I/O.  The
    # result is bit-identical to a serial run.
    report = controller.test_automatically(workloads=["default"], parallelism="processes:2")
    print()
    print(report.summary())

    # ------------------------------------------------------------------
    # Fault-space exploration: the systematic alternative to step 3-4.
    #
    # ``explore()`` enumerates EVERY (call site x error return x errno)
    # combination, schedules it in priority order (unchecked sites first,
    # novel fault classes before repeats), deduplicates equivalent failures
    # by (function, errno, outcome, stack fingerprint), and checkpoints
    # each completed run in a JSON-lines store.
    store_path = os.path.join(tempfile.gettempdir(), "quickstart-exploration.jsonl")
    if os.path.exists(store_path):
        os.unlink(store_path)
    exploration = controller.explore(
        strategy=ExhaustiveStrategy(),      # or BoundarySampleStrategy(),
        store=ResultStore(store_path),      # RandomSampleStrategy(seed=0)
        analysis=analysis,                  # reuse step 2's analysis
        seed=7,
    )
    print()
    print(exploration.summary())

    # The store makes exploration resumable: running again with the same
    # store replays everything from disk and executes nothing new.  Kill a
    # long campaign at any point and it picks up where it left off.
    resumed = controller.explore(
        strategy=ExhaustiveStrategy(), store=ResultStore(store_path),
        analysis=analysis, seed=7,
    )
    print(
        f"\nresumed exploration: {resumed.executed} scenario runs executed, "
        f"{resumed.resumed} replayed from {store_path}"
    )
    os.unlink(store_path)

    # ------------------------------------------------------------------
    # Snapshot-accelerated campaigns (forkserver-style execution).
    #
    # Compiled targets run from a resident boot template by default, and
    # serial campaigns group scenarios that differ only in the injected
    # fault so their common prefix executes once.  Both accelerations are
    # bit-identical to the reference rebuild path — prove it here.
    from repro.core.controller.campaign import TestCampaign
    from repro.targets.mini_git import MiniGitTarget

    git = MiniGitTarget()
    git_controller = LFIController(git)
    git_scenarios = git_controller.generate_scenarios(git_controller.analyze_target())
    campaign = TestCampaign(git, workload="status")
    accelerated = campaign.run(git_scenarios, seed=1, include_baseline=False)
    reference = campaign.run(git_scenarios, seed=1, include_baseline=False,
                             share_prefixes=False, snapshots=False)
    assert [o.outcome.kind for o in accelerated.outcomes] == \
           [o.outcome.kind for o in reference.outcomes]
    print(f"\nsnapshot-accelerated campaign over {len(git_scenarios)} mini_git "
          f"scenarios: outcomes identical to the rebuild path "
          f"(see benchmarks/bench_snapshot.py for the throughput win)")

    # ------------------------------------------------------------------
    # Parallel prefix groups: sharing composes with the pool backends.
    #
    # Each scenario group ships to a worker as one task — the worker runs
    # the group's probe and resumes the siblings locally — so a pooled
    # shared campaign stays bit-identical to the serial shared one.
    fanout = campaign.run(git_scenarios, seed=1, include_baseline=False,
                          share_prefixes=True, parallelism="threads:2")
    assert [o.outcome.kind for o in fanout.outcomes] == \
           [o.outcome.kind for o in reference.outcomes]
    print(f"group-per-task fan-out over {len(git_scenarios)} scenarios "
          f"(threads:2): outcomes identical to serial "
          f"(see benchmarks/bench_prefix_parallel.py)")

    # ------------------------------------------------------------------
    # The campaign fabric: a resident coordinator + worker nodes.
    #
    # Everything above runs inside one process.  The fabric runs the same
    # exploration as a service: submit a campaign *spec* (target name,
    # workload, seed, filters — JSON, no pickled objects) to a resident
    # coordinator, which shards the deterministic schedule across worker
    # nodes and checkpoints every streamed-in record to the same
    # JSON-lines store before acknowledging it.  Shell version:
    #
    #   repro-campaignd serve --port 7070 &
    #   repro-campaignd worker --port 7070 &
    #   repro-campaign submit --target mini_git --workload status \
    #       --seed 7 --store /tmp/git.jsonl --wait
    #
    # Kill the daemon (or a worker, or both) mid-campaign and resubmit
    # the same command: the reply's "resumed" count shows how much was
    # served from the store; only unfinished points execute, and the
    # merged store is bit-identical to a serial explore().  Protocol
    # reference: doc/PROTOCOL.md.  The same moving parts, in-process:
    from repro.distributed import (
        CampaignClient, CampaignCoordinator, CampaignSpec, CampaignWorker,
    )

    coordinator = CampaignCoordinator(port=0)       # kernel-picked port
    address = coordinator.start()
    store_path = os.path.join(tempfile.gettempdir(), "quickstart-fabric.jsonl")
    if os.path.exists(store_path):
        os.unlink(store_path)
    try:
        with CampaignClient(address) as fabric_client:
            submitted = fabric_client.submit(CampaignSpec(
                target="mini_git", workload="status", seed=7,
                store_path=store_path,
            ))
            worker = CampaignWorker(address, worker_id="quickstart-w0")
            while worker.run_once():                # drain the shard queue
                pass
            worker.close()
            final = fabric_client.status(submitted["campaign_id"])
            print(f"\ncampaign fabric: {final['completed']}/{final['total']} "
                  f"points complete via worker nodes (state={final['state']}); "
                  f"resubmitting resumes from {store_path}")
    finally:
        coordinator.stop()
        if os.path.exists(store_path):
            os.unlink(store_path)


if __name__ == "__main__":
    main()
