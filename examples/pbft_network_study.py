#!/usr/bin/env python3
"""Studying system behaviour: PBFT under degraded networks and DoS attacks.

Reproduces the §7.3 methodology: distributed triggers forward every
intercepted ``sendto``/``recvfrom`` to a central controller whose policy has
a global view of the cluster.  Three studies:

* throughput slowdown as packet loss grows (Figure 3);
* silencing one replica entirely (throughput slightly improves);
* a rotating attack that injects bursts of faults into one replica at a
  time, aiming to confuse the view-change protocol (throughput collapses).

Run with::

    python examples/pbft_network_study.py
"""

from repro.core.controller.target import WorkloadRequest
from repro.targets.pbft import PBFTTarget
from repro.targets.pbft.scenarios import (
    packet_loss_experiment,
    rotating_attack_experiment,
    silence_replica_experiment,
)

REQUESTS = 30


def run(target: PBFTTarget, scenario=None, controller=None):
    options = {"requests": REQUESTS}
    if controller is not None:
        options["shared_objects"] = {"controller": controller}
    return target.run(WorkloadRequest(workload="simple", scenario=scenario, options=options))


def main() -> None:
    target = PBFTTarget()

    baseline = run(target)
    print(f"baseline: {baseline.stats['throughput']:7.1f} req/s "
          f"({baseline.stats['messages_sent']} messages, "
          f"{baseline.stats['rounds']} protocol rounds)")

    print("\npacket loss study (Figure 3):")
    for probability in (0.1, 0.8, 0.9, 0.95, 0.99):
        scenario, controller = packet_loss_experiment(probability, seed=1)
        result = run(target, scenario, controller)
        slowdown = result.stats["simulated_seconds"] / baseline.stats["simulated_seconds"]
        print(f"  loss {probability:4.0%}: slowdown {slowdown:4.2f}x  "
              f"(state transfers: {result.stats['state_transfers']}, "
              f"view changes: {result.stats['view_changes']})")

    print("\nDoS studies:")
    scenario, controller = silence_replica_experiment("replica3")
    result = run(target, scenario, controller)
    ratio = result.stats["throughput"] / baseline.stats["throughput"]
    print(f"  silence replica3:  {result.stats['throughput']:7.1f} req/s "
          f"({ratio:.2f}x baseline — less communication to process)")

    scenario, controller = rotating_attack_experiment(burst=100)
    result = run(target, scenario, controller)
    ratio = result.stats["throughput"] / baseline.stats["throughput"]
    print(f"  rotating attack:   {result.stats['throughput']:7.1f} req/s "
          f"({ratio:.2f}x baseline, {result.stats['view_changes']} view changes forced)")
    print("\n" + controller.summary())


if __name__ == "__main__":
    main()
