"""Shared infrastructure for the compiled (mini-C) targets.

A compiled target provides mini-C source, an OS fixture (the files and
directories its workloads expect), a set of named workloads (each a sequence
of entry-point invocations, mirroring a test-suite run), and optional
post-run oracles that detect silent failures such as data loss.

Ground truth for the Table 4 accuracy experiment is embedded in the sources
as ``//@check:`` annotations on library-call lines:

* ``//@check:yes``          — the return value is checked (analyzer should say checked)
* ``//@check:no``           — the return value is not checked
* ``//@check:interproc``    — checked, but only inside a helper function, so
  the intra-procedural analyzer is *expected* to misreport it (a false
  positive, like the BIND ``open`` site in the paper's Table 4)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.controller.monitor import (
    Outcome,
    OutcomeKind,
    RunResult,
    classify_exit_status,
)
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.coverage.tracker import CoverageTracker
from repro.isa.binary import BinaryImage
from repro.minicc import compile_source
from repro.oslib.libc import SimLibc
from repro.oslib.os_model import SimOS
from repro.vm.machine import Machine


# ----------------------------------------------------------------------
# ground-truth annotations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GroundTruthEntry:
    """One annotated library call site in a target's source."""

    function: str
    line: int
    checked: bool
    interprocedural: bool = False

    @property
    def analyzer_expected_to_err(self) -> bool:
        """True when the intra-procedural analyzer is expected to get it wrong."""
        return self.interprocedural


_ANNOTATION_RE = re.compile(r"//@check:(?P<verdict>yes|no|interproc)\b")
_CALL_RE = re.compile(r"\b(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\(")


def extract_ground_truth(source: str, functions: Optional[Sequence[str]] = None
                         ) -> List[GroundTruthEntry]:
    """Parse ``//@check:`` annotations out of mini-C source text."""
    wanted = set(functions) if functions is not None else None
    entries: List[GroundTruthEntry] = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        annotation = _ANNOTATION_RE.search(line)
        if not annotation:
            continue
        verdict = annotation.group("verdict")
        code = line[: annotation.start()]
        called: Optional[str] = None
        for match in _CALL_RE.finditer(code):
            name = match.group("name")
            if name in ("if", "while", "for", "return"):
                continue
            called = name
            if wanted is None or name in wanted:
                break
        if called is None:
            continue
        if wanted is not None and called not in wanted:
            continue
        entries.append(
            GroundTruthEntry(
                function=called,
                line=line_number,
                checked=verdict in ("yes", "interproc"),
                interprocedural=verdict == "interproc",
            )
        )
    return entries


# ----------------------------------------------------------------------
# workload plans and known bugs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadStep:
    """One entry-point invocation within a workload."""

    entry: str = "main"
    args: Tuple[int, ...] = ()
    description: str = ""


@dataclass(frozen=True)
class KnownBug:
    """Ground-truth description of a planted bug (for the Table 1 benchmark)."""

    identifier: str
    system: str
    library_function: str
    kind: OutcomeKind
    description: str


# ----------------------------------------------------------------------
# the compiled-target adapter
# ----------------------------------------------------------------------
class CompiledTarget:
    """Base class for targets written in mini-C and run inside the VM."""

    #: Subclasses set these.
    name: str = "target"
    source_file: Optional[str] = None
    known_bugs: Tuple[KnownBug, ...] = ()
    #: Functions relevant to the Table 4 accuracy experiment.
    accuracy_functions: Tuple[str, ...] = ()

    _binary_cache: Dict[str, BinaryImage] = {}

    # -- pieces subclasses provide -------------------------------------
    def source(self) -> str:
        raise NotImplementedError

    def make_os(self) -> SimOS:
        raise NotImplementedError

    def workload_plan(self, workload: str) -> List[WorkloadStep]:
        raise NotImplementedError

    def workloads(self) -> List[str]:
        raise NotImplementedError

    def check_oracles(self, os: SimOS) -> Optional[Outcome]:
        """Post-run oracle; return a failure outcome for silent failures."""
        return None

    # -- common implementation ------------------------------------------
    def binary(self) -> BinaryImage:
        cached = CompiledTarget._binary_cache.get(self.name)
        if cached is None:
            cached = compile_source(
                self.source(), name=self.name, source_file=self.source_file
            )
            CompiledTarget._binary_cache[self.name] = cached
        return cached

    def ground_truth(self) -> List[GroundTruthEntry]:
        functions = self.accuracy_functions or None
        return extract_ground_truth(self.source(), functions)

    def run(self, request: WorkloadRequest) -> RunResult:
        """Execute one workload, optionally under an injection scenario."""
        binary = self.binary()
        os = self.make_os()
        gate = make_gate(request.scenario, observe_only=request.observe_only,
                         run_seed=request.options.get("run_seed"))
        libc = SimLibc(os)
        coverage = CoverageTracker() if request.collect_coverage else None

        # "compiled" (closure-threaded, the default) or "reference" (the
        # decode-as-you-go oracle); the differential suite runs both.
        engine = request.options.get("engine")

        outcome = Outcome(kind=OutcomeKind.NORMAL)
        steps_run = 0
        for step in self.workload_plan(request.workload):
            machine = Machine(binary, os=os, libc=libc, gate=gate, coverage=coverage,
                              engine=engine)
            status = machine.run(entry=step.entry, args=step.args)
            steps_run += 1
            step_outcome = classify_exit_status(status)
            if step_outcome.kind in (OutcomeKind.CRASH, OutcomeKind.ABORT, OutcomeKind.HANG):
                outcome = step_outcome
                break
            if step_outcome.kind is OutcomeKind.ERROR_EXIT and outcome.kind is OutcomeKind.NORMAL:
                # Error exits are recorded but do not stop the test suite,
                # like a failing test case in a larger suite.
                outcome = step_outcome
        if coverage is not None:
            coverage.finish_run()

        if not outcome.is_high_impact:
            oracle = self.check_oracles(os)
            if oracle is not None:
                outcome = oracle

        stats = {
            "steps_run": steps_run,
            "library_calls": gate.total_calls,
            "os": os,
        }
        if coverage is not None:
            stats["coverage"] = coverage
        return RunResult(outcome=outcome, log=gate.log, stats=stats)


__all__ = [
    "CompiledTarget",
    "GroundTruthEntry",
    "KnownBug",
    "WorkloadStep",
    "extract_ground_truth",
]
