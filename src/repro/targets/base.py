"""Shared infrastructure for the compiled (mini-C) targets.

A compiled target provides mini-C source, an OS fixture (the files and
directories its workloads expect), a set of named workloads (each a sequence
of entry-point invocations, mirroring a test-suite run), and optional
post-run oracles that detect silent failures such as data loss.

Execution is forkserver-style by default: :meth:`CompiledTarget.run` opens
an execution *session* that restores a cached boot snapshot (OS fixture +
libc + resident machine, see :mod:`repro.vm.snapshot`) instead of rebuilding
them per request, and rewinds copy-on-write memory between workload steps.
``WorkloadRequest.options["snapshots"] = False`` selects the reference
fresh-build path, which the differential suite uses as the oracle — both
paths are observably identical.  The session/plan decomposition
(:meth:`open_session` / :meth:`execute_plan` / :meth:`finalize_run`) is also
what the prefix-sharing campaign scheduler
(:mod:`repro.core.controller.prefix`) drives to run a scenario group's
common prefix once and only the post-trigger suffix per fault.

Ground truth for the Table 4 accuracy experiment is embedded in the sources
as ``//@check:`` annotations on library-call lines:

* ``//@check:yes``          — the return value is checked (analyzer should say checked)
* ``//@check:no``           — the return value is not checked
* ``//@check:interproc``    — checked, but only inside a helper function, so
  the intra-procedural analyzer is *expected* to misreport it (a false
  positive, like the BIND ``open`` site in the paper's Table 4)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.controller.monitor import (
    Outcome,
    OutcomeKind,
    RunResult,
    classify_exit_status,
)
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.core.profiler.cache import cached_boot_template, libc_spec_fingerprint
from repro.coverage.tracker import CoverageTracker
from repro.isa.binary import BinaryImage
from repro.minicc import compile_source
from repro.oslib.libc import SimLibc
from repro.oslib.os_model import SimOS
from repro.vm.machine import Machine
from repro.vm.snapshot import BootTemplate


# ----------------------------------------------------------------------
# ground-truth annotations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GroundTruthEntry:
    """One annotated library call site in a target's source."""

    function: str
    line: int
    checked: bool
    interprocedural: bool = False

    @property
    def analyzer_expected_to_err(self) -> bool:
        """True when the intra-procedural analyzer is expected to get it wrong."""
        return self.interprocedural


_ANNOTATION_RE = re.compile(r"//@check:(?P<verdict>yes|no|interproc)\b")
_CALL_RE = re.compile(r"\b(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\(")


def extract_ground_truth(source: str, functions: Optional[Sequence[str]] = None
                         ) -> List[GroundTruthEntry]:
    """Parse ``//@check:`` annotations out of mini-C source text."""
    wanted = set(functions) if functions is not None else None
    entries: List[GroundTruthEntry] = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        annotation = _ANNOTATION_RE.search(line)
        if not annotation:
            continue
        verdict = annotation.group("verdict")
        code = line[: annotation.start()]
        called: Optional[str] = None
        for match in _CALL_RE.finditer(code):
            name = match.group("name")
            if name in ("if", "while", "for", "return"):
                continue
            called = name
            if wanted is None or name in wanted:
                break
        if called is None:
            continue
        if wanted is not None and called not in wanted:
            continue
        entries.append(
            GroundTruthEntry(
                function=called,
                line=line_number,
                checked=verdict in ("yes", "interproc"),
                interprocedural=verdict == "interproc",
            )
        )
    return entries


# ----------------------------------------------------------------------
# workload plans and known bugs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadStep:
    """One entry-point invocation within a workload."""

    entry: str = "main"
    args: Tuple[int, ...] = ()
    description: str = ""


@dataclass(frozen=True)
class KnownBug:
    """Ground-truth description of a planted bug (for the Table 1 benchmark)."""

    identifier: str
    system: str
    library_function: str
    kind: OutcomeKind
    description: str


# ----------------------------------------------------------------------
# execution sessions (fresh-build or snapshot-backed)
# ----------------------------------------------------------------------
class ExecutionSession:
    """One workload request's execution context.

    Snapshot-backed sessions hold an acquired
    :class:`~repro.vm.snapshot.BootTemplate`: the resident machine's boot
    state is restored at session open (O(dirty words)) and its memory is
    rewound before every workload step, replicating the fresh path's
    machine-per-step semantics without rebuilding anything.  Fresh sessions
    are the reference: a new OS fixture, libc, and one machine per step.
    """

    def __init__(
        self,
        target: "CompiledTarget",
        binary: BinaryImage,
        engine: Optional[str],
        template: Optional[BootTemplate],
    ) -> None:
        self.binary = binary
        self.engine = engine
        self.template = template
        #: Set by the prefix-sharing scheduler when one session serves
        #: several scenario runs; forces :meth:`published_os` to detach.
        self.shared = False
        if template is not None:
            machine = template.restore_boot()
            self.os = machine.os
            self.libc = machine.libc
        else:
            self.os = target.make_os()
            self.libc = SimLibc(self.os)

    @property
    def snapshotted(self) -> bool:
        return self.template is not None

    def machine_for_step(self, gate, coverage) -> Machine:
        """A machine in fresh-construction state, bound to this session's OS."""
        if self.template is not None:
            return self.template.fork_step(gate, coverage)
        return Machine(
            self.binary, os=self.os, libc=self.libc, gate=gate,
            coverage=coverage, engine=self.engine,
        )

    # -- boundary support for the prefix-sharing scheduler ---------------
    def capture_os_boundary(self) -> tuple:
        """OS + libc state at a workload-step boundary (machine-free)."""
        return (
            self.os.capture_state(),
            self.libc.errno,
            list(self.libc.assert_messages),
            self.libc.errno_reads,
        )

    def restore_os_boundary(self, boundary: tuple) -> None:
        os_state, errno, assert_messages, errno_reads = boundary
        self.os.restore_state(os_state)
        self.libc.errno = errno
        self.libc.assert_messages[:] = list(assert_messages)
        self.libc.errno_reads = errno_reads

    def published_os(self):
        """The OS to hand out in run stats.

        A snapshot session's OS is the resident template's and will be
        rewound by the next request (likewise a session shared across a
        scenario group), so a detached clone is published instead — its
        state captured now, its object graph hydrated lazily on first
        access.  The plain fresh path keeps handing out its own OS.
        """
        if self.template is not None or self.shared:
            return self.os.lazy_clone()
        return self.os

    def close(self) -> None:
        if self.template is not None:
            self.template.release()
            self.template = None


# ----------------------------------------------------------------------
# the compiled-target adapter
# ----------------------------------------------------------------------
class CompiledTarget:
    """Base class for targets written in mini-C and run inside the VM."""

    #: Subclasses set these.
    name: str = "target"
    source_file: Optional[str] = None
    known_bugs: Tuple[KnownBug, ...] = ()
    #: Functions relevant to the Table 4 accuracy experiment.
    accuracy_functions: Tuple[str, ...] = ()
    #: Compiled runs are deterministic modulo the injected fault, so the
    #: prefix-sharing campaign scheduler may group their scenarios.
    prefix_shareable: bool = True

    _binary_cache: Dict[str, BinaryImage] = {}

    # -- pieces subclasses provide -------------------------------------
    def source(self) -> str:
        raise NotImplementedError

    def make_os(self) -> SimOS:
        raise NotImplementedError

    def workload_plan(self, workload: str) -> List[WorkloadStep]:
        raise NotImplementedError

    def workloads(self) -> List[str]:
        raise NotImplementedError

    def check_oracles(self, os: SimOS) -> Optional[Outcome]:
        """Post-run oracle; return a failure outcome for silent failures."""
        return None

    # -- common implementation ------------------------------------------
    def binary(self) -> BinaryImage:
        cached = CompiledTarget._binary_cache.get(self.name)
        if cached is None:
            cached = compile_source(
                self.source(), name=self.name, source_file=self.source_file
            )
            CompiledTarget._binary_cache[self.name] = cached
        return cached

    def ground_truth(self) -> List[GroundTruthEntry]:
        functions = self.accuracy_functions or None
        return extract_ground_truth(self.source(), functions)

    def open_session(
        self,
        workload: str,
        engine: Optional[str] = None,
        snapshots: bool = True,
    ) -> ExecutionSession:
        """Open an execution session: snapshot-backed when possible.

        The boot template (OS fixture + libc + resident machine, boot state
        snapshotted) is memoized process-wide, keyed by (workload, engine,
        libc-spec fingerprint).  Templates are exclusive: losing the
        acquisition race — e.g. a thread-pool campaign running this target
        concurrently — falls back to the fresh-build path, which is
        observably identical.
        """
        binary = self.binary()
        template: Optional[BootTemplate] = None
        if snapshots:
            key = (workload, engine or "compiled", libc_spec_fingerprint())
            template = cached_boot_template(
                self,
                key,
                lambda: BootTemplate(
                    Machine(binary, os=self.make_os(), engine=engine)
                ),
            )
            if not template.try_acquire():
                template = None
        try:
            return ExecutionSession(self, binary, engine, template)
        except BaseException:
            # A failing boot restore must not leave the template locked
            # (that would silently demote every later request to the
            # fresh-build path).
            if template is not None:
                template.release()
            raise

    def execute_plan(
        self,
        session: ExecutionSession,
        plan: List[WorkloadStep],
        gate,
        coverage,
        start_index: int = 0,
        outcome: Optional[Outcome] = None,
        boundary_hook=None,
    ) -> Tuple[Outcome, int]:
        """Run *plan* (from *start_index*) inside *session*.

        ``boundary_hook(index, steps_run, outcome)`` fires before each step
        — the prefix-sharing scheduler uses it to snapshot OS/gate state at
        the last boundary before a scenario's trigger fires, which is where
        the group's other scenarios later resume.
        """
        outcome = outcome if outcome is not None else Outcome(kind=OutcomeKind.NORMAL)
        steps_run = start_index
        for index in range(start_index, len(plan)):
            if boundary_hook is not None:
                boundary_hook(index, steps_run, outcome)
            step = plan[index]
            machine = session.machine_for_step(gate, coverage)
            status = machine.run(entry=step.entry, args=step.args)
            steps_run += 1
            step_outcome = classify_exit_status(status)
            if step_outcome.kind in (OutcomeKind.CRASH, OutcomeKind.ABORT, OutcomeKind.HANG):
                outcome = step_outcome
                break
            if step_outcome.kind is OutcomeKind.ERROR_EXIT and outcome.kind is OutcomeKind.NORMAL:
                # Error exits are recorded but do not stop the test suite,
                # like a failing test case in a larger suite.
                outcome = step_outcome
        if coverage is not None:
            coverage.finish_run()
        return outcome, steps_run

    def finalize_run(
        self,
        session: ExecutionSession,
        gate,
        coverage,
        outcome: Outcome,
        steps_run: int,
    ) -> RunResult:
        """Apply post-run oracles and assemble the :class:`RunResult`."""
        if not outcome.is_high_impact:
            oracle = self.check_oracles(session.os)
            if oracle is not None:
                outcome = oracle
        stats = {
            "steps_run": steps_run,
            "library_calls": gate.total_calls,
            "os": session.published_os(),
        }
        if coverage is not None:
            stats["coverage"] = coverage
        return RunResult(outcome=outcome, log=gate.log, stats=stats)

    def run(self, request: WorkloadRequest) -> RunResult:
        """Execute one workload, optionally under an injection scenario."""
        plan = self.workload_plan(request.workload)
        # "compiled" (closure-threaded, the default) or "reference" (the
        # decode-as-you-go oracle); the differential suite runs both.
        engine = request.options.get("engine")
        session = self.open_session(
            request.workload,
            engine=engine,
            snapshots=bool(request.options.get("snapshots", True)),
        )
        try:
            gate = make_gate(request.scenario, observe_only=request.observe_only,
                             run_seed=request.options.get("run_seed"))
            coverage = CoverageTracker() if request.collect_coverage else None
            outcome, steps_run = self.execute_plan(session, plan, gate, coverage)
            return self.finalize_run(session, gate, coverage, outcome, steps_run)
        finally:
            session.close()


__all__ = [
    "CompiledTarget",
    "ExecutionSession",
    "GroundTruthEntry",
    "KnownBug",
    "WorkloadStep",
    "extract_ground_truth",
]
