"""Shared infrastructure for the compiled (mini-C) targets.

A compiled target provides mini-C source, an OS fixture (the files and
directories its workloads expect), a set of named workloads (each a sequence
of entry-point invocations, mirroring a test-suite run), and optional
post-run oracles that detect silent failures such as data loss.

Execution is forkserver-style by default: :meth:`CompiledTarget.run` opens
an execution *session* that restores a cached boot snapshot (OS fixture +
libc + resident machine, see :mod:`repro.vm.snapshot`) instead of rebuilding
them per request, and rewinds copy-on-write memory between workload steps.
``WorkloadRequest.options["snapshots"] = False`` selects the reference
fresh-build path, which the differential suite uses as the oracle — both
paths are observably identical.  The session/plan decomposition
(:meth:`open_session` / :meth:`execute_plan` / :meth:`finalize_run`) is also
what the prefix-sharing campaign scheduler
(:mod:`repro.core.controller.prefix`) drives to run a scenario group's
common prefix once and only the post-trigger suffix per fault.

Ground truth for the Table 4 accuracy experiment is embedded in the sources
as ``//@check:`` annotations on library-call lines:

* ``//@check:yes``          — the return value is checked (analyzer should say checked)
* ``//@check:no``           — the return value is not checked
* ``//@check:interproc``    — checked, but only inside a helper function, so
  the intra-procedural analyzer is *expected* to misreport it (a false
  positive, like the BIND ``open`` site in the paper's Table 4)
"""

from __future__ import annotations

import os as _os_module
import re
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.controller.monitor import (
    Outcome,
    OutcomeKind,
    RunResult,
    classify_exit_status,
)
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.core.profiler.cache import cached_boot_template, libc_spec_fingerprint
from repro.coverage.tracker import CoverageTracker
from repro.isa.binary import BinaryImage
from repro.minicc import compile_source
from repro.oslib.libc import SimLibc
from repro.oslib.os_model import SimOS, diff_state, merge_state
from repro.vm.machine import Machine, resolve_engine
from repro.vm.snapshot import BootTemplate


def default_snapshots() -> bool:
    """Process-wide default for the snapshot execution path.

    ``REPRO_SNAPSHOTS=0`` (or ``false``/``no``) selects the fresh-build
    reference path everywhere an explicit request option does not override
    it — the CI oracle leg runs the whole suite this way to keep the slow
    differential paths exercised.
    """
    return _os_module.environ.get("REPRO_SNAPSHOTS", "1").lower() not in (
        "0",
        "false",
        "no",
    )


# ----------------------------------------------------------------------
# ground-truth annotations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GroundTruthEntry:
    """One annotated library call site in a target's source."""

    function: str
    line: int
    checked: bool
    interprocedural: bool = False

    @property
    def analyzer_expected_to_err(self) -> bool:
        """True when the intra-procedural analyzer is expected to get it wrong."""
        return self.interprocedural


_ANNOTATION_RE = re.compile(r"//@check:(?P<verdict>yes|no|interproc)\b")
_CALL_RE = re.compile(r"\b(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\(")


def extract_ground_truth(source: str, functions: Optional[Sequence[str]] = None
                         ) -> List[GroundTruthEntry]:
    """Parse ``//@check:`` annotations out of mini-C source text."""
    wanted = set(functions) if functions is not None else None
    entries: List[GroundTruthEntry] = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        annotation = _ANNOTATION_RE.search(line)
        if not annotation:
            continue
        verdict = annotation.group("verdict")
        code = line[: annotation.start()]
        called: Optional[str] = None
        for match in _CALL_RE.finditer(code):
            name = match.group("name")
            if name in ("if", "while", "for", "return"):
                continue
            called = name
            if wanted is None or name in wanted:
                break
        if called is None:
            continue
        if wanted is not None and called not in wanted:
            continue
        entries.append(
            GroundTruthEntry(
                function=called,
                line=line_number,
                checked=verdict in ("yes", "interproc"),
                interprocedural=verdict == "interproc",
            )
        )
    return entries


# ----------------------------------------------------------------------
# workload plans and known bugs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadStep:
    """One entry-point invocation within a workload."""

    entry: str = "main"
    args: Tuple[int, ...] = ()
    description: str = ""


@dataclass(frozen=True)
class KnownBug:
    """Ground-truth description of a planted bug (for the Table 1 benchmark)."""

    identifier: str
    system: str
    library_function: str
    kind: OutcomeKind
    description: str


# ----------------------------------------------------------------------
# the delta result channel's published-OS stand-in
# ----------------------------------------------------------------------
class DeltaOSClone:
    """A published OS that ships only its difference from the boot state.

    The full captured OS state of a run is dominated by the boot fixture —
    config files, zone data, environment — that every run of a workload
    shares.  Instead of re-pickling all of it per run (the pre-dataplane
    result channel), this stand-in keeps just the subsystem entries that
    changed since boot and a recipe for the base: ``(target, workload,
    engine)`` keys the process-wide boot-template cache, so the pool parent
    rehydrates against its own memoized template rather than unpacking a
    full state per result.  Hydration is lazy, exactly like
    :class:`~repro.oslib.os_model.LazyOSClone`: campaigns publish far more
    OSes than anyone inspects.
    """

    __slots__ = ("_target", "_workload", "_engine", "_delta", "_os")

    def __init__(self, target, workload: str, engine: Optional[str], delta: dict) -> None:
        self._target = target
        self._workload = workload
        self._engine = engine
        self._delta = delta
        self._os = None

    def _hydrate(self) -> SimOS:
        if self._os is None:
            template = self._target.boot_template(self._workload, self._engine)
            state = merge_state(template.snapshot.os_state, self._delta)
            os = SimOS(state["name"])
            os.restore_state(state)
            self._os = os
        return self._os

    def __getattr__(self, name: str):
        if name.startswith("_"):
            # Never resolve internals through the proxy (see LazyOSClone:
            # unpickling would recurse before the slots exist).
            raise AttributeError(name)
        return getattr(self._hydrate(), name)

    def __getstate__(self) -> dict:
        return {
            "target": self._target,
            "workload": self._workload,
            "engine": self._engine,
            "delta": self._delta,
        }

    def __setstate__(self, state: dict) -> None:
        self._target = state["target"]
        self._workload = state["workload"]
        self._engine = state["engine"]
        self._delta = state["delta"]
        self._os = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaOSClone({self._target.name!r}, {self._workload!r}, "
            f"{len(self._delta)} changed subsystems)"
        )


# ----------------------------------------------------------------------
# execution sessions (fresh-build or snapshot-backed)
# ----------------------------------------------------------------------
class ExecutionSession:
    """One workload request's execution context.

    Snapshot-backed sessions hold an acquired
    :class:`~repro.vm.snapshot.BootTemplate`: the resident machine's boot
    state is restored at session open (O(dirty words)) and its memory is
    rewound before every workload step, replicating the fresh path's
    machine-per-step semantics without rebuilding anything.  Fresh sessions
    are the reference: a new OS fixture, libc, and one machine per step.
    """

    def __init__(
        self,
        target: "CompiledTarget",
        binary: BinaryImage,
        engine: Optional[str],
        template: Optional[BootTemplate],
        workload: Optional[str] = None,
        os_channel: Optional[str] = None,
    ) -> None:
        self.target = target
        self.binary = binary
        self.engine = engine
        self.template = template
        self.workload = workload
        #: Result-channel mode: ``"delta"`` (the default) publishes the OS
        #: as a boot-state diff; ``"full"`` keeps the pre-dataplane
        #: full-state clone (benchmark baseline / differential oracle).
        self.os_channel = os_channel or "delta"
        #: Set by the prefix-sharing scheduler when one session serves
        #: several scenario runs; forces :meth:`published_os` to detach.
        self.shared = False
        if template is not None:
            machine = template.restore_boot()
            self.os = machine.os
            self.libc = machine.libc
        else:
            self.os = target.make_os()
            self.libc = SimLibc(self.os)

    @property
    def snapshotted(self) -> bool:
        return self.template is not None

    def machine_for_step(self, gate, coverage) -> Machine:
        """A machine in fresh-construction state, bound to this session's OS."""
        if self.template is not None:
            return self.template.fork_step(gate, coverage)
        return Machine(
            self.binary, os=self.os, libc=self.libc, gate=gate,
            coverage=coverage, engine=self.engine,
        )

    # -- boundary support for the prefix-sharing scheduler ---------------
    def capture_os_boundary(self) -> tuple:
        """OS + libc state at a workload-step boundary (machine-free)."""
        return (
            self.os.capture_state(),
            self.libc.errno,
            list(self.libc.assert_messages),
            self.libc.errno_reads,
        )

    def restore_os_boundary(self, boundary: tuple) -> None:
        os_state, errno, assert_messages, errno_reads = boundary
        self.os.restore_state(os_state)
        self.libc.errno = errno
        self.libc.assert_messages[:] = list(assert_messages)
        self.libc.errno_reads = errno_reads

    def published_os(self):
        """The OS to hand out in run stats.

        A snapshot session's OS is the resident template's and will be
        rewound by the next request (likewise a session shared across a
        scenario group), so a detached clone is published instead — its
        state captured now, its object graph hydrated lazily on first
        access.  Template-backed sessions publish on the delta channel: a
        :class:`DeltaOSClone` carrying only the subsystems the run changed
        since boot, which is what keeps pool workers from re-pickling the
        whole OS fixture per result.  The plain fresh path keeps handing
        out its own OS.
        """
        if self.template is not None:
            if self.os_channel != "full" and self.workload is not None:
                delta = diff_state(
                    self.template.snapshot.os_state, self.os.capture_state()
                )
                return DeltaOSClone(self.target, self.workload, self.engine, delta)
            return self.os.lazy_clone()
        if self.shared:
            return self.os.lazy_clone()
        return self.os

    def close(self) -> None:
        if self.template is not None:
            self.template.release()
            self.template = None


# ----------------------------------------------------------------------
# the compiled-target adapter
# ----------------------------------------------------------------------
class CompiledTarget:
    """Base class for targets written in mini-C and run inside the VM."""

    #: Subclasses set these.
    name: str = "target"
    source_file: Optional[str] = None
    known_bugs: Tuple[KnownBug, ...] = ()
    #: Functions relevant to the Table 4 accuracy experiment.
    accuracy_functions: Tuple[str, ...] = ()
    #: Compiled runs are deterministic modulo the injected fault, so the
    #: prefix-sharing campaign scheduler may group their scenarios.
    prefix_shareable: bool = True

    _binary_cache: Dict[str, BinaryImage] = {}

    # -- pieces subclasses provide -------------------------------------
    def source(self) -> str:
        raise NotImplementedError

    def make_os(self) -> SimOS:
        raise NotImplementedError

    def workload_plan(self, workload: str) -> List[WorkloadStep]:
        raise NotImplementedError

    def workloads(self) -> List[str]:
        raise NotImplementedError

    def check_oracles(self, os: SimOS) -> Optional[Outcome]:
        """Post-run oracle; return a failure outcome for silent failures."""
        return None

    # -- common implementation ------------------------------------------
    def binary(self) -> BinaryImage:
        cached = CompiledTarget._binary_cache.get(self.name)
        if cached is None:
            cached = compile_source(
                self.source(), name=self.name, source_file=self.source_file
            )
            CompiledTarget._binary_cache[self.name] = cached
        return cached

    def ground_truth(self) -> List[GroundTruthEntry]:
        functions = self.accuracy_functions or None
        return extract_ground_truth(self.source(), functions)

    def boot_scope(self, workload: str) -> Tuple[str, ...]:
        """The fixture-prefix scope that keys *workload*'s boot template.

        The boot template snapshots the machine *before* any workload step
        runs, and :meth:`make_os` takes no workload argument — so boot
        state is workload-independent and every workload of a target can
        share one template by default.  Targets whose OS fixture *does*
        vary by workload override this to return distinct scopes for
        workloads that must not share boot state (e.g. per-workload
        filesystem seeds), at which point templates split along scope
        boundaries exactly as they used to split along workload names.
        """
        return ("boot", "shared-fixture")

    def boot_template(self, workload: str, engine: Optional[str] = None) -> BootTemplate:
        """The memoized boot template for *workload*'s boot scope.

        Shared by sessions (which acquire it to run) and by the delta
        result channel (which only reads its boot OS state to rehydrate
        published deltas on the pool parent).  Keyed by
        :meth:`boot_scope` rather than the workload name, so e.g. the
        mini_git ``status``/``commit``/``merge``/``gc`` sweeps all restore
        from one boot+fixture capture instead of booting four machines.
        """
        engine = resolve_engine(engine)
        binary = self.binary()
        key = (self.boot_scope(workload), engine, libc_spec_fingerprint())
        return cached_boot_template(
            self,
            key,
            lambda: BootTemplate(Machine(binary, os=self.make_os(), engine=engine)),
            context=workload,
        )

    def open_session(
        self,
        workload: str,
        engine: Optional[str] = None,
        snapshots: Optional[bool] = None,
        os_channel: Optional[str] = None,
    ) -> ExecutionSession:
        """Open an execution session: snapshot-backed when possible.

        The boot template (OS fixture + libc + resident machine, boot state
        snapshotted) is memoized process-wide, keyed by (boot scope,
        engine, libc-spec fingerprint) — see :meth:`boot_scope`.  Templates are exclusive: losing the
        acquisition race — e.g. a thread-pool campaign running this target
        concurrently — falls back to the fresh-build path, which is
        observably identical.  ``snapshots=None`` defers to
        :func:`default_snapshots` (the ``REPRO_SNAPSHOTS`` environment
        default).
        """
        binary = self.binary()
        if snapshots is None:
            snapshots = default_snapshots()
        template: Optional[BootTemplate] = None
        if snapshots:
            template = self.boot_template(workload, engine)
            if not template.try_acquire():
                template = None
        try:
            return ExecutionSession(
                self, binary, engine, template,
                workload=workload, os_channel=os_channel,
            )
        except BaseException:
            # A failing boot restore must not leave the template locked
            # (that would silently demote every later request to the
            # fresh-build path).
            if template is not None:
                template.release()
            raise

    def execute_plan(
        self,
        session: ExecutionSession,
        plan: List[WorkloadStep],
        gate,
        coverage,
        start_index: int = 0,
        outcome: Optional[Outcome] = None,
        boundary_hook=None,
    ) -> Tuple[Outcome, int]:
        """Run *plan* (from *start_index*) inside *session*.

        ``boundary_hook(index, steps_run, outcome)`` fires before each step
        — the prefix-sharing scheduler uses it to snapshot OS/gate state at
        the last boundary before a scenario's trigger fires, which is where
        the group's other scenarios later resume.
        """
        outcome = outcome if outcome is not None else Outcome(kind=OutcomeKind.NORMAL)
        steps_run = start_index
        for index in range(start_index, len(plan)):
            if boundary_hook is not None:
                boundary_hook(index, steps_run, outcome)
            step = plan[index]
            machine = session.machine_for_step(gate, coverage)
            status = machine.run(entry=step.entry, args=step.args)
            steps_run += 1
            step_outcome = classify_exit_status(status)
            if step_outcome.kind in (
                OutcomeKind.CRASH,
                OutcomeKind.ABORT,
                OutcomeKind.HANG,
                OutcomeKind.WORLD_CRASH,
            ):
                outcome = step_outcome
                break
            if step_outcome.kind is OutcomeKind.ERROR_EXIT and outcome.kind is OutcomeKind.NORMAL:
                # Error exits are recorded but do not stop the test suite,
                # like a failing test case in a larger suite.
                outcome = step_outcome
        if coverage is not None:
            coverage.finish_run()
        return outcome, steps_run

    def finalize_run(
        self,
        session: ExecutionSession,
        gate,
        coverage,
        outcome: Outcome,
        steps_run: int,
    ) -> RunResult:
        """Apply post-run oracles and assemble the :class:`RunResult`."""
        if not outcome.is_high_impact:
            oracle = self.check_oracles(session.os)
            if oracle is not None:
                outcome = oracle
        stats = {
            "steps_run": steps_run,
            "library_calls": gate.total_calls,
            "calls": dict(gate.call_counts),
            "os": session.published_os(),
        }
        if coverage is not None:
            stats["coverage"] = coverage
        return RunResult(outcome=outcome, log=gate.log, stats=stats)

    def run_recovery(
        self,
        session: ExecutionSession,
        request: WorkloadRequest,
        gate,
        coverage,
        outcome: Outcome,
        steps_run: int,
    ) -> Tuple[Outcome, int]:
        """Reboot-and-recover after a crash-consistency kill.

        A ``crash_point`` fault unwinds the world mid-workload
        (:class:`~repro.core.controller.monitor.OutcomeKind.WORLD_CRASH`),
        leaving the session's simulated filesystem exactly as the "power
        loss" found it — torn prefix included.  When the scenario declares a
        ``recovery_workload`` (empty string = re-run the crashed workload),
        that workload is executed against the surviving state on the *same*
        gate: the crash trigger has already fired its singleton, so recovery
        runs fault-free, exercising the target's journal/DROP-and-redo
        paths.  A clean recovery downgrades the outcome to NORMAL (the kill
        itself is injected, not a bug) and leaves silent damage for the
        post-run oracles; a recovery that itself crashes or aborts is the
        finding and becomes the outcome.
        """
        if outcome.kind is not OutcomeKind.WORLD_CRASH:
            return outcome, steps_run
        metadata = getattr(request.scenario, "metadata", None) or {}
        if "recovery_workload" not in metadata:
            return outcome, steps_run
        crash_detail = outcome.detail
        recovery = metadata.get("recovery_workload") or request.workload
        recovery_plan = self.workload_plan(recovery)
        recovered, recovery_steps = self.execute_plan(
            session, recovery_plan, gate, coverage
        )
        steps_run += recovery_steps
        if recovered.is_high_impact or recovered.kind is OutcomeKind.HANG:
            outcome = replace(
                recovered, detail=f"during recovery from [{crash_detail}]: {recovered.detail}"
            )
        else:
            outcome = Outcome(
                kind=OutcomeKind.NORMAL,
                detail=f"recovered after [{crash_detail}]",
            )
        return outcome, steps_run

    def run(self, request: WorkloadRequest) -> RunResult:
        """Execute one workload, optionally under an injection scenario."""
        plan = self.workload_plan(request.workload)
        # "compiled" (block-batched superclosures, the default),
        # "compiled-steps" (per-instruction closures) or "reference" (the
        # decode-as-you-go oracle); the differential suite runs all three.
        engine = request.options.get("engine")
        snapshots = request.options.get("snapshots")
        session = self.open_session(
            request.workload,
            engine=engine,
            snapshots=None if snapshots is None else bool(snapshots),
            os_channel=request.options.get("os_channel"),
        )
        try:
            gate = make_gate(request.scenario, observe_only=request.observe_only,
                             run_seed=request.options.get("run_seed"))
            coverage = CoverageTracker() if request.collect_coverage else None
            outcome, steps_run = self.execute_plan(session, plan, gate, coverage)
            outcome, steps_run = self.run_recovery(
                session, request, gate, coverage, outcome, steps_run
            )
            return self.finalize_run(session, gate, coverage, outcome, steps_run)
        finally:
            session.close()


__all__ = [
    "CompiledTarget",
    "DeltaOSClone",
    "ExecutionSession",
    "GroundTruthEntry",
    "KnownBug",
    "WorkloadStep",
    "default_snapshots",
    "extract_ground_truth",
]
