"""Simulated systems under test.

The paper evaluates LFI on four real systems (BIND, Git, MySQL, PBFT) plus
Apache for the overhead study.  This package provides faithful stand-ins:

* :mod:`repro.targets.mini_bind` — a DNS-server analog, compiled from mini-C,
  with the two BIND bugs from Table 1 planted (unchecked
  ``xmlNewTextWriterDoc`` in the statistics channel, assertion-failing
  recovery after a failed ``malloc`` in ``dst_lib_init``).
* :mod:`repro.targets.mini_git` — a version-control analog, compiled from
  mini-C, with the five Git bugs from Table 1 planted (failed ``setenv``
  causing data loss, ``readdir`` on a NULL ``opendir`` result, three
  unchecked ``malloc`` calls in the xdiff merge code).
* :mod:`repro.targets.mini_mysql` — a Python-level database server with the
  two MySQL bugs (double mutex unlock after a failed ``close``, crash on a
  failed ``errmsg.sys`` read), plus the SysBench-style OLTP workload used by
  the overhead experiment.
* :mod:`repro.targets.mini_apache` — a Python-level web server with the
  request pipeline and the five triggers used by the Table 5 overhead
  experiment.
* :mod:`repro.targets.pbft` — a Python implementation of the PBFT
  replication protocol (3f+1 replicas, pre-prepare/prepare/commit,
  checkpoints, view change) plus a compiled checkpoint-writer module, with
  the two PBFT bugs from Table 1 planted.

Every target implements :class:`repro.core.controller.target.TargetAdapter`
and carries machine-readable ground truth (``//@check:`` annotations in the
mini-C sources, ``KNOWN_BUGS`` tables) used by the accuracy and bug-count
benchmarks.

**The registry.** Anything that names a target *across a process boundary*
— the campaign fabric's wire protocol, CLI flags, config files — resolves
the name through :func:`resolve_target`, which knows the built-in targets
by their ``name`` attribute and any extras registered at runtime via
:func:`register_target` (tests register instrumented wrappers this way).
Factories must build equivalent targets in every process: the campaign
coordinator and its workers each resolve the name independently and rely
on the resulting fault spaces being identical.
"""

from typing import Callable, Dict, List

from repro.targets.base import (
    CompiledTarget,
    GroundTruthEntry,
    extract_ground_truth,
)

#: Runtime-registered target factories (name -> zero-argument factory).
_EXTRA_TARGETS: Dict[str, Callable[[], object]] = {}


def _builtin_factories() -> Dict[str, Callable[[], object]]:
    # Imported lazily: pulling every target in at package import would drag
    # the whole compiler/VM stack into trivial imports.
    from repro.targets.mini_apache import MiniApacheTarget
    from repro.targets.mini_bind import MiniBindTarget
    from repro.targets.mini_git import MiniGitTarget
    from repro.targets.mini_mysql import MiniMySQLTarget
    from repro.targets.pbft import PBFTTarget

    return {
        "mini_apache": MiniApacheTarget,
        "mini_bind": MiniBindTarget,
        "mini_git": MiniGitTarget,
        "mini_mysql": MiniMySQLTarget,
        "pbft": PBFTTarget,
    }


def register_target(name: str, factory: Callable[[], object]) -> None:
    """Register (or override) a target factory under *name*."""
    _EXTRA_TARGETS[name] = factory


def unregister_target(name: str) -> None:
    """Remove a runtime registration (built-ins are unaffected)."""
    _EXTRA_TARGETS.pop(name, None)


def target_names() -> List[str]:
    """Every resolvable target name, sorted."""
    names = set(_builtin_factories()) | set(_EXTRA_TARGETS)
    return sorted(names)


def resolve_target(name: str):
    """Build a fresh target instance from its registry *name*."""
    factory = _EXTRA_TARGETS.get(name) or _builtin_factories().get(name)
    if factory is None:
        raise ValueError(
            f"unknown target {name!r}; known targets: {', '.join(target_names())}"
        )
    return factory()


__all__ = [
    "CompiledTarget",
    "GroundTruthEntry",
    "extract_ground_truth",
    "register_target",
    "resolve_target",
    "target_names",
    "unregister_target",
]
