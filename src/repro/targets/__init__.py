"""Simulated systems under test.

The paper evaluates LFI on four real systems (BIND, Git, MySQL, PBFT) plus
Apache for the overhead study.  This package provides faithful stand-ins:

* :mod:`repro.targets.mini_bind` — a DNS-server analog, compiled from mini-C,
  with the two BIND bugs from Table 1 planted (unchecked
  ``xmlNewTextWriterDoc`` in the statistics channel, assertion-failing
  recovery after a failed ``malloc`` in ``dst_lib_init``).
* :mod:`repro.targets.mini_git` — a version-control analog, compiled from
  mini-C, with the five Git bugs from Table 1 planted (failed ``setenv``
  causing data loss, ``readdir`` on a NULL ``opendir`` result, three
  unchecked ``malloc`` calls in the xdiff merge code).
* :mod:`repro.targets.mini_mysql` — a Python-level database server with the
  two MySQL bugs (double mutex unlock after a failed ``close``, crash on a
  failed ``errmsg.sys`` read), plus the SysBench-style OLTP workload used by
  the overhead experiment.
* :mod:`repro.targets.mini_apache` — a Python-level web server with the
  request pipeline and the five triggers used by the Table 5 overhead
  experiment.
* :mod:`repro.targets.pbft` — a Python implementation of the PBFT
  replication protocol (3f+1 replicas, pre-prepare/prepare/commit,
  checkpoints, view change) plus a compiled checkpoint-writer module, with
  the two PBFT bugs from Table 1 planted.

Every target implements :class:`repro.core.controller.target.TargetAdapter`
and carries machine-readable ground truth (``//@check:`` annotations in the
mini-C sources, ``KNOWN_BUGS`` tables) used by the accuracy and bug-count
benchmarks.
"""

from repro.targets.base import (
    CompiledTarget,
    GroundTruthEntry,
    extract_ground_truth,
)

__all__ = ["CompiledTarget", "GroundTruthEntry", "extract_ground_truth"]
