"""A PBFT replica.

The replica implements the normal-case three-phase protocol (pre-prepare,
prepare, commit), periodic checkpointing, and the view-change mechanism that
replaces an unresponsive primary.  All communication and file I/O goes
through the :class:`~repro.oslib.facade.LibcFacade`, so the distributed
triggers can fail individual ``sendto``/``recvfrom``/``fopen`` calls.

Planted bugs (Table 1):

* :meth:`Replica.drain_messages` — a failed ``recvfrom`` that is *not*
  ``EAGAIN`` is treated as if a datagram had been received; the empty buffer
  is then parsed and the replica crashes ("crash caused by a failed
  recvfrom call").
* :meth:`Replica.write_checkpoint` — the ``fopen`` return value is not
  checked before ``fwrite``, so a failed open crashes the replica while it
  writes its checkpoint ("fwrite with a NULL pointer returned by a
  previously failed fopen").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.oslib.errno_codes import Errno
from repro.oslib.facade import LibcFacade
from repro.targets.pbft import messages as proto
from repro.targets.pbft.messages import Message


@dataclass
class RequestState:
    """Per-(view, sequence) protocol state."""

    request: Optional[Message] = None
    pre_prepared: bool = False
    prepares: Set[str] = field(default_factory=set)
    commits: Set[str] = field(default_factory=set)
    prepared: bool = False
    committed: bool = False
    executed: bool = False
    last_prepare: Optional[Message] = None
    last_commit: Optional[Message] = None


class Replica:
    """One PBFT replica (3f+1 of these form the cluster)."""

    CHECKPOINT_INTERVAL = 16

    def __init__(
        self,
        replica_id: int,
        total_replicas: int,
        libc: LibcFacade,
        addresses: Dict[str, int],
        faults_tolerated: int = 1,
    ) -> None:
        self.replica_id = replica_id
        self.name = f"replica{replica_id}"
        self.n = total_replicas
        self.f = faults_tolerated
        self.libc = libc
        self.addresses = addresses  # node name -> network address

        self.view = 0
        self.next_sequence = 1
        self.last_executed = 0
        self.socket_fd = libc.socket()
        libc.bind(self.socket_fd, addresses[self.name])

        self.states: Dict[int, RequestState] = {}
        self.executed_requests: List[Tuple[int, str]] = []
        self.view_change_votes: Dict[int, Set[str]] = {}
        self.rounds_without_progress = 0
        self.pending_client_request: Optional[Message] = None
        self.messages_processed = 0
        self.checkpoints_written = 0
        self.crashed = False

    # ------------------------------------------------------------------
    # role helpers
    # ------------------------------------------------------------------
    @property
    def is_primary(self) -> bool:
        return self.replica_id == self.view % self.n

    def primary_name(self, view: Optional[int] = None) -> str:
        view = self.view if view is None else view
        return f"replica{view % self.n}"

    def peer_names(self) -> List[str]:
        return [f"replica{i}" for i in range(self.n) if i != self.replica_id]

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(self, message: Message, destination: str) -> None:
        self.libc.sendto(self.socket_fd, message.encode(), self.addresses[destination])

    def multicast(self, message: Message) -> None:
        for peer in self.peer_names():
            self.send(message, peer)

    def drain_messages(self) -> List[Message]:
        """Pull every queued datagram off the socket."""
        received: List[Message] = []
        while True:
            result = self.libc.recvfrom(self.socket_fd)
            if result is None:
                if self.libc.errno in (Errno.EAGAIN, 0):
                    break
                # BUG (Table 1): any other receive error is treated as if a
                # datagram had arrived; parsing the empty buffer crashes.
                received.append(Message.decode(b""))
                continue
            payload, _source = result
            if not payload:
                break
            received.append(Message.decode(payload))
        return received

    # ------------------------------------------------------------------
    # main per-round processing
    # ------------------------------------------------------------------
    def process_round(self) -> int:
        """Handle all pending messages; returns how many were processed."""
        if self.crashed:
            return 0
        handled = 0
        for message in self.drain_messages():
            self.handle_message(message)
            handled += 1
        self.messages_processed += handled
        self.retransmit_pending()
        return handled

    def handle_message(self, message: Message) -> None:
        handlers = {
            proto.REQUEST: self.on_request,
            proto.PRE_PREPARE: self.on_pre_prepare,
            proto.PREPARE: self.on_prepare,
            proto.COMMIT: self.on_commit,
            proto.VIEW_CHANGE: self.on_view_change,
            proto.NEW_VIEW: self.on_new_view,
            proto.CHECKPOINT: self.on_checkpoint,
        }
        handler = handlers.get(message.type)
        if handler is not None:
            handler(message)

    # ------------------------------------------------------------------
    # protocol phases
    # ------------------------------------------------------------------
    def _state(self, sequence: int) -> RequestState:
        state = self.states.get(sequence)
        if state is None:
            state = RequestState()
            self.states[sequence] = state
        return state

    def on_request(self, message: Message) -> None:
        self.pending_client_request = message
        if not self.is_primary:
            # Backups forward the request to the primary and start expecting
            # progress; lack of progress eventually triggers a view change.
            self.send(message, self.primary_name())
            return
        # Avoid re-assigning a sequence number to a retransmitted request.
        for sequence, state in self.states.items():
            if state.request is not None and state.request.request_id == message.request_id \
                    and state.request.client == message.client:
                if not state.executed:
                    self._send_pre_prepare(sequence, state)
                return
        sequence = self.next_sequence
        self.next_sequence += 1
        state = self._state(sequence)
        state.request = message
        state.pre_prepared = True
        self._send_pre_prepare(sequence, state)
        self._record_prepare(sequence, self.name)

    def _send_pre_prepare(self, sequence: int, state: RequestState) -> None:
        assert state.request is not None
        pre_prepare = Message(
            type=proto.PRE_PREPARE,
            sender=self.name,
            view=self.view,
            sequence=sequence,
            request_id=state.request.request_id,
            client=state.request.client,
            payload=state.request.payload,
        )
        state.last_prepare = pre_prepare
        self.multicast(pre_prepare)

    def on_pre_prepare(self, message: Message) -> None:
        if message.view != self.view:
            return
        state = self._state(message.sequence)
        state.request = Message(
            type=proto.REQUEST,
            sender=message.client,
            client=message.client,
            request_id=message.request_id,
            payload=message.payload,
        )
        state.pre_prepared = True
        prepare = Message(
            type=proto.PREPARE,
            sender=self.name,
            view=self.view,
            sequence=message.sequence,
            request_id=message.request_id,
            client=message.client,
            payload=message.payload,
        )
        state.last_prepare = prepare
        self.multicast(prepare)
        self._record_prepare(message.sequence, self.name)
        self._record_prepare(message.sequence, message.sender)

    def on_prepare(self, message: Message) -> None:
        if message.view != self.view:
            return
        self._record_prepare(message.sequence, message.sender)

    def _record_prepare(self, sequence: int, sender: str) -> None:
        state = self._state(sequence)
        state.prepares.add(sender)
        if not state.prepared and state.pre_prepared and len(state.prepares) >= 2 * self.f:
            state.prepared = True
            commit = Message(
                type=proto.COMMIT,
                sender=self.name,
                view=self.view,
                sequence=sequence,
                request_id=state.request.request_id if state.request else 0,
                client=state.request.client if state.request else "",
            )
            state.last_commit = commit
            self.multicast(commit)
            self._record_commit(sequence, self.name)

    def on_commit(self, message: Message) -> None:
        if message.view != self.view:
            return
        self._record_commit(message.sequence, message.sender)

    def _record_commit(self, sequence: int, sender: str) -> None:
        state = self._state(sequence)
        state.commits.add(sender)
        if (
            not state.executed
            and state.prepared
            and len(state.commits) >= 2 * self.f + 1
        ):
            state.committed = True
            self.execute(sequence, state)

    # ------------------------------------------------------------------
    # execution, checkpoints
    # ------------------------------------------------------------------
    def execute(self, sequence: int, state: RequestState) -> None:
        assert state.request is not None
        state.executed = True
        self.last_executed = max(self.last_executed, sequence)
        result = f"ok:{state.request.payload}"
        self.executed_requests.append((sequence, state.request.payload))
        self.rounds_without_progress = 0
        self.pending_client_request = None
        reply = Message(
            type=proto.REPLY,
            sender=self.name,
            view=self.view,
            sequence=sequence,
            request_id=state.request.request_id,
            client=state.request.client,
            result=result,
        )
        self.send(reply, state.request.client)
        if self.last_executed % self.CHECKPOINT_INTERVAL == 0:
            self.write_checkpoint()

    def write_checkpoint(self) -> None:
        """Persist protocol state; reproduces the unchecked-fopen bug."""
        path = f"/var/pbft/{self.name}/checkpoint_{self.last_executed}.ckp"
        handle = self.libc.fopen(path, "w")
        # BUG (Table 1): the fopen result is not checked; a NULL FILE* is
        # passed straight to fwrite, which crashes the replica.
        payload = f"view={self.view} executed={self.last_executed}\n".encode()
        self.libc.fwrite(handle, payload)
        self.libc.fclose(handle)
        self.checkpoints_written += 1
        announcement = Message(
            type=proto.CHECKPOINT,
            sender=self.name,
            view=self.view,
            sequence=self.last_executed,
        )
        self.multicast(announcement)

    def on_checkpoint(self, message: Message) -> None:
        # Checkpoint certificates are only counted; garbage collection of the
        # message log is not modelled.
        return

    # ------------------------------------------------------------------
    # retransmission and view changes
    # ------------------------------------------------------------------
    def retransmit_pending(self) -> None:
        """Re-multicast the newest unfinished phase message (loss tolerance)."""
        for sequence, state in sorted(self.states.items()):
            if state.executed:
                continue
            if state.last_commit is not None:
                self.multicast(state.last_commit)
            elif state.last_prepare is not None:
                self.multicast(state.last_prepare)
            break

    def note_round_without_progress(self) -> None:
        if self.pending_client_request is None:
            return
        self.rounds_without_progress += 1

    def maybe_start_view_change(self, patience: int) -> bool:
        """Vote for a view change when the primary makes no progress."""
        if self.rounds_without_progress < patience or self.is_primary:
            return False
        new_view = self.view + 1
        vote = Message(type=proto.VIEW_CHANGE, sender=self.name, view=new_view,
                       sequence=self.last_executed)
        self.multicast(vote)
        self.view_change_votes.setdefault(new_view, set()).add(self.name)
        self.rounds_without_progress = 0
        return True

    def on_view_change(self, message: Message) -> None:
        votes = self.view_change_votes.setdefault(message.view, set())
        votes.add(message.sender)
        votes.add(self.name)
        if message.view <= self.view:
            return
        if len(votes) >= 2 * self.f + 1 and self.primary_name(message.view) == self.name:
            self.view = message.view
            new_view = Message(type=proto.NEW_VIEW, sender=self.name, view=self.view,
                               sequence=self.last_executed)
            self.multicast(new_view)
            # Re-propose the pending request in the new view.
            if self.pending_client_request is not None:
                self.on_request(self.pending_client_request)

    def on_new_view(self, message: Message) -> None:
        if message.view > self.view:
            self.view = message.view
            self.rounds_without_progress = 0
            if self.pending_client_request is not None:
                self.send(self.pending_client_request, self.primary_name())


__all__ = ["Replica", "RequestState"]
