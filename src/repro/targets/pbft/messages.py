"""PBFT protocol messages and their wire encoding.

Messages travel over the simulated datagram network as compact JSON, so the
network, the loss-injection triggers, and the replicas all deal in plain
bytes — the same boundary the paper injects faults at (``sendto`` /
``recvfrom``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

# Message types.
REQUEST = "request"
PRE_PREPARE = "pre-prepare"
PREPARE = "prepare"
COMMIT = "commit"
REPLY = "reply"
CHECKPOINT = "checkpoint"
VIEW_CHANGE = "view-change"
NEW_VIEW = "new-view"

ALL_TYPES = (REQUEST, PRE_PREPARE, PREPARE, COMMIT, REPLY, CHECKPOINT, VIEW_CHANGE, NEW_VIEW)


@dataclass
class Message:
    """One protocol message."""

    type: str
    sender: str
    view: int = 0
    sequence: int = 0
    request_id: int = 0
    client: str = ""
    payload: str = ""
    result: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        return json.dumps(
            {
                "type": self.type,
                "sender": self.sender,
                "view": self.view,
                "sequence": self.sequence,
                "request_id": self.request_id,
                "client": self.client,
                "payload": self.payload,
                "result": self.result,
                "extra": self.extra,
            },
            separators=(",", ":"),
        ).encode()

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        if not data:
            raise ValueError("empty datagram cannot be decoded as a PBFT message")
        raw = json.loads(data.decode())
        if raw.get("type") not in ALL_TYPES:
            raise ValueError(f"unknown message type {raw.get('type')!r}")
        return cls(
            type=raw["type"],
            sender=raw.get("sender", ""),
            view=int(raw.get("view", 0)),
            sequence=int(raw.get("sequence", 0)),
            request_id=int(raw.get("request_id", 0)),
            client=raw.get("client", ""),
            payload=raw.get("payload", ""),
            result=raw.get("result", ""),
            extra=raw.get("extra", {}),
        )

    def key(self) -> tuple:
        return (self.type, self.view, self.sequence, self.sender)

    def describe(self) -> str:
        return (
            f"{self.type} v={self.view} n={self.sequence} from {self.sender}"
            + (f" req={self.request_id}" if self.request_id else "")
        )


def request_message(client: str, request_id: int, payload: str) -> Message:
    return Message(type=REQUEST, sender=client, client=client, request_id=request_id, payload=payload)


__all__ = [
    "ALL_TYPES",
    "CHECKPOINT",
    "COMMIT",
    "Message",
    "NEW_VIEW",
    "PREPARE",
    "PRE_PREPARE",
    "REPLY",
    "REQUEST",
    "VIEW_CHANGE",
    "request_message",
]
