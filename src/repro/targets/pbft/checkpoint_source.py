'''mini-C source of the PBFT simple-server checkpoint/state module.

This is the compiled counterpart of the replica's file handling: it provides
the six ``fopen`` call sites behind the PBFT row of Table 4 and reproduces,
at the machine-code level, the Table 1 crash where a checkpoint is written
through a NULL ``FILE*`` returned by an unchecked ``fopen``.
'''

PBFT_CHECKPOINT_SOURCE = r"""
int checkpoints_written = 0;
int state_loaded = 0;

/* The shutdown path writes the final checkpoint without checking fopen.   */
int write_shutdown_checkpoint() {
    int handle;
    handle = fopen("/var/pbft/replica0/shutdown.ckp", "w");   //@check:no
    /* BUG (Table 1): handle is used without a NULL check. */
    fwrite("view=0 seq=128", 1, 14, handle);
    fclose(handle);
    checkpoints_written = checkpoints_written + 1;
    return 0;
}

int write_periodic_checkpoint(int sequence) {
    int handle;
    int written;
    handle = fopen("/var/pbft/replica0/periodic.ckp", "w");   //@check:yes
    if (handle == 0) {
        puts("replica: cannot open checkpoint file");
        return -1;
    }
    written = fwrite("seq", 1, 3, handle);
    if (written == 0) {
        fclose(handle);
        return -1;
    }
    fclose(handle);
    checkpoints_written = checkpoints_written + 1;
    return 0;
}

int read_checkpoint() {
    int handle;
    int buffer[32];
    int items;
    handle = fopen("/var/pbft/replica0/periodic.ckp", "r");   //@check:yes
    if (handle == 0) {
        return -1;
    }
    items = fread(buffer, 1, 16, handle);
    fclose(handle);
    state_loaded = 1;
    return items;
}

int load_config() {
    int handle;
    int buffer[32];
    handle = fopen("/etc/pbft/config", "r");                  //@check:yes
    if (handle == 0) {
        puts("replica: missing configuration");
        return -1;
    }
    fread(buffer, 1, 24, handle);
    fclose(handle);
    return 0;
}

int rotate_log() {
    int old_handle;
    int new_handle;
    old_handle = fopen("/var/pbft/replica0/replica.log", "r");     //@check:yes
    if (old_handle == 0) {
        return -1;
    }
    fclose(old_handle);
    new_handle = fopen("/var/pbft/replica0/replica.log.1", "w");   //@check:yes
    if (new_handle == 0) {
        return -1;
    }
    fwrite("rotated", 1, 7, new_handle);
    fclose(new_handle);
    return 0;
}

int main(int command) {
    if (command == 1) {
        load_config();
        read_checkpoint();
        return write_periodic_checkpoint(16);
    }
    if (command == 2) {
        rotate_log();
        return write_shutdown_checkpoint();
    }
    return 0;
}
"""
