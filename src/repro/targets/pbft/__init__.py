"""The PBFT analog: a Practical Byzantine Fault Tolerance replication system.

Two pieces:

* a Python implementation of the protocol (client, replicas, pre-prepare/
  prepare/commit, checkpoints, view change) running over the simulated
  datagram network — used for the Figure 3 degraded-network study, the DoS
  study, and the recvfrom/fopen bugs of Table 1;
* a compiled (mini-C) checkpoint-writer module whose ``fopen`` call sites
  feed the PBFT row of the Table 4 accuracy experiment and reproduce the
  fwrite-on-NULL crash at the machine-code level.
"""

from repro.targets.pbft.cluster import PBFTCluster, WorkloadResult
from repro.targets.pbft.target import KNOWN_BUGS, PBFTCheckpointTarget, PBFTTarget

__all__ = [
    "KNOWN_BUGS",
    "PBFTCheckpointTarget",
    "PBFTCluster",
    "PBFTTarget",
    "WorkloadResult",
]
