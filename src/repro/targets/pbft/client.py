"""PBFT client: sends requests and waits for f+1 matching replies."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.oslib.errno_codes import Errno
from repro.oslib.facade import LibcFacade
from repro.targets.pbft import messages as proto
from repro.targets.pbft.messages import Message, request_message


class Client:
    """The simple_client analog driving the cluster with one request at a time."""

    def __init__(
        self,
        libc: LibcFacade,
        addresses: Dict[str, int],
        total_replicas: int = 4,
        faults_tolerated: int = 1,
        name: str = "client0",
    ) -> None:
        self.name = name
        self.libc = libc
        self.addresses = addresses
        self.n = total_replicas
        self.f = faults_tolerated
        self.socket_fd = libc.socket()
        libc.bind(self.socket_fd, addresses[name])

        self.next_request_id = 1
        self.current_request: Optional[Message] = None
        self.replies: Set[str] = set()
        self.rounds_waiting = 0
        self.completed_requests = 0
        self.retransmissions = 0

    # ------------------------------------------------------------------
    def replica_names(self) -> List[str]:
        return [f"replica{i}" for i in range(self.n)]

    def primary_name(self, view: int = 0) -> str:
        return f"replica{view % self.n}"

    # ------------------------------------------------------------------
    def start_request(self, payload: str) -> Message:
        request = request_message(self.name, self.next_request_id, payload)
        self.next_request_id += 1
        self.current_request = request
        self.replies = set()
        self.rounds_waiting = 0
        self.libc.sendto(self.socket_fd, request.encode(), self.addresses[self.primary_name()])
        return request

    def retransmit(self) -> None:
        """Broadcast the outstanding request to every replica (client timeout)."""
        if self.current_request is None:
            return
        self.retransmissions += 1
        for replica in self.replica_names():
            self.libc.sendto(
                self.socket_fd, self.current_request.encode(), self.addresses[replica]
            )

    # ------------------------------------------------------------------
    def collect_replies(self) -> bool:
        """Drain the socket; return True when the request is complete."""
        if self.current_request is None:
            return True
        while True:
            result = self.libc.recvfrom(self.socket_fd)
            if result is None:
                if self.libc.errno not in (Errno.EAGAIN, 0):
                    # The client tolerates receive errors by retrying later.
                    break
                break
            payload, _source = result
            if not payload:
                break
            message = Message.decode(payload)
            if (
                message.type == proto.REPLY
                and message.request_id == self.current_request.request_id
            ):
                self.replies.add(message.sender)
        if len(self.replies) >= self.f + 1:
            self.current_request = None
            self.completed_requests += 1
            return True
        return False

    def note_waiting_round(self, retransmit_after: int) -> None:
        self.rounds_waiting += 1
        if self.rounds_waiting >= retransmit_after:
            self.retransmit()
            self.rounds_waiting = 0


__all__ = ["Client"]
