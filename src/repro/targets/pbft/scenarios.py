"""Scenario builders for the PBFT experiments (§7.3 and Table 1).

All of them install a ``DistributedTrigger`` on ``sendto``/``recvfrom`` and
delegate the decision to a shared
:class:`~repro.distributed.central_controller.CentralController`, exactly as
§3.2 describes: the node-local trigger only forwards the call, the policy
with the global view decides.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.controller.target import WorkloadRequest
from repro.core.scenario.builder import ScenarioBuilder
from repro.core.scenario.model import Scenario
from repro.distributed.central_controller import (
    CentralController,
    PacketLossPolicy,
    RotatingAttackPolicy,
    SilenceNodePolicy,
)


def _distributed_scenario(name: str, errno: str = "EAGAIN") -> ScenarioBuilder:
    builder = ScenarioBuilder(name)
    builder.trigger_with_params("remote", "DistributedTrigger", {"controller": "@controller"})
    builder.inject("sendto", ["remote"], return_value=-1, errno=errno)
    builder.inject("recvfrom", ["remote"], return_value=-1, errno=errno)
    return builder


def packet_loss_experiment(
    probability: float, seed: Optional[int] = 0, nodes: Optional[Sequence[str]] = None
) -> tuple:
    """(scenario, controller) pair for the Figure 3 degraded-network study."""
    controller = CentralController(
        PacketLossPolicy(probability=probability, seed=seed, nodes=tuple(nodes) if nodes else None)
    )
    scenario = (
        _distributed_scenario(f"pbft-loss-{probability}")
        .metadata(experiment="figure3", probability=probability)
        .build()
    )
    return scenario, controller


def silence_replica_experiment(node: str = "replica3") -> tuple:
    """(scenario, controller) pair for the single-replica DoS study."""
    controller = CentralController(SilenceNodePolicy(node=node))
    scenario = (
        _distributed_scenario(f"pbft-silence-{node}")
        .metadata(experiment="dos-silence", node=node)
        .build()
    )
    return scenario, controller


def rotating_attack_experiment(
    nodes: Sequence[str] = ("replica0", "replica1", "replica2"), burst: int = 500
) -> tuple:
    """(scenario, controller) pair for the rotating 500-fault DoS attack."""
    controller = CentralController(RotatingAttackPolicy(nodes=tuple(nodes), burst=burst))
    scenario = (
        _distributed_scenario("pbft-rotating-attack")
        .metadata(experiment="dos-rotating", burst=burst)
        .build()
    )
    return scenario, controller


def packet_loss_workload_request(
    probability: float,
    seed: Optional[int] = 0,
    requests: int = 30,
    workload: str = "simple",
    nodes: Optional[Sequence[str]] = None,
) -> WorkloadRequest:
    """Executor-ready request for one degraded-network trial.

    Builds a *fresh* scenario + central-controller pair, so batches of
    trials can be handed to any
    :class:`~repro.core.controller.executor.ExecutionBackend` without
    sharing mutable policy state between concurrent runs; the seed pins the
    loss pattern, keeping parallel batches identical to serial ones.
    """
    scenario, controller = packet_loss_experiment(probability, seed=seed, nodes=nodes)
    return WorkloadRequest(
        workload=workload,
        scenario=scenario,
        options={"requests": requests, "shared_objects": {"controller": controller}},
    )


def recvfrom_failure_scenario(node: str = "replica1", nth: int = 5) -> Scenario:
    """Fail one replica's n-th ``recvfrom`` with a hard error (Table 1 bug)."""
    return (
        ScenarioBuilder(f"pbft-recvfrom-failure-{node}")
        .trigger_with_params("on_node", "CallStackTrigger", {"frame": {"module": "replica"}})
        .trigger("count", "CallCountTrigger", nth=nth)
        .inject("recvfrom", ["on_node", "count"], return_value=-1, errno="ENETDOWN")
        .metadata(bug="pbft-recvfrom-crash", node=node)
        .build()
    )


def checkpoint_fopen_scenario(nth: int = 1) -> Scenario:
    """Fail a replica's checkpoint ``fopen`` (Table 1 fwrite-on-NULL bug)."""
    return (
        ScenarioBuilder("pbft-checkpoint-fopen")
        .trigger("count", "CallCountTrigger", nth=nth)
        .inject("fopen", ["count"], return_value=0, errno="ENOENT")
        .metadata(bug="pbft-fopen-fwrite-crash")
        .build()
    )


__all__ = [
    "checkpoint_fopen_scenario",
    "packet_loss_experiment",
    "packet_loss_workload_request",
    "recvfrom_failure_scenario",
    "rotating_attack_experiment",
    "silence_replica_experiment",
]
