"""Target adapters for the PBFT analog (Python cluster + compiled module)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.controller.monitor import OutcomeKind, RunResult
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.core.scenario.model import Scenario
from repro.oslib.os_model import SimOS
from repro.targets.base import CompiledTarget, KnownBug, WorkloadStep
from repro.targets.pbft.checkpoint_source import PBFT_CHECKPOINT_SOURCE
from repro.targets.pbft.cluster import PBFTCluster

KNOWN_BUGS = (
    KnownBug(
        identifier="pbft-recvfrom-crash",
        system="pbft",
        library_function="recvfrom",
        kind=OutcomeKind.CRASH,
        description="Crash caused by a failed recvfrom call (replica parses an empty datagram).",
    ),
    KnownBug(
        identifier="pbft-fopen-fwrite-crash",
        system="pbft",
        library_function="fopen",
        kind=OutcomeKind.CRASH,
        description=(
            "Crash due to calling fwrite with the NULL pointer returned by a "
            "previously failed fopen while writing a checkpoint."
        ),
    ),
)


class PBFTTarget:
    """The running PBFT deployment (4 replicas, 1 client)."""

    name = "pbft"
    known_bugs = KNOWN_BUGS

    def binary(self):
        return None

    def workloads(self) -> List[str]:
        return ["simple", "long"]

    def make_cluster(
        self,
        scenario: Optional[Scenario] = None,
        shared_objects: Optional[Dict[str, Any]] = None,
        observe_only: bool = False,
        run_seed: Optional[int] = None,
    ) -> PBFTCluster:
        gate = make_gate(scenario, observe_only=observe_only, shared_objects=shared_objects,
                         run_seed=run_seed)
        return PBFTCluster(replicas=4, faults_tolerated=1, gate=gate)

    def run(self, request: WorkloadRequest) -> RunResult:
        options = request.options
        shared_objects = options.get("shared_objects")
        cluster = self.make_cluster(
            scenario=request.scenario,
            shared_objects=shared_objects,
            observe_only=request.observe_only,
            run_seed=options.get("run_seed"),
        )
        requests = int(options.get("requests", 20 if request.workload == "simple" else 80))
        workload_result = cluster.run_workload(requests=requests)
        gate = cluster.gate
        stats = {
            "calls": dict(gate.call_counts) if gate is not None else {},
            "requests_completed": workload_result.requests_completed,
            "simulated_seconds": workload_result.simulated_seconds,
            "throughput": workload_result.throughput,
            "rounds": workload_result.rounds,
            "messages_sent": workload_result.messages_sent,
            "view_changes": workload_result.view_changes,
            "state_transfers": workload_result.state_transfers,
            "crashed_replicas": workload_result.crashed_replicas,
            "cluster": cluster,
        }
        log = gate.log if gate is not None else None
        return RunResult(outcome=workload_result.outcome, log=log, stats=stats)


class PBFTCheckpointTarget(CompiledTarget):
    """The compiled checkpoint/state module (bft/bft-simple/simple-server analog)."""

    name = "pbft_simple_server"
    source_file = "pbft_checkpoint.c"
    known_bugs = (KNOWN_BUGS[1],)
    accuracy_functions = ("fopen",)

    def source(self) -> str:
        return PBFT_CHECKPOINT_SOURCE

    def make_os(self) -> SimOS:
        os = SimOS(self.name)
        fs = os.fs
        fs.make_dirs("/var/pbft/replica0")
        fs.make_dirs("/etc/pbft")
        fs.add_file("/etc/pbft/config", b"replicas=4\nf=1\n")
        fs.add_file("/var/pbft/replica0/periodic.ckp", b"seq=0\n")
        fs.add_file("/var/pbft/replica0/replica.log", b"log line\n" * 4)
        return os

    def workloads(self) -> List[str]:
        return ["default-tests", "shutdown"]

    def workload_plan(self, workload: str) -> List[WorkloadStep]:
        plans = {
            "default-tests": [
                WorkloadStep(args=(1,), description="periodic checkpoint cycle"),
                WorkloadStep(args=(2,), description="log rotation + shutdown checkpoint"),
            ],
            "shutdown": [WorkloadStep(args=(2,), description="shutdown checkpoint")],
        }
        if workload not in plans:
            raise KeyError(f"pbft_simple_server has no workload {workload!r}")
        return plans[workload]


__all__ = ["KNOWN_BUGS", "PBFTCheckpointTarget", "PBFTTarget"]
