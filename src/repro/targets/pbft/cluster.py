"""The PBFT cluster: a round-based discrete-event simulation.

Four replicas (f = 1) and one client share a simulated datagram network and
a simulated clock, matching the paper's PBFT setup (simple_client /
simple_server).  Execution proceeds in rounds:

1. the client starts (or retransmits) its current request;
2. every replica drains its socket, runs the protocol state machine, and
   retransmits its newest unfinished phase message;
3. the clock advances by a base tick plus a per-message processing cost.

The per-message cost term is what makes throughput sensitive to *how much*
communication happens, which the DoS study relies on (silencing one replica
removes its messages and slightly improves throughput; the rotating attack
forces view changes and collapses it).  A request that makes no progress for
``sync_patience`` rounds completes through a state-transfer fallback (PBFT's
state synchronization), which is what bounds the worst-case slowdown under
extreme packet loss in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.controller.monitor import Outcome, OutcomeKind, classify_exception
from repro.oslib.clock import SimClock
from repro.oslib.facade import LibcFacade
from repro.oslib.net import SimNetwork
from repro.oslib.os_model import SimOS
from repro.targets.pbft.client import Client
from repro.targets.pbft.replica import Replica


@dataclass
class WorkloadResult:
    """Result of driving the cluster with a closed-loop request workload."""

    requests_completed: int = 0
    simulated_seconds: float = 0.0
    rounds: int = 0
    messages_sent: int = 0
    view_changes: int = 0
    state_transfers: int = 0
    crashed_replicas: List[str] = field(default_factory=list)
    outcome: Outcome = field(default_factory=lambda: Outcome(kind=OutcomeKind.NORMAL))

    @property
    def throughput(self) -> float:
        if self.simulated_seconds <= 0:
            return 0.0
        return self.requests_completed / self.simulated_seconds


class PBFTCluster:
    """Builds and drives one PBFT deployment."""

    ROUND_TICK = 0.001            # seconds of simulated time per round
    PER_MESSAGE_COST = 0.00003    # processing cost per handled message
    CLIENT_RETRANSMIT_AFTER = 4   # rounds before the client rebroadcasts
    VIEW_CHANGE_PATIENCE = 6      # rounds without progress before a view change
    SYNC_PATIENCE = 8             # rounds before the state-transfer fallback
    #: The state-transfer fallback moves bulk data over the same lossy
    #: network, so its cost grows with the observed drop rate (bounded).
    SYNC_BASE_COST = 0.08
    SYNC_MAX_ROUNDS = 8.0

    def __init__(
        self,
        replicas: int = 4,
        faults_tolerated: int = 1,
        gate=None,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.n = replicas
        self.f = faults_tolerated
        self.clock = clock if clock is not None else SimClock()
        self.network = SimNetwork()
        self.gate = gate

        self.addresses: Dict[str, int] = {}
        for index in range(replicas):
            self.addresses[f"replica{index}"] = 100 + index
        self.addresses["client0"] = 900

        self.replicas: List[Replica] = []
        self.oses: Dict[str, SimOS] = {}
        for index in range(replicas):
            name = f"replica{index}"
            os = SimOS(name, network=self.network, clock=self.clock)
            os.fs.make_dirs(f"/var/pbft/{name}")
            libc = LibcFacade(os, gate=gate, node=name)
            self.oses[name] = os
            self.replicas.append(
                Replica(index, replicas, libc, self.addresses, faults_tolerated)
            )
        client_os = SimOS("client0", network=self.network, clock=self.clock)
        self.oses["client0"] = client_os
        self.client = Client(
            LibcFacade(client_os, gate=gate, node="client0"),
            self.addresses,
            total_replicas=replicas,
            faults_tolerated=faults_tolerated,
        )

        self.view_changes = 0
        self.state_transfers = 0

    # ------------------------------------------------------------------
    def alive_replicas(self) -> List[Replica]:
        return [replica for replica in self.replicas if not replica.crashed]

    def _observed_drop_rate(self) -> float:
        """Fraction of intercepted communication calls that were injected."""
        if self.gate is None or self.gate.intercepted_calls == 0:
            return 0.0
        return self.gate.injected_calls / self.gate.intercepted_calls

    def _state_transfer(self, payload: str) -> None:
        """Fallback completion path (PBFT state transfer) for stuck requests."""
        self.state_transfers += 1
        for replica in self.alive_replicas():
            replica.executed_requests.append((replica.last_executed + 1, payload))
            replica.last_executed += 1
            replica.rounds_without_progress = 0
            replica.pending_client_request = None
        self.client.current_request = None
        self.client.completed_requests += 1
        # Bulk state transfer over the same degraded network: its cost grows
        # with the drop rate but is bounded (the transfer uses its own
        # acknowledgement/retry machinery).
        drop_rate = self._observed_drop_rate()
        transfer_rounds = min(self.SYNC_MAX_ROUNDS, self.SYNC_BASE_COST / max(1.0 - drop_rate, 0.02))
        self.clock.advance(self.ROUND_TICK * transfer_rounds)

    # ------------------------------------------------------------------
    def run_workload(
        self,
        requests: int = 20,
        payload: str = "op",
        max_rounds: int = 20_000,
        stop_on_crash: bool = True,
    ) -> WorkloadResult:
        """Drive the cluster with a closed-loop single-client workload."""
        result = WorkloadResult()
        start_time = self.clock.now
        start_sent = self.network.sent_count

        try:
            for request_index in range(requests):
                self.client.start_request(f"{payload}-{request_index}")
                rounds_for_request = 0
                while True:
                    if result.rounds >= max_rounds:
                        result.outcome = Outcome(
                            kind=OutcomeKind.HANG,
                            detail=f"request {request_index} still incomplete after "
                                   f"{max_rounds} rounds",
                        )
                        self._finalize(result, start_time, start_sent)
                        return result
                    messages_this_round = self._run_round()
                    result.rounds += 1
                    rounds_for_request += 1
                    if self.client.collect_replies():
                        break
                    self.client.note_waiting_round(self.CLIENT_RETRANSMIT_AFTER)
                    for replica in self.alive_replicas():
                        replica.note_round_without_progress()
                        if replica.maybe_start_view_change(self.VIEW_CHANGE_PATIENCE):
                            self.view_changes += 1
                    if rounds_for_request >= self.SYNC_PATIENCE:
                        self._state_transfer(f"{payload}-{request_index}")
                        break
                    if stop_on_crash and len(self.alive_replicas()) < 2 * self.f + 1:
                        result.outcome = Outcome(
                            kind=OutcomeKind.CRASH,
                            detail="too few live replicas to make progress",
                        )
                        self._finalize(result, start_time, start_sent)
                        return result
                result.requests_completed += 1
        except Exception as error:  # noqa: BLE001 - classified below
            result.outcome = classify_exception(error)
        self._finalize(result, start_time, start_sent)
        return result

    def _run_round(self) -> int:
        """One simulation round: every live replica processes its inbox."""
        messages = 0
        for replica in self.replicas:
            if replica.crashed:
                continue
            try:
                messages += replica.process_round()
            except Exception as error:  # noqa: BLE001 - a replica crash
                replica.crashed = True
                replica.crash_reason = classify_exception(error)  # type: ignore[attr-defined]
        self.clock.advance(self.ROUND_TICK + self.PER_MESSAGE_COST * messages)
        return messages

    def _finalize(self, result: WorkloadResult, start_time: float, start_sent: int) -> None:
        result.simulated_seconds = self.clock.now - start_time
        result.messages_sent = self.network.sent_count - start_sent
        result.view_changes = self.view_changes
        result.state_transfers = self.state_transfers
        result.crashed_replicas = [r.name for r in self.replicas if r.crashed]
        if result.crashed_replicas and result.outcome.kind is OutcomeKind.NORMAL:
            crashed = result.crashed_replicas[0]
            reason = getattr(
                next(r for r in self.replicas if r.name == crashed), "crash_reason", None
            )
            result.outcome = Outcome(
                kind=reason.kind if reason is not None else OutcomeKind.CRASH,
                detail=f"{crashed}: {reason.detail if reason is not None else 'crashed'}",
            )


__all__ = ["PBFTCluster", "WorkloadResult"]
