"""The BIND analog (compiled target)."""

from repro.targets.mini_bind.target import KNOWN_BUGS, MiniBindTarget

__all__ = ["KNOWN_BUGS", "MiniBindTarget"]
