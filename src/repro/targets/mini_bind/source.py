'''mini-C source of the BIND analog (a small authoritative DNS server).

The program mirrors the BIND subsystems the paper's evaluation touches:

* ``statschannel`` — the HTTP statistics channel that renders XML via
  libxml2; the call to ``xmlNewTextWriterDoc`` is unchecked, so a failure
  leads to a NULL-writer dereference (Table 1, BIND crash in
  ``statschannel.c``).
* ``dst_api`` — the crypto-key subsystem; ``dst_lib_init`` checks its
  ``malloc`` but its recovery path calls ``dst_lib_destroy`` before the
  ``dst_initialized`` flag is set, tripping the assertion (Table 1, BIND
  abort in ``dst_api.c``).
* configuration loading, query serving, zone-journal maintenance and
  shutdown — providing the mix of checked/unchecked ``malloc``/``open``/
  ``close``/``unlink`` call sites behind the Table 4 accuracy counts and the
  Table 3 recovery-coverage measurement.

``//@check:`` annotations are the machine-readable ground truth used by the
accuracy benchmark; they document whether each call's error return is
genuinely checked in the code (``interproc`` marks a check hidden inside a
helper, which the intra-procedural analyzer is expected to miss).
'''

BIND_SOURCE = r"""
/* ------------------------------------------------------------------ */
/* globals                                                             */
/* ------------------------------------------------------------------ */
int dst_initialized = 0;
int server_running = 0;
int query_count = 0;
int cache_entries = 0;
int journal_rotations = 0;
int config_fd = -1;

/* ------------------------------------------------------------------ */
/* small helpers                                                       */
/* ------------------------------------------------------------------ */
int validate_descriptor(int fd) {
    if (fd < 0) {
        return 0;
    }
    return 1;
}

int log_message(int code) {
    puts("named: event logged");
    return code;
}

/* ------------------------------------------------------------------ */
/* memory pools (dst_api.c / mem.c analog)                             */
/* ------------------------------------------------------------------ */
int pool_alloc(int size) {
    int block;
    block = malloc(size);                      //@check:yes
    if (block == 0) {
        log_message(-1);
        return 0;
    }
    return block;
}

int pool_alloc_zeroed(int size) {
    int block;
    block = malloc(size);                      //@check:yes
    if (block == 0) {
        return 0;
    }
    memset(block, 0, size);
    return block;
}

int cache_insert(int key) {
    int entry;
    entry = malloc(8);                         //@check:no
    *entry = key;
    cache_entries = cache_entries + 1;
    return entry;
}

int names_table_grow(int count) {
    int table;
    table = malloc(count * 4);                 //@check:yes
    if (table == 0) {
        puts("named: out of memory growing name table");
        return 0;
    }
    return table;
}

int message_buffer_new() {
    int buffer;
    buffer = malloc(512);                      //@check:no
    *buffer = 0;
    return buffer;
}

int dst_lib_destroy() {
    if (dst_initialized == 0) {
        assert_fail("dst_initialized == ISC_TRUE");
    }
    dst_initialized = 0;
    return 0;
}

int dst_lib_init() {
    int ctx;
    int keytable;
    ctx = malloc(64);                          //@check:yes
    if (ctx == 0) {
        /* Recovery code: tear down the dst structures.  The flag has not
           been set yet, so dst_lib_destroy trips its assertion (Table 1). */
        dst_lib_destroy();
        return -1;
    }
    keytable = malloc(128);                    //@check:yes
    if (keytable == 0) {
        free(ctx);
        return -1;
    }
    dst_initialized = 1;
    return 0;
}

int tsig_key_create(int name) {
    int key;
    key = malloc(96);                          //@check:yes
    if (key == 0) {
        return -1;
    }
    *key = name;
    return 0;
}

int view_create(int zone_count) {
    int view;
    int zones;
    view = malloc(32);                         //@check:yes
    if (view == 0) {
        return -1;
    }
    zones = malloc(zone_count * 2);            //@check:yes
    if (zones == 0) {
        free(view);
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* configuration loading (named/server.c analog)                       */
/* ------------------------------------------------------------------ */
int config_open() {
    int fd;
    fd = open("/etc/bind/named.conf", 0);      //@check:yes
    if (fd < 0) {
        puts("named: cannot open named.conf");
        return -1;
    }
    return fd;
}

int config_open_rndc_key() {
    int fd;
    fd = open("/etc/bind/rndc.key", 0);        //@check:interproc
    if (validate_descriptor(fd) == 0) {
        puts("named: cannot open rndc.key");
        return -1;
    }
    return fd;
}

int config_read(int fd) {
    int buffer[128];
    int n;
    n = read(fd, buffer, 96);
    if (n < 0) {
        puts("named: error reading configuration");
        return -1;
    }
    return n;
}

int load_configuration() {
    int fd;
    int keyfd;
    int status;
    fd = config_open();
    if (fd < 0) {
        return -1;
    }
    config_fd = fd;
    status = config_read(fd);
    if (status < 0) {
        close(fd);                             //@check:no
        return -1;
    }
    keyfd = config_open_rndc_key();
    if (keyfd >= 0) {
        status = close(keyfd);                 //@check:yes
        if (status < 0) {
            log_message(status);
        }
    }
    status = close(fd);                        //@check:yes
    if (status < 0) {
        puts("named: close of named.conf failed");
        return -1;
    }
    config_fd = -1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* zone loading and journal maintenance                                */
/* ------------------------------------------------------------------ */
int zone_load(int index) {
    int fd;
    int n;
    int buffer[64];
    fd = open("/var/bind/zones/example.zone", 0);   //@check:yes
    if (fd == -1) {
        puts("named: zone file missing");
        return -1;
    }
    n = read(fd, buffer, 48);
    if (n < 0) {
        close(fd);                             //@check:no
        return -1;
    }
    n = close(fd);                             //@check:yes
    if (n < 0) {
        return -1;
    }
    return 0;
}

int journal_rollforward() {
    int fd;
    int n;
    int buffer[32];
    fd = open("/var/bind/zones/example.jnl", 0);    //@check:no
    n = read(fd, buffer, 16);
    if (n < 0) {
        puts("named: journal read failed");
    }
    close(fd);                                 //@check:no
    return 0;
}

int journal_cleanup() {
    int status;
    status = unlink("/var/bind/zones/example.jnl.old");   //@check:yes
    if (status < 0) {
        puts("named: could not remove old journal");
        return -1;
    }
    journal_rotations = journal_rotations + 1;
    return 0;
}

int journal_compact() {
    int status;
    status = unlink("/var/bind/zones/example.jnl.tmp");   //@check:yes
    if (status == -1) {
        log_message(status);
        return -1;
    }
    return 0;
}

int pid_file_remove() {
    unlink("/var/run/named.pid");              //@check:no
    return 0;
}

int lock_file_remove() {
    int status;
    status = unlink("/var/run/named.lock");    //@check:yes
    if (status < 0) {
        if (errno == 2) {
            return 0;
        }
        puts("named: cannot remove lock file");
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* query serving (query.c analog)                                      */
/* ------------------------------------------------------------------ */
int answer_query(int query_id) {
    int entry;
    int buffer;
    entry = cache_insert(query_id);
    buffer = message_buffer_new();
    *buffer = query_id;
    query_count = query_count + 1;
    return 0;
}

int serve_queries(int how_many) {
    int fd;
    int i;
    int n;
    int status;
    int buffer[32];
    fd = open("/var/bind/queries.txt", 0);     //@check:yes
    if (fd < 0) {
        puts("named: no query workload");
        return -1;
    }
    i = 0;
    while (i < how_many) {
        n = read(fd, buffer, 8);
        if (n < 0) {
            puts("named: query read error, dropping request");
            i = i + 1;
            continue;
        }
        answer_query(i);
        i = i + 1;
    }
    status = close(fd);                        //@check:yes
    if (status < 0) {
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* statistics channel (statschannel.c analog)                          */
/* ------------------------------------------------------------------ */
int render_stats(int fd) {
    int writer;
    int doc[1];
    writer = xmlNewTextWriterDoc(doc, 0);      //@check:no
    /* BUG (Table 1): writer is used without checking for NULL; if the
       xmlNewTextWriterDoc call fails the next call dereferences NULL. */
    xmlTextWriterStartDocument(writer, 0);
    xmlTextWriterWriteString(writer, "server statistics");
    xmlTextWriterEndDocument(writer);
    xmlFreeTextWriter(writer);
    write(fd, "HTTP/1.1 200 OK", 15);
    return 0;
}

int stats_channel_request() {
    int fd;
    int status;
    fd = open("/var/bind/stats.http", 66);     //@check:yes
    if (fd < 0) {
        puts("named: cannot open stats socket");
        return -1;
    }
    render_stats(fd);
    status = close(fd);                        //@check:yes
    if (status < 0) {
        log_message(status);
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* server lifecycle                                                    */
/* ------------------------------------------------------------------ */
int server_startup() {
    int status;
    status = load_configuration();
    if (status < 0) {
        return -1;
    }
    status = dst_lib_init();
    if (status < 0) {
        puts("named: dst subsystem unavailable");
    }
    status = view_create(4);
    if (status < 0) {
        return -1;
    }
    status = tsig_key_create(7);
    if (status < 0) {
        puts("named: tsig key creation failed");
    }
    status = names_table_grow(16);
    if (status == 0) {
        return -1;
    }
    server_running = 1;
    return 0;
}

int server_shutdown() {
    int status;
    int scratch;
    scratch = pool_alloc(64);
    if (scratch == 0) {
        puts("named: shutdown without scratch buffer");
    }
    status = pid_file_remove();
    status = lock_file_remove();
    if (status < 0) {
        log_message(status);
    }
    server_running = 0;
    return 0;
}

int zone_maintenance() {
    int status;
    status = zone_load(0);
    if (status < 0) {
        puts("named: zone load failed");
    }
    status = journal_rollforward();
    status = journal_cleanup();
    if (status < 0) {
        log_message(status);
    }
    status = journal_compact();
    if (status < 0) {
        log_message(status);
    }
    status = pool_alloc_zeroed(256);
    if (status == 0) {
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* entry point: command codes select the subsystem to exercise         */
/* ------------------------------------------------------------------ */
int main(int command) {
    if (command == 1) {
        return server_startup();
    }
    if (command == 2) {
        return serve_queries(4);
    }
    if (command == 3) {
        return stats_channel_request();
    }
    if (command == 4) {
        return zone_maintenance();
    }
    if (command == 5) {
        return server_shutdown();
    }
    puts("named: unknown command");
    return 2;
}
"""
