"""Target adapter for the BIND analog."""

from __future__ import annotations

from typing import List

from repro.core.controller.monitor import OutcomeKind
from repro.oslib.os_model import SimOS
from repro.targets.base import CompiledTarget, KnownBug, WorkloadStep
from repro.targets.mini_bind.source import BIND_SOURCE

KNOWN_BUGS = (
    KnownBug(
        identifier="bind-statschannel-xml",
        system="mini_bind",
        library_function="xmlNewTextWriterDoc",
        kind=OutcomeKind.CRASH,
        description=(
            "Crash if the call to xmlNewTextWriterDoc fails while a user is "
            "retrieving statistics over HTTP (NULL writer dereferenced)."
        ),
    ),
    KnownBug(
        identifier="bind-dst-lib-init-malloc",
        system="mini_bind",
        library_function="malloc",
        kind=OutcomeKind.ABORT,
        description=(
            "Abort due to incorrectly handled malloc failure in dst_lib_init: "
            "the recovery path calls dst_lib_destroy before dst_initialized is "
            "set, tripping the assertion."
        ),
    ),
)

#: The trimmed list of libc functions used for the Table 3 coverage run
#: ("approximately 25 library calls that are known to fail on occasion").
COVERAGE_FUNCTIONS = (
    "open", "read", "close", "malloc", "unlink", "write", "fopen", "fstat",
)


class MiniBindTarget(CompiledTarget):
    """BIND 9.6.1 analog: authoritative DNS server with a stats channel."""

    name = "mini_bind"
    source_file = "mini_bind.c"
    known_bugs = KNOWN_BUGS
    accuracy_functions = ("malloc", "unlink", "open", "close")

    def source(self) -> str:
        return BIND_SOURCE

    def make_os(self) -> SimOS:
        os = SimOS(self.name)
        fs = os.fs
        fs.make_dirs("/etc/bind")
        fs.make_dirs("/var/bind/zones")
        fs.make_dirs("/var/run")
        fs.add_file("/etc/bind/named.conf", b"options { directory /var/bind; };\n" * 3)
        fs.add_file("/etc/bind/rndc.key", b"key rndc-key { secret abcd; };\n")
        fs.add_file(
            "/var/bind/zones/example.zone",
            b"example.com. IN SOA ns1 admin 1 2 3 4 5\nwww IN A 192.0.2.7\n",
        )
        fs.add_file("/var/bind/zones/example.jnl", b"journal-entry-1\n")
        fs.add_file("/var/bind/zones/example.jnl.old", b"old-journal\n")
        fs.add_file("/var/bind/zones/example.jnl.tmp", b"tmp-journal\n")
        fs.add_file("/var/run/named.pid", b"4242\n")
        fs.add_file("/var/run/named.lock", b"\n")
        fs.add_file("/var/bind/queries.txt", b"www.example.com A\nmail.example.com MX\n" * 4)
        return os

    def workloads(self) -> List[str]:
        return ["default-tests", "queries", "stats", "maintenance"]

    def workload_plan(self, workload: str) -> List[WorkloadStep]:
        plans = {
            # The default test suite exercises every subsystem once, which is
            # the baseline for the Table 3 coverage measurement.
            "default-tests": [
                WorkloadStep(args=(1,), description="server startup"),
                WorkloadStep(args=(2,), description="serve DNS queries"),
                WorkloadStep(args=(3,), description="statistics channel request"),
                WorkloadStep(args=(4,), description="zone maintenance"),
                WorkloadStep(args=(5,), description="server shutdown"),
            ],
            "queries": [
                WorkloadStep(args=(1,), description="server startup"),
                WorkloadStep(args=(2,), description="serve DNS queries"),
            ],
            "stats": [
                WorkloadStep(args=(1,), description="server startup"),
                WorkloadStep(args=(3,), description="statistics channel request"),
            ],
            "maintenance": [
                WorkloadStep(args=(1,), description="server startup"),
                WorkloadStep(args=(4,), description="zone maintenance"),
                WorkloadStep(args=(5,), description="server shutdown"),
            ],
        }
        if workload not in plans:
            raise KeyError(f"mini_bind has no workload {workload!r}")
        return plans[workload]


__all__ = ["COVERAGE_FUNCTIONS", "KNOWN_BUGS", "MiniBindTarget"]
