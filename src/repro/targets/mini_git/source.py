'''mini-C source of the Git analog (a small content-tracking tool).

Planted bugs (Table 1):

* ``setup_work_tree`` does not check ``setenv``; a later external command
  then runs with an incomplete environment and silently deletes an object
  file — the data-loss bug.
* ``collect_refs`` does not check ``opendir``; ``readdir`` is then called
  with a NULL directory pointer and crashes inside the library.
* ``xdiff_merge`` (twice) and ``xdiff_patience`` (once) use ``malloc``
  results without checking them — the three unchecked-malloc crashes in
  ``xdiff/xmerge.c`` and ``xdiff/xpatience.c``.

The remaining functions provide the checked ``malloc``/``close``/
``readlink`` call sites behind Git's rows of Table 4 (the paper found Git's
``close`` handling to be consistently checked) and the recovery code
measured in Table 3.
'''

GIT_SOURCE = r"""
/* ------------------------------------------------------------------ */
/* globals                                                             */
/* ------------------------------------------------------------------ */
int objects_written = 0;
int commit_timestamp = 0;
int refs_seen = 0;
int merge_conflicts = 0;
int index_dirty = 0;

int die(int code) {
    puts("fatal: internal error");
    exit(128);
    return code;
}

/* ------------------------------------------------------------------ */
/* object store (sha1_file.c analog)                                   */
/* ------------------------------------------------------------------ */
int object_buffer_new(int size) {
    int buffer;
    buffer = malloc(size);                      //@check:yes
    if (buffer == 0) {
        die(12);
        return 0;
    }
    return buffer;
}

int write_object(int object_id) {
    int fd;
    int status;
    int buffer;
    buffer = object_buffer_new(64);
    *buffer = object_id;
    fd = open("/repo/.git/objects/incoming", 65);
    if (fd < 0) {
        puts("error: unable to create object file");
        return -1;
    }
    status = write(fd, buffer, 16);
    /* SEEDED BUG (short write): only status < 0 is treated as failure.  A
       partial write (0 < status < 16) leaves a truncated object on disk,
       yet the commit is reported as successful — silent data loss the
       partial_write / crash_point fault classes are meant to expose. */
    if (status < 0) {
        close(fd);                              //@check:no
        return -1;
    }
    status = close(fd);                         //@check:yes
    if (status < 0) {
        puts("error: close failed while writing object");
        return -1;
    }
    objects_written = objects_written + 1;
    return 0;
}

int read_object(int object_id) {
    int fd;
    int n;
    int status;
    int buffer[64];
    fd = open("/repo/.git/objects/blob1", 0);
    if (fd < 0) {
        return -1;
    }
    n = read(fd, buffer, 32);
    if (n < 0) {
        close(fd);                              //@check:no
        return -1;
    }
    status = close(fd);                         //@check:yes
    if (status == -1) {
        return -1;
    }
    return n;
}

/* ------------------------------------------------------------------ */
/* environment handling (run-command.c analog)                         */
/* ------------------------------------------------------------------ */
int setup_work_tree() {
    setenv("GIT_WORK_TREE", "/repo", 1);        /* checked */
    /* BUG (Table 1): the objects-directory variable is not checked; if the
       setenv fails, child commands run with an incomplete environment. */
    setenv("GIT_OBJECT_DIRECTORY", "/repo/.git/objects", 1);
    return 0;
}

int run_external_command(int command) {
    int objdir;
    objdir = getenv("GIT_OBJECT_DIRECTORY");
    if (objdir == 0) {
        /* The child command falls back to a wrong path and ends up pruning
           a live object: silent data loss. */
        unlink("/repo/.git/objects/blob1");
        return 0;
    }
    puts("running external command");
    return 0;
}

/* ------------------------------------------------------------------ */
/* refs enumeration (refs.c analog)                                    */
/* ------------------------------------------------------------------ */
int collect_refs() {
    int dir;
    int entry;
    dir = opendir("/repo/.git/refs/heads");
    /* BUG (Table 1): opendir's return value is not checked; when it fails,
       readdir dereferences a NULL DIR pointer and crashes. */
    while (entry = readdir(dir)) {
        refs_seen = refs_seen + 1;
    }
    closedir(dir);
    return refs_seen;
}

int resolve_symbolic_ref() {
    int n;
    int buffer[64];
    n = readlink("/repo/.git/HEAD", buffer, 48);   //@check:yes
    if (n < 0) {
        puts("error: cannot resolve HEAD");
        return -1;
    }
    return n;
}

int resolve_link_target(int which) {
    int n;
    int buffer[64];
    n = readlink("/repo/link-to-readme", buffer, 32);    //@check:yes
    if (n == -1) {
        return -1;
    }
    return n;
}

int check_symref_format() {
    int n;
    int buffer[32];
    n = readlink("/repo/.git/HEAD", buffer, 16);   //@check:yes
    if (n < 0) {
        return 0;
    }
    return 1;
}

/* ------------------------------------------------------------------ */
/* index handling (read-cache.c analog)                                */
/* ------------------------------------------------------------------ */
int read_index() {
    int fd;
    int n;
    int status;
    int buffer[64];
    int entries;
    fd = open("/repo/.git/index", 0);
    if (fd < 0) {
        puts("warning: no index file");
        return 0;
    }
    entries = malloc(256);                      //@check:yes
    if (entries == 0) {
        close(fd);                              //@check:no
        return -1;
    }
    n = read(fd, buffer, 48);
    if (n < 0) {
        free(entries);
        close(fd);                              //@check:no
        return -1;
    }
    status = close(fd);                         //@check:yes
    if (status < 0) {
        return -1;
    }
    return n;
}

int write_index() {
    int fd;
    int status;
    fd = open("/repo/.git/index.lock", 65);
    if (fd < 0) {
        return -1;
    }
    status = write(fd, "DIRC", 4);
    /* short-write blind like upstream git of this era: a partial header
       write (status in 1..3) is not retried; benign here because the
       index is rewritten in full on the next add. */
    if (status < 0) {
        close(fd);                              //@check:no
        return -1;
    }
    status = close(fd);                         //@check:yes
    if (status < 0) {
        puts("error: unable to write index");
        return -1;
    }
    index_dirty = 0;
    return 0;
}

/* ------------------------------------------------------------------ */
/* merge machinery (xdiff/xmerge.c and xdiff/xpatience.c analogs)      */
/* ------------------------------------------------------------------ */
int xdiff_merge(int size_a, int size_b) {
    int result_a;
    int result_b;
    int i;
    result_a = malloc(size_a);                  //@check:no
    /* BUG (Table 1, xmerge.c line 567 analog): result used unchecked. */
    *result_a = 1;
    result_b = malloc(size_b);                  //@check:no
    /* BUG (Table 1, xmerge.c line 571 analog): result used unchecked. */
    i = 0;
    while (i < 4) {
        result_b[i] = i;
        i = i + 1;
    }
    merge_conflicts = 0;
    return 0;
}

int xdiff_patience(int lines) {
    int table;
    table = malloc(lines * 2);                  //@check:no
    /* BUG (Table 1, xpatience.c line 191 analog): result used unchecked. */
    memset(table, 0, 8);
    return 0;
}

int xdiff_prepare(int lines) {
    int records;
    records = malloc(lines);                    //@check:yes
    if (records == 0) {
        return -1;
    }
    return records;
}

int merge_blobs() {
    int status;
    int prepared;
    prepared = xdiff_prepare(32);
    if (prepared == -1) {
        return -1;
    }
    status = xdiff_merge(24, 16);
    if (status < 0) {
        return -1;
    }
    status = xdiff_patience(12);
    if (status < 0) {
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* porcelain commands                                                  */
/* ------------------------------------------------------------------ */
int cmd_status() {
    int count;
    int head;
    count = collect_refs();
    if (count < 0) {
        return 1;
    }
    head = resolve_symbolic_ref();
    if (head < 0) {
        return 1;
    }
    read_index();
    puts("on branch master");
    return 0;
}

int cmd_add() {
    int scratch;
    scratch = object_buffer_new(128);
    if (scratch == 0) {
        return 1;
    }
    index_dirty = 1;
    return write_index();
}

int cmd_commit() {
    int status;
    int stamp;
    stamp = time(0);                            //@check:yes
    if (stamp < 0) {
        puts("error: cannot read commit timestamp");
        return 1;
    }
    commit_timestamp = stamp;
    status = write_object(7);
    if (status < 0) {
        return 1;
    }
    status = write_index();
    if (status < 0) {
        return 1;
    }
    puts("committed");
    return 0;
}

int cmd_merge() {
    int status;
    status = read_object(3);
    if (status < 0) {
        return 1;
    }
    status = merge_blobs();
    if (status < 0) {
        return 1;
    }
    puts("merge completed");
    return 0;
}

int cmd_checkout() {
    int target;
    int fmt;
    target = resolve_link_target(1);
    if (target < 0) {
        return 1;
    }
    fmt = check_symref_format();
    if (fmt == 0) {
        puts("detached HEAD");
    }
    return 0;
}

int cmd_gc() {
    int status;
    status = setup_work_tree();
    if (status < 0) {
        return 1;
    }
    status = run_external_command(2);
    if (status < 0) {
        return 1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* entry point                                                         */
/* ------------------------------------------------------------------ */
int main(int command) {
    if (command == 1) {
        return cmd_status();
    }
    if (command == 2) {
        return cmd_add();
    }
    if (command == 3) {
        return cmd_commit();
    }
    if (command == 4) {
        return cmd_merge();
    }
    if (command == 5) {
        return cmd_checkout();
    }
    if (command == 6) {
        return cmd_gc();
    }
    puts("usage: git <command>");
    return 129;
}
"""
