"""Target adapter for the Git analog."""

from __future__ import annotations

from typing import List, Optional

from repro.core.controller.monitor import Outcome, OutcomeKind
from repro.oslib.os_model import SimOS
from repro.targets.base import CompiledTarget, KnownBug, WorkloadStep
from repro.targets.mini_git.source import GIT_SOURCE

KNOWN_BUGS = (
    KnownBug(
        identifier="git-setenv-data-loss",
        system="mini_git",
        library_function="setenv",
        kind=OutcomeKind.DATA_LOSS,
        description=(
            "Data loss caused by running an external command with an incomplete "
            "environment after a failed setenv (a live object file is pruned)."
        ),
    ),
    KnownBug(
        identifier="git-opendir-readdir-null",
        system="mini_git",
        library_function="opendir",
        kind=OutcomeKind.CRASH,
        description=(
            "Crash due to calling readdir with the NULL pointer returned by a "
            "previously failed opendir call."
        ),
    ),
    KnownBug(
        identifier="git-xmerge-malloc-1",
        system="mini_git",
        library_function="malloc",
        kind=OutcomeKind.CRASH,
        description="Crash due to unhandled malloc return value (xdiff merge, first buffer).",
    ),
    KnownBug(
        identifier="git-xmerge-malloc-2",
        system="mini_git",
        library_function="malloc",
        kind=OutcomeKind.CRASH,
        description="Crash due to unhandled malloc return value (xdiff merge, second buffer).",
    ),
    KnownBug(
        identifier="git-xpatience-malloc",
        system="mini_git",
        library_function="malloc",
        kind=OutcomeKind.CRASH,
        description="Crash due to unhandled malloc return value (xdiff patience table).",
    ),
)

#: Functions used for the Table 3 coverage run.
COVERAGE_FUNCTIONS = (
    "open", "read", "close", "malloc", "readlink", "write", "setenv", "opendir",
)


class MiniGitTarget(CompiledTarget):
    """Git 1.6.5.4 analog: status/add/commit/merge/checkout/gc commands."""

    name = "mini_git"
    source_file = "mini_git.c"
    known_bugs = KNOWN_BUGS
    accuracy_functions = ("malloc", "close", "readlink")

    def source(self) -> str:
        return GIT_SOURCE

    def make_os(self) -> SimOS:
        os = SimOS(self.name)
        fs = os.fs
        fs.make_dirs("/repo/.git/objects")
        fs.make_dirs("/repo/.git/refs/heads")
        fs.add_file("/repo/.git/objects/blob1", b"blob 11\x00hello world")
        fs.add_file("/repo/.git/refs/heads/master", b"0123abcd\n")
        fs.add_file("/repo/.git/refs/heads/topic", b"4567ef01\n")
        fs.add_file("/repo/.git/index", b"DIRC0001entry-a entry-b\n")
        fs.add_file("/repo/README.md", b"# project\n")
        fs.add_symlink("/repo/.git/HEAD", "/repo/.git/refs/heads/master")
        fs.add_symlink("/repo/link-to-readme", "/repo/README.md")
        return os

    def workloads(self) -> List[str]:
        return ["default-tests", "status", "commit", "merge", "gc"]

    def workload_plan(self, workload: str) -> List[WorkloadStep]:
        plans = {
            "default-tests": [
                WorkloadStep(args=(1,), description="git status"),
                WorkloadStep(args=(2,), description="git add"),
                WorkloadStep(args=(3,), description="git commit"),
                WorkloadStep(args=(4,), description="git merge"),
                WorkloadStep(args=(5,), description="git checkout"),
                WorkloadStep(args=(6,), description="git gc"),
            ],
            "status": [WorkloadStep(args=(1,), description="git status")],
            "commit": [
                WorkloadStep(args=(2,), description="git add"),
                WorkloadStep(args=(3,), description="git commit"),
            ],
            "merge": [WorkloadStep(args=(4,), description="git merge")],
            "gc": [WorkloadStep(args=(6,), description="git gc")],
        }
        if workload not in plans:
            raise KeyError(f"mini_git has no workload {workload!r}")
        return plans[workload]

    def check_oracles(self, os: SimOS) -> Optional[Outcome]:
        """Detect silent data loss: the pruned blob and truncated objects."""
        if not os.fs.exists("/repo/.git/objects/blob1"):
            return Outcome(
                kind=OutcomeKind.DATA_LOSS,
                detail="object file /repo/.git/objects/blob1 was pruned by an external "
                       "command running with an incomplete environment",
            )
        # The seeded short-write bug in write_object: a partial write (or a
        # torn crash-point write) leaves a truncated 16-byte object that the
        # commit path reported as successfully written.  An empty file is
        # the handled write-failure path (status < 0 before any byte landed)
        # and is not data loss.
        incoming = "/repo/.git/objects/incoming"
        if os.fs.exists(incoming):
            size = len(os.fs.file_contents(incoming))
            if 0 < size < 16:
                return Outcome(
                    kind=OutcomeKind.DATA_LOSS,
                    detail=f"committed object {incoming} is truncated "
                           f"({size} of 16 bytes) — short write treated as success",
                )
        return None


__all__ = ["COVERAGE_FUNCTIONS", "KNOWN_BUGS", "MiniGitTarget"]
