"""The Git analog (compiled target)."""

from repro.targets.mini_git.target import KNOWN_BUGS, MiniGitTarget

__all__ = ["KNOWN_BUGS", "MiniGitTarget"]
