"""The MySQL analog (Python-level server target)."""

from repro.targets.mini_mysql.target import KNOWN_BUGS, MiniMySQLTarget

__all__ = ["KNOWN_BUGS", "MiniMySQLTarget"]
