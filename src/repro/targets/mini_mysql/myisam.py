"""MyISAM-like storage engine module of the MySQL analog.

Lives in its own module on purpose: the Table 2 precision experiment's second
scenario restricts injection to ``close`` calls issued *from the file the bug
lives in*, which the call-stack trigger expresses as "some frame's module is
``myisam``" — exactly how the paper narrowed injections to the buggy file.

``mi_create`` reproduces the MySQL double-unlock bug from Table 1: the error
handling that runs after a failed ``close`` releases resources, including a
mutex that the normal path has already released, which aborts the process
(error-checking mutexes treat a double unlock as fatal).
"""

from __future__ import annotations

from repro.oslib import fs as fsmod
from repro.oslib.facade import LibcFacade

#: The storage-engine global mutex (THR_LOCK_myisam analog).
MYISAM_LOCK = 0x51


class MyISAMEngine:
    """Table creation and maintenance for the MySQL analog."""

    def __init__(self, libc: LibcFacade, data_dir: str = "/var/lib/mysql/data") -> None:
        self.libc = libc
        self.data_dir = data_dir
        self.tables_created = 0
        self.create_errors = 0

    # ------------------------------------------------------------------
    def mi_create(self, table_name: str) -> int:
        """Create a MyISAM table (index + data file).

        Mirrors mi_create(): the index file is written under the storage
        engine mutex; the mutex is released on the normal path, and the
        error-handling path after a failed ``close`` releases "all"
        resources — including that mutex, a second time.
        """
        libc = self.libc
        index_path = f"{self.data_dir}/{table_name}.MYI"
        data_path = f"{self.data_dir}/{table_name}.MYD"

        libc.mutex_lock(MYISAM_LOCK)
        index_fd = libc.open(index_path, fsmod.O_WRONLY | fsmod.O_CREAT | fsmod.O_TRUNC)
        if index_fd < 0:
            libc.mutex_unlock(MYISAM_LOCK)
            self.create_errors += 1
            return -1
        # Short-write blind (faithful to the analog's era): a truncated MYI
        # header is only caught later by mi_repair, never here.
        libc.write(index_fd, b"MYI" + table_name.encode())
        data_fd = libc.open(data_path, fsmod.O_WRONLY | fsmod.O_CREAT | fsmod.O_TRUNC)
        if data_fd < 0:
            libc.close(index_fd)
            libc.mutex_unlock(MYISAM_LOCK)
            self.create_errors += 1
            return -1
        libc.write(data_fd, b"MYD")
        libc.close(data_fd)

        # Normal path: the mutex is released before the final close.
        libc.mutex_unlock(MYISAM_LOCK)
        status = libc.close(index_fd)
        if status < 0:
            # BUG (Table 1): the error path releases every resource the
            # function acquired, including the mutex that was already
            # released above — a double unlock, which aborts the server.
            return self._mi_create_cleanup(index_path, data_path)
        self.tables_created += 1
        return 0

    def _mi_create_cleanup(self, index_path: str, data_path: str) -> int:
        libc = self.libc
        libc.unlink(index_path)
        libc.unlink(data_path)
        libc.mutex_unlock(MYISAM_LOCK)  # double unlock -> MutexAbort
        self.create_errors += 1
        return -1

    # ------------------------------------------------------------------
    def mi_repair(self, table_name: str) -> int:
        """Rewrite a table's data file (exercises checked close handling)."""
        libc = self.libc
        path = f"{self.data_dir}/{table_name}.MYD"
        fd = libc.open(path, fsmod.O_WRONLY | fsmod.O_CREAT)
        if fd < 0:
            return -1
        payload = b"repaired"
        written = libc.write(fd, payload)
        if written != len(payload):
            # Repair must not itself leave a torn data file: a failed or
            # short write aborts the repair (checked, unlike mi_create).
            libc.close(fd)
            return -1
        status = libc.close(fd)
        if status < 0:
            return -1
        return 0


__all__ = ["MYISAM_LOCK", "MyISAMEngine"]
