"""The MySQL analog: a small single-process database server.

Everything the server does to its environment goes through the
:class:`~repro.oslib.facade.LibcFacade`, so LFI can intercept it.  The
server exposes the two global state variables the paper's overhead triggers
inspect (``thread_count`` and ``shutdown_in_progress``) through
:meth:`MySQLServer.read_state`.

Planted bugs (Table 1):

* ``load_error_messages`` — if reading ``errmsg.sys`` fails with a low-level
  I/O error, the error is logged but an uninitialized message index is then
  accessed, crashing the server (the missing-file case, by contrast, is
  handled: that is the already-fixed upstream bug the paper references).
* ``MyISAMEngine.mi_create`` (in :mod:`repro.targets.mini_mysql.myisam`) —
  double mutex unlock after a failed ``close``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.oslib import fs as fsmod
from repro.oslib.errno_codes import Errno
from repro.oslib.facade import LibcFacade
from repro.oslib.libc import F_GETLK, F_SETLK
from repro.oslib.os_model import SimOS
from repro.targets.mini_mysql.myisam import MyISAMEngine

ERRMSG_PATH = "/var/lib/mysql/share/errmsg.sys"
QUERY_CACHE_PATH = "/var/lib/mysql/cache/query_cache.dat"
GENERAL_LOG_PATH = "/var/lib/mysql/log/general.log"
TABLE_PATH = "/var/lib/mysql/data/sbtest.MYD"


class MySQLServer:
    """A miniature MySQL 5.1 standing in for the real server."""

    def __init__(self, os: SimOS, libc: Optional[LibcFacade] = None) -> None:
        self.os = os
        self.libc = libc if libc is not None else LibcFacade(os, node="mysqld")
        self.engine = MyISAMEngine(self.libc)

        # Globals inspected by program-state triggers (§7.4, Table 6).
        self.thread_count = 0
        self.shutdown_in_progress = 0
        self.max_connections = 151

        self.error_messages: Optional[Dict[int, str]] = None
        self.queries_executed = 0
        self.transactions_committed = 0
        self.started = False
        #: Rounds of per-row processing work (parsing/plan evaluation analog)
        #: per query; this keeps the query cost realistic relative to the
        #: trigger-evaluation cost measured in Table 6.
        self.query_work_factor = 20

    # ------------------------------------------------------------------
    # program state exposed to triggers
    # ------------------------------------------------------------------
    def read_state(self, name: str) -> Optional[int]:
        values = {
            "thread_count": self.thread_count,
            "shutdown_in_progress": self.shutdown_in_progress,
            "max_connections": self.max_connections,
            "queries_executed": self.queries_executed,
        }
        return values.get(name)

    # ------------------------------------------------------------------
    # startup / shutdown
    # ------------------------------------------------------------------
    def startup(self) -> int:
        self.load_error_messages()
        self.thread_count = 1
        self.started = True
        return 0

    def shutdown(self) -> int:
        self.shutdown_in_progress = 1
        self.flush_query_cache()
        self.thread_count = 0
        self.started = False
        return 0

    def load_error_messages(self) -> int:
        """Load errmsg.sys; reproduces the Table 1 read-failure crash."""
        libc = self.libc
        fd = libc.open(ERRMSG_PATH, fsmod.O_RDONLY)
        if fd < 0:
            if libc.errno == Errno.ENOENT:
                # The missing-file case is handled gracefully (the upstream
                # bug the paper cites as already fixed).
                self.os.write_stderr("mysqld: errmsg.sys not found, using builtin messages\n")
                self.error_messages = {}
                return 0
            self.os.write_stderr("mysqld: cannot open errmsg.sys\n")
            self.error_messages = {}
            return -1
        data = libc.read(fd, 4096)
        if data is None:
            # BUG (Table 1): the read failure (e.g. EIO) is logged, but the
            # code then goes on to use the uninitialized message index.
            self.os.write_stderr("mysqld: error reading errmsg.sys\n")
            libc.close(fd)
            first_message = self.error_messages[0]  # crashes: index is None
            return len(first_message)
        libc.close(fd)
        messages: Dict[int, str] = {}
        for index, line in enumerate(data.decode("latin-1").splitlines()):
            messages[index] = line
        self.error_messages = messages
        return 0

    # ------------------------------------------------------------------
    # housekeeping used by the merge-big workload
    # ------------------------------------------------------------------
    def flush_query_cache(self) -> int:
        """Write the query cache out; two close calls, both failures abort the flush."""
        libc = self.libc
        fd = libc.open(QUERY_CACHE_PATH, fsmod.O_WRONLY | fsmod.O_CREAT | fsmod.O_TRUNC)
        if fd < 0:
            return -1
        libc.write(fd, b"cache-segment-1")
        if libc.close(fd) < 0:
            self.os.write_stderr("mysqld: query cache flush failed\n")
            return -1
        fd = libc.open(QUERY_CACHE_PATH, fsmod.O_WRONLY | fsmod.O_APPEND)
        if fd < 0:
            return -1
        libc.write(fd, b"cache-segment-2")
        if libc.close(fd) < 0:
            self.os.write_stderr("mysqld: query cache flush failed\n")
            return -1
        return 0

    def rotate_general_log(self) -> int:
        libc = self.libc
        fd = libc.open(GENERAL_LOG_PATH, fsmod.O_WRONLY | fsmod.O_APPEND | fsmod.O_CREAT)
        if fd < 0:
            return -1
        libc.write(fd, b"log rotated\n")
        if libc.close(fd) < 0:
            self.os.write_stderr("mysqld: log rotation failed\n")
            return -1
        return 0

    # ------------------------------------------------------------------
    # query execution (SysBench OLTP workload)
    # ------------------------------------------------------------------
    def _process_row(self, row: bytes) -> int:
        """Simulated parse/plan/evaluate work over one row."""
        checksum = 0
        for _ in range(self.query_work_factor):
            for byte in row:
                checksum = (checksum * 31 + byte) & 0xFFFFFFFF
        return checksum

    def execute_read_query(self, key: int) -> int:
        libc = self.libc
        fd = libc.open(TABLE_PATH, fsmod.O_RDONLY)
        if fd < 0:
            return -1
        libc.fcntl(fd, F_GETLK)
        row = libc.read(fd, 64)
        libc.close(fd)
        if row is None:
            return -1
        self._process_row(row)
        self.queries_executed += 1
        return len(row)

    def execute_write_query(self, key: int, value: bytes = b"x" * 32) -> int:
        libc = self.libc
        fd = libc.open(TABLE_PATH, fsmod.O_RDWR)
        if fd < 0:
            return -1
        libc.fcntl(fd, F_GETLK)
        libc.fcntl(fd, F_SETLK)
        self._process_row(value)
        # Partially checked: a failed write (-1) rolls the query back, but a
        # short write (0 < written < len(value)) is treated as success —
        # the row image on disk is then torn (MyISAM has no redo log).
        written = libc.write(fd, value)
        status = libc.close(fd)
        if written < 0 or status < 0:
            return -1
        self.queries_executed += 1
        return written

    def run_transaction(self, read_only: bool, size: int = 4) -> int:
        """One SysBench-style OLTP transaction (a handful of point queries)."""
        self.thread_count += 1
        try:
            for index in range(size):
                if self.execute_read_query(index) < 0:
                    return -1
            if not read_only:
                if self.execute_write_query(0) < 0:
                    return -1
            self.transactions_committed += 1
            return 0
        finally:
            self.thread_count -= 1

    # ------------------------------------------------------------------
    # the merge-big test-suite component (Table 2)
    # ------------------------------------------------------------------
    def run_merge_big(self, iterations: int = 5) -> int:
        """The workload used to measure trigger precision in Table 2.

        Each iteration flushes the query cache, rotates the general log, and
        creates a merge table.  A failed close during the housekeeping steps
        fails the whole test-suite component before the table creation is
        reached — which is why blanket random injection reaches the buggy
        close only rarely (the paper's 16% precision row), while injection
        restricted to the storage-engine file reaches it far more often.
        """
        failures = 0
        for index in range(iterations):
            if self.flush_query_cache() < 0:
                return -1
            if self.rotate_general_log() < 0:
                return -1
            if self.engine.mi_create(f"merge_big_{index}") < 0:
                failures += 1
        return -failures if failures else 0


__all__ = [
    "ERRMSG_PATH",
    "GENERAL_LOG_PATH",
    "MySQLServer",
    "QUERY_CACHE_PATH",
    "TABLE_PATH",
]
