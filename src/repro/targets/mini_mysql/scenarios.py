"""Scenario builders for the MySQL experiments (Tables 1, 2, and 6).

* :func:`random_close_scenario` — blanket random injection into ``close``
  (Table 2, first row).
* :func:`random_close_in_module_scenario` — random injection restricted to
  ``close`` calls issued from the storage-engine module (Table 2, second
  row: "within the bug's file").
* :func:`close_after_unlock_scenario` — the custom close-after-mutex-unlock
  trigger with a configurable distance (Table 2, third row; 100% precision).
* :func:`random_campaign_scenario` — the random-injection campaign the paper
  used to find the MySQL bugs in Table 1.
* :func:`fcntl_overhead_scenario` — the cumulative 1-4 trigger scenarios of
  the Table 6 overhead measurement.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scenario.builder import ScenarioBuilder
from repro.core.scenario.model import Scenario
from repro.oslib.libc import F_GETLK


def random_close_scenario(probability: float = 0.1, seed: Optional[int] = None) -> Scenario:
    """Inject into every ``close`` call with the given probability."""
    return (
        ScenarioBuilder("mysql-random-close")
        .trigger("rand", "RandomTrigger", probability=probability, seed=seed)
        .inject("close", ["rand"], return_value=-1, errno="EIO")
        .metadata(table2_row="random")
        .build()
    )


def random_close_in_module_scenario(
    probability: float = 0.1, seed: Optional[int] = None, module: str = "myisam"
) -> Scenario:
    """Random injection limited to ``close`` calls made from the bug's file."""
    return (
        ScenarioBuilder("mysql-random-close-in-file")
        .trigger_with_params("infile", "CallStackTrigger", {"frame": {"module": module}})
        .trigger("rand", "RandomTrigger", probability=probability, seed=seed)
        .inject("close", ["infile", "rand"], return_value=-1, errno="EIO")
        .metadata(table2_row="random-within-file")
        .build()
    )


def close_after_unlock_scenario(distance: int = 2) -> Scenario:
    """The §7.1 custom trigger: fail ``close`` calls right after a mutex unlock."""
    return (
        ScenarioBuilder("mysql-close-after-unlock")
        .trigger("after_unlock", "CloseAfterMutexUnlock", distance=distance)
        .trigger("once", "SingletonTrigger")
        .inject("close", ["after_unlock", "once"], return_value=-1, errno="EIO")
        .observe("pthread_mutex_lock", ["after_unlock"])
        .observe("pthread_mutex_unlock", ["after_unlock"])
        .metadata(table2_row="close-after-mutex-unlock")
        .build()
    )


def random_campaign_scenario(
    function: str, probability: float = 0.05, seed: Optional[int] = None,
    return_value: int = -1, errno: str = "EIO",
) -> Scenario:
    """One random-injection test targeting a single libc function."""
    return (
        ScenarioBuilder(f"mysql-random-{function}")
        .trigger("rand", "RandomTrigger", probability=probability, seed=seed)
        .inject(function, ["rand"], return_value=return_value, errno=errno)
        .metadata(campaign="random", target_function=function)
        .build()
    )


def fcntl_overhead_scenario(trigger_count: int) -> Scenario:
    """Cumulative Table 6 scenario with 1-4 triggers on ``fcntl``.

    The triggers match the paper's list: argument check (cmd == F_GETLK),
    two program-state checks (``thread_count`` > 64 and
    ``shutdown_in_progress``), and a call-stack check restricting injection
    to calls made from the main server module.
    """
    if not 1 <= trigger_count <= 4:
        raise ValueError(f"trigger_count must be between 1 and 4, got {trigger_count}")
    builder = ScenarioBuilder(f"mysql-fcntl-overhead-{trigger_count}")
    trigger_ids = []

    builder.trigger("arg_getlk", "ArgumentEquals", index=1, value=F_GETLK)
    trigger_ids.append("arg_getlk")
    if trigger_count >= 2:
        builder.trigger(
            "many_threads", "ProgramStateTrigger", variable="thread_count", op=">", value=64
        )
        trigger_ids.append("many_threads")
    if trigger_count >= 3:
        builder.trigger(
            "shutting_down",
            "ProgramStateTrigger",
            variable="shutdown_in_progress",
            op="==",
            value=1,
        )
        trigger_ids.append("shutting_down")
    if trigger_count >= 4:
        builder.trigger_with_params(
            "from_server", "CallStackTrigger", {"frame": {"module": "server"}}
        )
        trigger_ids.append("from_server")

    builder.inject("fcntl", trigger_ids, return_value=-1, errno="EDEADLK")
    builder.metadata(table6_triggers=trigger_count)
    return builder.build()


__all__ = [
    "close_after_unlock_scenario",
    "fcntl_overhead_scenario",
    "random_campaign_scenario",
    "random_close_in_module_scenario",
    "random_close_scenario",
]
