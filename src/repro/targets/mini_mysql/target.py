"""Target adapter for the MySQL analog."""

from __future__ import annotations

from typing import List

from repro.core.controller.monitor import (
    Outcome,
    OutcomeKind,
    RunResult,
    run_python_workload,
)
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.oslib.facade import LibcFacade
from repro.oslib.os_model import SimOS
from repro.targets.base import KnownBug
from repro.targets.mini_mysql.server import ERRMSG_PATH, TABLE_PATH, MySQLServer

KNOWN_BUGS = (
    KnownBug(
        identifier="mysql-double-unlock-close",
        system="mini_mysql",
        library_function="close",
        kind=OutcomeKind.ABORT,
        description=(
            "Abort after a double mutex unlock: the mi_create error handling "
            "triggered by a failed close releases a mutex the normal path "
            "already released."
        ),
    ),
    KnownBug(
        identifier="mysql-errmsg-read-crash",
        system="mini_mysql",
        library_function="read",
        kind=OutcomeKind.CRASH,
        description=(
            "Crash due to a failed read (EIO) while processing errmsg.sys: the "
            "error is logged but an uninitialized message index is then used."
        ),
    ),
)


class MiniMySQLTarget:
    """MySQL 5.1.44 analog exposing the paper's MySQL workloads."""

    name = "mini_mysql"
    known_bugs = KNOWN_BUGS
    #: Workloads are deterministic modulo the injected fault, so the
    #: prefix-sharing campaign scheduler may group this target's scenarios.
    prefix_shareable = True

    def binary(self):
        """Python-level target: there is no compiled binary to analyze."""
        return None

    # ------------------------------------------------------------------
    def make_os(self) -> SimOS:
        os = SimOS(self.name)
        fs = os.fs
        fs.make_dirs("/var/lib/mysql/share")
        fs.make_dirs("/var/lib/mysql/data")
        fs.make_dirs("/var/lib/mysql/cache")
        fs.make_dirs("/var/lib/mysql/log")
        fs.add_file(ERRMSG_PATH, b"ER_OK\nER_DUP_KEY\nER_DISK_FULL\n" * 4)
        fs.add_file(TABLE_PATH, b"row-" * 64)
        return os

    def make_server(self, request: WorkloadRequest) -> MySQLServer:
        os = self.make_os()
        gate = make_gate(request.scenario, observe_only=request.observe_only,
                         run_seed=request.options.get("run_seed"))
        libc = LibcFacade(os, gate=gate, node="mysqld")
        server = MySQLServer(os, libc)
        gate.add_state_provider(server.read_state)
        return server

    # ------------------------------------------------------------------
    def workloads(self) -> List[str]:
        return ["startup", "merge-big", "sysbench-readonly", "sysbench-readwrite"]

    @staticmethod
    def _run_workload(server: MySQLServer, workload: str, options) -> int:
        if workload == "startup":
            return server.startup()
        server.startup()
        if workload == "merge-big":
            server.run_merge_big(iterations=options.get("iterations", 5))
        elif workload == "sysbench-readonly":
            for _ in range(options.get("transactions", 50)):
                server.run_transaction(read_only=True)
        elif workload == "sysbench-readwrite":
            for _ in range(options.get("transactions", 50)):
                server.run_transaction(read_only=False)
        else:
            raise KeyError(f"mini_mysql has no workload {workload!r}")
        server.shutdown()
        return 0

    def run(self, request: WorkloadRequest) -> RunResult:
        server = self.make_server(request)
        gate = server.libc.gate
        options = request.options

        outcome = run_python_workload(
            lambda: self._run_workload(server, request.workload, options)
        )

        metadata = getattr(request.scenario, "metadata", None) or {}
        if outcome.kind is OutcomeKind.WORLD_CRASH and "recovery_workload" in metadata:
            # Crash-consistency kill: the simulated disk survives exactly as
            # the "power loss" left it (torn MYI/MYD prefixes included).  A
            # rebooted server — a fresh process over the same filesystem and
            # the same gate, whose crash trigger has already fired its
            # singleton — then runs the recovery workload fault-free.
            crash_detail = outcome.detail
            recovery = metadata.get("recovery_workload") or request.workload
            rebooted = MySQLServer(server.os, LibcFacade(server.os, gate=gate, node="mysqld"))
            recovered = run_python_workload(
                lambda: self._run_workload(rebooted, recovery, options)
            )
            if recovered.is_high_impact or recovered.kind is OutcomeKind.HANG:
                outcome = Outcome(
                    kind=recovered.kind,
                    detail=f"during recovery from [{crash_detail}]: {recovered.detail}",
                    exit_code=recovered.exit_code,
                    location=recovered.location,
                )
            else:
                outcome = Outcome(
                    kind=OutcomeKind.NORMAL,
                    detail=f"recovered after [{crash_detail}]",
                )
            server = rebooted

        stats = {
            "library_calls": gate.total_calls,
            "calls": dict(gate.call_counts),
            "queries": server.queries_executed,
            "transactions": server.transactions_committed,
            "tables_created": server.engine.tables_created,
            "server": server,
        }
        return RunResult(outcome=outcome, log=gate.log, stats=stats)

    # ------------------------------------------------------------------
    @staticmethod
    def outcome_is_double_unlock(outcome: Outcome) -> bool:
        """Oracle used by the Table 2 precision benchmark."""
        return outcome.kind is OutcomeKind.ABORT and "mutex" in outcome.detail.lower()


__all__ = ["KNOWN_BUGS", "MiniMySQLTarget"]
