"""Apache overhead scenarios (Table 5).

``overhead_scenario(n)`` builds the cumulative 1-5 trigger scenario from
§7.4 on ``apr_file_read``:

1. descriptor-type check (the paper's apr_stat-based custom trigger —
   expressed here with the stock argument/descriptor machinery);
2. call-stack check that the caller is Apache's core (not a loaded module);
3. call-stack check that ``ap_process_request_internal`` is on the stack;
4. program-state check that the request uses the HTTP POST method;
5. a WithMutex composition targeting reads made while a mutex is held.

Table 5 runs these with the gate in observe-only mode: triggers are
evaluated on every intercepted call but no fault is injected, isolating the
trigger mechanism's overhead.
"""

from __future__ import annotations

from repro.core.scenario.builder import ScenarioBuilder
from repro.core.scenario.model import Scenario
from repro.targets.mini_apache.httpd_core import M_POST


def overhead_scenario(trigger_count: int) -> Scenario:
    """Build the cumulative Table 5 scenario with 1-5 triggers."""
    if not 1 <= trigger_count <= 5:
        raise ValueError(f"trigger_count must be between 1 and 5, got {trigger_count}")
    builder = ScenarioBuilder(f"apache-apr-file-read-overhead-{trigger_count}")
    trigger_ids = []

    # Trigger 1: only descriptor reads of a certain kind (argument-based).
    builder.trigger("fd_kind", "ArgumentEquals", index=1, value=0)
    trigger_ids.append("fd_kind")
    # Trigger 2: the caller must be Apache's core module.
    if trigger_count >= 2:
        builder.trigger_with_params(
            "apache_core", "CallStackTrigger", {"frame": {"module": "httpd_core"}}
        )
        trigger_ids.append("apache_core")
    # Trigger 3: the call happens while processing a request.
    if trigger_count >= 3:
        builder.trigger_with_params(
            "in_request",
            "CallStackTrigger",
            {"frame": {"function": "ap_process_request_internal"}},
        )
        trigger_ids.append("in_request")
    # Trigger 4: only for POST requests (program state).
    if trigger_count >= 4:
        builder.trigger(
            "post_only",
            "ProgramStateTrigger",
            variable="request_method_number",
            op="==",
            value=M_POST,
        )
        trigger_ids.append("post_only")
    # Trigger 5: only while the caller holds a mutex.
    if trigger_count >= 5:
        builder.trigger("with_mutex", "WithMutex")
        trigger_ids.append("with_mutex")

    builder.inject("apr_file_read", trigger_ids, return_value=70008, errno=None)
    if trigger_count >= 5:
        builder.observe("pthread_mutex_lock", ["with_mutex"])
        builder.observe("pthread_mutex_unlock", ["with_mutex"])
    builder.metadata(table5_triggers=trigger_count)
    return builder.build()


__all__ = ["overhead_scenario"]
