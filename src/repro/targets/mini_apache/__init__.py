"""The Apache analog (Python-level server target, used by the overhead study)."""

from repro.targets.mini_apache.target import MiniApacheTarget

__all__ = ["MiniApacheTarget"]
