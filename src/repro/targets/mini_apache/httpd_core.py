"""The Apache analog: request pipeline of a small static/PHP web server.

Every file access goes through the APR-style calls (``apr_stat``,
``apr_file_read``) of the libc facade, mirroring how Apache reads content
through the Apache Portable Runtime — which is the function the Table 5
triggers intercept.  The function names matter: the paper's third trigger
requires ``ap_process_request_internal`` to appear on the call stack, and
the Python-level call-stack provider reports Python function names, so the
pipeline uses the same names Apache does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.oslib import fs as fsmod
from repro.oslib.facade import LibcFacade
from repro.oslib.os_model import SimOS

#: Apache method numbers (subset of httpd.h).
M_GET = 0
M_PUT = 1
M_POST = 2

#: Mutex guarding the access log (gives the WithMutex trigger state to track).
LOG_MUTEX = 0x71


@dataclass
class HttpRequest:
    """The request_rec analog."""

    uri: str
    method: str = "GET"
    body: bytes = b""

    @property
    def method_number(self) -> int:
        return {"GET": M_GET, "PUT": M_PUT, "POST": M_POST}.get(self.method.upper(), M_GET)


@dataclass
class HttpResponse:
    status: int
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)


class ApacheServer:
    """Apache 2.2 analog serving static HTML and simulated PHP."""

    def __init__(self, os: SimOS, libc: Optional[LibcFacade] = None,
                 document_root: str = "/var/www/html") -> None:
        self.os = os
        self.libc = libc if libc is not None else LibcFacade(os, node="httpd")
        self.document_root = document_root
        self.requests_handled = 0
        self.errors = 0
        self.current_method_number = M_GET
        #: Iterations of simulated interpreter work per PHP request; this is
        #: what makes the PHP workload measurably slower than static HTML.
        self.php_work_factor = 24

    # ------------------------------------------------------------------
    # program state exposed to triggers
    # ------------------------------------------------------------------
    def read_state(self, name: str) -> Optional[int]:
        values = {
            "request_method_number": self.current_method_number,
            "requests_handled": self.requests_handled,
            "errors": self.errors,
        }
        return values.get(name)

    # ------------------------------------------------------------------
    # request pipeline
    # ------------------------------------------------------------------
    def handle_connection(self, request: HttpRequest) -> HttpResponse:
        """Top of the pipeline (ap_read_request + ap_process_request)."""
        response = self.ap_process_request_internal(request)
        self.requests_handled += 1
        if response.status >= 500:
            self.errors += 1
        return response

    def ap_process_request_internal(self, request: HttpRequest) -> HttpResponse:
        """Core request processing (the function named by trigger 3)."""
        self.current_method_number = request.method_number
        path = self.map_to_storage(request.uri)
        if path is None:
            return HttpResponse(status=404, body=b"not found")
        if request.uri.endswith(".php"):
            response = self.php_handler(request, path)
        else:
            response = self.default_handler(request, path)
        self.log_request(request, response)
        return response

    def map_to_storage(self, uri: str) -> Optional[str]:
        path = f"{self.document_root}{uri}"
        status, _stat = self.libc.apr_stat(path)
        if status != 0:
            return None
        if not self.os.fs.exists(path):
            return None
        return path

    # ------------------------------------------------------------------
    # content handlers
    # ------------------------------------------------------------------
    def _read_whole_file(self, path: str, chunk: int = 4096) -> Optional[bytes]:
        fd = self.libc.open(path, fsmod.O_RDONLY)
        if fd < 0:
            return None
        content = bytearray()
        while True:
            status, data = self.libc.apr_file_read(fd, chunk)
            if status != 0 or not data:
                break
            content.extend(data)
        self.libc.close(fd)
        return bytes(content)

    def default_handler(self, request: HttpRequest, path: str) -> HttpResponse:
        """Serve a static file."""
        content = self._read_whole_file(path)
        if content is None:
            return HttpResponse(status=500, body=b"error reading content")
        # Response assembly (ETag computation) models the per-request work a
        # real server does besides the file read itself.
        etag = 0
        for byte in content:
            etag = (etag * 33 + byte) & 0xFFFFFFFF
        headers = {"Content-Type": "text/html", "ETag": f"{etag:08x}",
                   "Content-Length": str(len(content))}
        return HttpResponse(status=200, body=content, headers=headers)

    def php_handler(self, request: HttpRequest, path: str) -> HttpResponse:
        """Simulate mod_php: read the script, then do interpreter work."""
        script = self._read_whole_file(path)
        if script is None:
            return HttpResponse(status=500, body=b"error reading script")
        # Includes are read while holding the logging mutex, which gives the
        # WithMutex trigger (trigger 5) a held-mutex apr_file_read to match.
        self.libc.mutex_lock(LOG_MUTEX)
        include = self._read_whole_file(f"{self.document_root}/include.php", chunk=1024)
        self.libc.mutex_unlock(LOG_MUTEX)
        if include is None:
            include = b""

        checksum = 0
        body_source = script + include + request.body
        for _ in range(self.php_work_factor):
            for byte in body_source:
                checksum = (checksum * 31 + byte) & 0xFFFFFFFF
        body = f"<html>dynamic page, checksum {checksum:08x}</html>".encode()
        return HttpResponse(status=200, body=body, headers={"Content-Type": "text/html"})

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def log_request(self, request: HttpRequest, response: HttpResponse) -> None:
        self.libc.mutex_lock(LOG_MUTEX)
        fd = self.libc.open("/var/log/apache2/access.log",
                            fsmod.O_WRONLY | fsmod.O_CREAT | fsmod.O_APPEND)
        if fd >= 0:
            line = f"{request.method} {request.uri} {response.status}\n".encode()
            # Short-write blind by design: a truncated access-log line is
            # lost log data, not served-content corruption (httpd likewise
            # does not retry short log writes).
            self.libc.write(fd, line)
            self.libc.close(fd)
        self.libc.mutex_unlock(LOG_MUTEX)


__all__ = ["ApacheServer", "HttpRequest", "HttpResponse", "LOG_MUTEX", "M_GET", "M_POST", "M_PUT"]
