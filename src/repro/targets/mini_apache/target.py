"""Target adapter for the Apache analog."""

from __future__ import annotations

import copy
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.controller.monitor import RunResult, run_python_workload
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.oslib.facade import LibcFacade
from repro.oslib.os_model import SimOS
from repro.targets.mini_apache.httpd_core import ApacheServer, HttpRequest, HttpResponse

STATIC_PAGE = "/index.html"
PHP_PAGE = "/app.php"


class MiniApacheTarget:
    """Apache 2.2.14 analog used by the Table 5 overhead experiment."""

    name = "mini_apache"
    known_bugs = ()
    #: Request handling is deterministic modulo the injected fault, so the
    #: prefix-sharing campaign scheduler may group this target's scenarios.
    prefix_shareable = True

    def binary(self):
        return None

    # ------------------------------------------------------------------
    def make_os(self) -> SimOS:
        os = SimOS(self.name)
        fs = os.fs
        fs.make_dirs("/var/www/html")
        fs.make_dirs("/var/log/apache2")
        fs.add_file(
            "/var/www/html/index.html",
            b"<html><body>" + b"static content " * 250 + b"</body></html>",
        )
        fs.add_file(
            "/var/www/html/app.php",
            b"<?php echo render_dashboard(load_rows()); ?>" * 16,
        )
        fs.add_file("/var/www/html/include.php", b"<?php function helper() {} ?>")
        return os

    def make_server(self, request: WorkloadRequest, populate: bool = True) -> ApacheServer:
        """Build a server world for *request*.

        ``populate=False`` skips the document-root fixture: the prefix-
        sharing fork path restores a captured filesystem wholesale right
        after construction, so building fixture files only to overwrite
        them is pure waste on the fork hot path.
        """
        os = self.make_os() if populate else SimOS(self.name)
        gate = make_gate(request.scenario, observe_only=request.observe_only,
                         run_seed=request.options.get("run_seed"))
        libc = LibcFacade(os, gate=gate, node="httpd")
        server = ApacheServer(os, libc)
        gate.add_state_provider(server.read_state)
        return server

    # ------------------------------------------------------------------
    def workloads(self) -> List[str]:
        return ["ab-static", "ab-php"]

    @staticmethod
    def _workload_params(workload: str, options: Dict[str, Any]) -> Tuple[str, int, int]:
        requests = int(options.get("requests", 100))
        post_every = int(options.get("post_every", 10))
        uri = STATIC_PAGE if workload == "ab-static" else PHP_PAGE
        return uri, requests, post_every

    @staticmethod
    def _request_loop(
        server: ApacheServer,
        uri: str,
        requests: int,
        post_every: int,
        start: int = 0,
        boundary_hook=None,
    ) -> int:
        """Drive the ab-style request loop (shared by all execution paths).

        One code object serves plain runs, probes, and resumed forks, so
        recorded backtraces are identical no matter which path drove the
        run.  ``boundary_hook(index)`` fires before each request — the
        prefix-sharing fork path uses it to snapshot the server world at
        the last request boundary before a trigger fires.
        """
        for index in range(start, requests):
            if boundary_hook is not None:
                boundary_hook(index)
            method = "POST" if post_every and index % post_every == 0 else "GET"
            response = server.handle_connection(HttpRequest(uri=uri, method=method))
            if response.status >= 500:
                return 1
        return 0

    @staticmethod
    def _result(server: ApacheServer, outcome) -> RunResult:
        gate = server.libc.gate
        stats = {
            "library_calls": gate.total_calls,
            "calls": dict(gate.call_counts),
            "requests_handled": server.requests_handled,
            "intercepted_calls": gate.intercepted_calls,
            "server": server,
        }
        return RunResult(outcome=outcome, log=gate.log, stats=stats)

    def run(self, request: WorkloadRequest) -> RunResult:
        server = self.make_server(request)
        uri, requests, post_every = self._workload_params(request.workload, request.options)
        outcome = run_python_workload(
            partial(self._request_loop, server, uri, requests, post_every)
        )
        return self._result(server, outcome)

    # ------------------------------------------------------------------
    # prefix-sharing fork path (repro.core.controller.prefix)
    # ------------------------------------------------------------------
    @staticmethod
    def _capture_world(server: ApacheServer) -> Dict[str, Any]:
        """Value-level snapshot of a server world (OS, gate, facade, server).

        One capture serves every fork: the OS subsystems capture by value
        and restore by rebuilding (PR 4 snapshot plumbing), and the gate
        graft deep-copies per member, so restores never alias each other.
        """
        from repro.vm.snapshot import capture_gate_state

        facade = server.libc
        return {
            "os": server.os.capture_state(),
            "gate": capture_gate_state(facade.gate),
            "facade": (
                facade._errno,
                facade.errno_reads,
                facade._next_handle,
                dict(facade._malloc_handles),
                dict(facade._file_handles),
                dict(facade._dir_handles),
            ),
            "server": (
                server.requests_handled,
                server.errors,
                server.current_method_number,
            ),
        }

    @staticmethod
    def _restore_world(server: ApacheServer, world: Dict[str, Any]) -> None:
        from repro.vm.snapshot import graft_gate_state

        server.os.restore_state(world["os"])
        if world["gate"] is not None:
            graft_gate_state(world["gate"], server.libc.gate)
        errno, errno_reads, next_handle, mallocs, files, dirs = world["facade"]
        facade = server.libc
        facade._errno = errno
        facade.errno_reads = errno_reads
        facade._next_handle = next_handle
        facade._malloc_handles = dict(mallocs)
        facade._file_handles = dict(files)
        facade._dir_handles = dict(dirs)
        (
            server.requests_handled,
            server.errors,
            server.current_method_number,
        ) = world["server"]

    def run_prefix_group(
        self,
        workload: str,
        members: Sequence[Tuple[int, Any, Optional[int]]],
        collect_coverage: bool,
        options: Dict[str, Any],
        observe_only: bool = False,
    ) -> Dict[int, RunResult]:
        """Run one scenario group forkserver-style.

        The group's probe (lowest divergence rank) drives the request loop
        once, tracking only the index of the last request boundary before
        its trigger fired (an integer assignment per request).  If the
        trigger never fired, no sibling can inject either — ranks fire
        monotonically later — and the probe's result is replicated.
        Otherwise the deterministic prefix — requests before the trigger —
        is replayed once into a pristine world and captured **by value**
        (OS/gate/facade/server state); each sibling gets a fresh server
        built from its own scenario, the captured world restored onto it,
        and processes only the remaining requests.  Forking is therefore
        O(touched state) — no ``copy.deepcopy`` over the whole object graph
        (``options={"fork": "deepcopy"}`` keeps the legacy fork as a
        benchmark baseline).  Siblings whose faults differ from an already-
        run member only in errno, when that member's suffix never read
        errno (the facade's errno-read counter), are suffix replicas: the
        result is copied with the logged errno patched instead of re-run.
        """
        from repro.core.controller.prefix import (
            patch_replica_errno,
            rearm_member_triggers,
            replicate_result,
            scenario_group_rank,
            seeded_options,
        )

        results: Dict[int, RunResult] = {}
        probe_index, probe_scenario, probe_seed = members[0]
        probe_request = WorkloadRequest(
            workload=workload,
            scenario=probe_scenario,
            observe_only=observe_only,
            collect_coverage=collect_coverage,
            options=seeded_options(options, probe_seed),
        )
        server = self.make_server(probe_request)
        gate = server.libc.gate
        uri, requests, post_every = self._workload_params(workload, options)

        boundary: Dict[str, Any] = {"request": 0, "locked": False, "errno_reads": 0}

        def track_boundary(index: int) -> None:
            if boundary["locked"]:
                return
            if gate.injected_calls or gate.observed_injections:
                boundary["locked"] = True
                return
            boundary["request"] = index
            boundary["errno_reads"] = server.libc.errno_reads

        outcome = run_python_workload(
            partial(self._request_loop, server, uri, requests, post_every, 0,
                    track_boundary)
        )
        results[probe_index] = self._result(server, outcome)

        if not gate.injected_calls:
            # No fault applied (trigger never agreed, or observe-only gate):
            # the members' faults are dead weight and all runs are identical.
            for index, _scenario, _seed in members[1:]:
                results[index] = replicate_result(results[probe_index])
            return results

        # Re-materialize the shared prefix once: a fresh probe world driven
        # up to (excluding) the request whose processing injected.  Request
        # handling is deterministic, so this is exactly the state the probe
        # held at that boundary.
        prefix_world = self.make_server(probe_request)
        run_python_workload(
            partial(self._request_loop, prefix_world, uri, boundary["request"],
                    post_every)
        )
        legacy_fork = options.get("fork") == "deepcopy"
        world = None if legacy_fork else self._capture_world(prefix_world)
        if world is not None and world["gate"] is None:
            # A non-standard gate cannot be captured/grafted; the deepcopy
            # fork carries any gate, so fall back rather than dropping the
            # prefix interception state.
            legacy_fork = True
            world = None

        # Completed runs usable as errno-blind suffix-replication sources:
        # (rank, scenario, result, suffix never read errno).  Suffix reads
        # are measured from the shared boundary, which upper-bounds the
        # post-injection reads — a zero stays a sound zero.
        sources = [(
            scenario_group_rank(probe_scenario),
            probe_scenario,
            results[probe_index],
            server.libc.errno_reads == boundary["errno_reads"],
        )]

        for index, scenario, seed in members[1:]:
            rank = scenario_group_rank(scenario)
            replica = None
            for source_rank, source_scenario, source_result, blind in sources:
                if blind and source_rank == rank:
                    replica = patch_replica_errno(
                        source_result, source_scenario, scenario
                    )
                    if replica is not None:
                        break
            if replica is not None:
                results[index] = replica
                continue

            member_request = WorkloadRequest(
                workload=workload,
                scenario=scenario,
                observe_only=observe_only,
                collect_coverage=collect_coverage,
                options=seeded_options(options, seed),
            )
            if legacy_fork:
                fork = copy.deepcopy(prefix_world)
                runtime = fork.libc.gate.runtime
                # The forked runtime is the probe's: swap in this member's
                # faults and trigger parameters (group membership guarantees
                # the structure matches position for position).
                for plan, member_plan in zip(runtime.scenario.plans, scenario.plans):
                    plan.fault = member_plan.fault
                for trigger_id, declaration in scenario.triggers.items():
                    fork_declaration = runtime.scenario.triggers.get(trigger_id)
                    if fork_declaration is not None:
                        fork_declaration.params = dict(declaration.params)
                rearm_member_triggers(fork.libc.gate, scenario)
            else:
                fork = self.make_server(member_request, populate=False)
                self._restore_world(fork, world)
                rearm_member_triggers(fork.libc.gate, scenario)
            member_outcome = run_python_workload(
                partial(
                    self._request_loop, fork, uri, requests, post_every,
                    boundary["request"],
                )
            )
            results[index] = self._result(fork, member_outcome)
            sources.append((
                rank,
                scenario,
                results[index],
                fork.libc.errno_reads == boundary["errno_reads"],
            ))
        return results


__all__ = ["MiniApacheTarget", "PHP_PAGE", "STATIC_PAGE"]
