"""Target adapter for the Apache analog."""

from __future__ import annotations

import copy
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.controller.monitor import RunResult, run_python_workload
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.oslib.facade import LibcFacade
from repro.oslib.os_model import SimOS
from repro.targets.mini_apache.httpd_core import ApacheServer, HttpRequest, HttpResponse

STATIC_PAGE = "/index.html"
PHP_PAGE = "/app.php"


class MiniApacheTarget:
    """Apache 2.2.14 analog used by the Table 5 overhead experiment."""

    name = "mini_apache"
    known_bugs = ()
    #: Request handling is deterministic modulo the injected fault, so the
    #: prefix-sharing campaign scheduler may group this target's scenarios.
    prefix_shareable = True

    def binary(self):
        return None

    # ------------------------------------------------------------------
    def make_os(self) -> SimOS:
        os = SimOS(self.name)
        fs = os.fs
        fs.make_dirs("/var/www/html")
        fs.make_dirs("/var/log/apache2")
        fs.add_file(
            "/var/www/html/index.html",
            b"<html><body>" + b"static content " * 250 + b"</body></html>",
        )
        fs.add_file(
            "/var/www/html/app.php",
            b"<?php echo render_dashboard(load_rows()); ?>" * 16,
        )
        fs.add_file("/var/www/html/include.php", b"<?php function helper() {} ?>")
        return os

    def make_server(self, request: WorkloadRequest) -> ApacheServer:
        os = self.make_os()
        gate = make_gate(request.scenario, observe_only=request.observe_only,
                         run_seed=request.options.get("run_seed"))
        libc = LibcFacade(os, gate=gate, node="httpd")
        server = ApacheServer(os, libc)
        gate.add_state_provider(server.read_state)
        return server

    # ------------------------------------------------------------------
    def workloads(self) -> List[str]:
        return ["ab-static", "ab-php"]

    @staticmethod
    def _workload_params(workload: str, options: Dict[str, Any]) -> Tuple[str, int, int]:
        requests = int(options.get("requests", 100))
        post_every = int(options.get("post_every", 10))
        uri = STATIC_PAGE if workload == "ab-static" else PHP_PAGE
        return uri, requests, post_every

    @staticmethod
    def _request_loop(
        server: ApacheServer,
        uri: str,
        requests: int,
        post_every: int,
        start: int = 0,
        boundary_hook=None,
    ) -> int:
        """Drive the ab-style request loop (shared by all execution paths).

        One code object serves plain runs, probes, and resumed forks, so
        recorded backtraces are identical no matter which path drove the
        run.  ``boundary_hook(index)`` fires before each request — the
        prefix-sharing fork path uses it to snapshot the server world at
        the last request boundary before a trigger fires.
        """
        for index in range(start, requests):
            if boundary_hook is not None:
                boundary_hook(index)
            method = "POST" if post_every and index % post_every == 0 else "GET"
            response = server.handle_connection(HttpRequest(uri=uri, method=method))
            if response.status >= 500:
                return 1
        return 0

    @staticmethod
    def _result(server: ApacheServer, outcome) -> RunResult:
        gate = server.libc.gate
        stats = {
            "library_calls": gate.total_calls,
            "requests_handled": server.requests_handled,
            "intercepted_calls": gate.intercepted_calls,
            "server": server,
        }
        return RunResult(outcome=outcome, log=gate.log, stats=stats)

    def run(self, request: WorkloadRequest) -> RunResult:
        server = self.make_server(request)
        uri, requests, post_every = self._workload_params(request.workload, request.options)
        outcome = run_python_workload(
            partial(self._request_loop, server, uri, requests, post_every)
        )
        return self._result(server, outcome)

    # ------------------------------------------------------------------
    # prefix-sharing fork path (repro.core.controller.prefix)
    # ------------------------------------------------------------------
    def run_prefix_group(
        self,
        workload: str,
        members: Sequence[Tuple[int, Any, Optional[int]]],
        collect_coverage: bool,
        options: Dict[str, Any],
        observe_only: bool = False,
    ) -> Dict[int, RunResult]:
        """Run one scenario group forkserver-style.

        The group's probe drives the request loop once, tracking only the
        index of the last request boundary before its trigger fired (an
        integer assignment per request).  If the trigger never fired, no
        sibling can inject either and the probe's result is replicated.
        Otherwise the deterministic prefix — requests before the trigger —
        is replayed once into a pristine world, and each sibling scenario
        deep-copies that world, swaps in its own fault (the only thing
        distinguishing it from the probe), and processes only the
        remaining requests.
        """
        from repro.core.controller.prefix import replicate_result, seeded_options

        results: Dict[int, RunResult] = {}
        probe_index, probe_scenario, probe_seed = members[0]
        probe_request = WorkloadRequest(
            workload=workload,
            scenario=probe_scenario,
            observe_only=observe_only,
            collect_coverage=collect_coverage,
            options=seeded_options(options, probe_seed),
        )
        server = self.make_server(probe_request)
        gate = server.libc.gate
        uri, requests, post_every = self._workload_params(workload, options)

        boundary: Dict[str, Any] = {"request": 0, "locked": False}

        def track_boundary(index: int) -> None:
            if boundary["locked"]:
                return
            if gate.injected_calls or gate.observed_injections:
                boundary["locked"] = True
                return
            boundary["request"] = index

        outcome = run_python_workload(
            partial(self._request_loop, server, uri, requests, post_every, 0,
                    track_boundary)
        )
        results[probe_index] = self._result(server, outcome)

        if not gate.injected_calls:
            # No fault applied (trigger never agreed, or observe-only gate):
            # the members' faults are dead weight and all runs are identical.
            for index, _scenario, _seed in members[1:]:
                results[index] = replicate_result(results[probe_index])
            return results

        # Re-materialize the shared prefix once: a fresh probe world driven
        # up to (excluding) the request whose processing injected.  Request
        # handling is deterministic, so this is exactly the state the probe
        # held at that boundary.
        prefix_world = self.make_server(probe_request)
        run_python_workload(
            partial(self._request_loop, prefix_world, uri, boundary["request"],
                    post_every)
        )

        for index, scenario, seed in members[1:]:
            fork = copy.deepcopy(prefix_world)
            runtime = fork.libc.gate.runtime
            # The forked runtime is the probe's minus its fault: swap in
            # this member's faults (group membership guarantees the plan
            # structure matches position for position).
            for plan, member_plan in zip(runtime.scenario.plans, scenario.plans):
                plan.fault = member_plan.fault
            member_outcome = run_python_workload(
                partial(
                    self._request_loop, fork, uri, requests, post_every,
                    boundary["request"],
                )
            )
            results[index] = self._result(fork, member_outcome)
        return results


__all__ = ["MiniApacheTarget", "PHP_PAGE", "STATIC_PAGE"]
