"""Target adapter for the Apache analog."""

from __future__ import annotations

from typing import List

from repro.core.controller.monitor import RunResult, run_python_workload
from repro.core.controller.target import WorkloadRequest, make_gate
from repro.oslib.facade import LibcFacade
from repro.oslib.os_model import SimOS
from repro.targets.mini_apache.httpd_core import ApacheServer, HttpRequest

STATIC_PAGE = "/index.html"
PHP_PAGE = "/app.php"


class MiniApacheTarget:
    """Apache 2.2.14 analog used by the Table 5 overhead experiment."""

    name = "mini_apache"
    known_bugs = ()

    def binary(self):
        return None

    # ------------------------------------------------------------------
    def make_os(self) -> SimOS:
        os = SimOS(self.name)
        fs = os.fs
        fs.make_dirs("/var/www/html")
        fs.make_dirs("/var/log/apache2")
        fs.add_file(
            "/var/www/html/index.html",
            b"<html><body>" + b"static content " * 250 + b"</body></html>",
        )
        fs.add_file(
            "/var/www/html/app.php",
            b"<?php echo render_dashboard(load_rows()); ?>" * 16,
        )
        fs.add_file("/var/www/html/include.php", b"<?php function helper() {} ?>")
        return os

    def make_server(self, request: WorkloadRequest) -> ApacheServer:
        os = self.make_os()
        gate = make_gate(request.scenario, observe_only=request.observe_only,
                         run_seed=request.options.get("run_seed"))
        libc = LibcFacade(os, gate=gate, node="httpd")
        server = ApacheServer(os, libc)
        gate.add_state_provider(server.read_state)
        return server

    # ------------------------------------------------------------------
    def workloads(self) -> List[str]:
        return ["ab-static", "ab-php"]

    def run(self, request: WorkloadRequest) -> RunResult:
        server = self.make_server(request)
        gate = server.libc.gate
        options = request.options
        requests = int(options.get("requests", 100))
        post_every = int(options.get("post_every", 10))
        uri = STATIC_PAGE if request.workload == "ab-static" else PHP_PAGE

        def workload() -> int:
            for index in range(requests):
                method = "POST" if post_every and index % post_every == 0 else "GET"
                response = server.handle_connection(HttpRequest(uri=uri, method=method))
                if response.status >= 500:
                    return 1
            return 0

        outcome = run_python_workload(workload)
        stats = {
            "library_calls": gate.total_calls,
            "requests_handled": server.requests_handled,
            "intercepted_calls": gate.intercepted_calls,
            "server": server,
        }
        return RunResult(outcome=outcome, log=gate.log, stats=stats)


__all__ = ["MiniApacheTarget", "PHP_PAGE", "STATIC_PAGE"]
