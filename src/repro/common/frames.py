"""Stack frame representation shared by the VM and the Python-level targets.

Call-stack triggers (§3.2) match frames by module name, offset within the
binary, file/line pairs, or function name — so the frame record carries all
four, and producers fill in whatever they know (the VM knows offsets and the
line table; Python-level servers know module/function/file/line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass(frozen=True)
class StackFrame:
    """One frame of the caller's stack at the moment of a library call."""

    module: str
    function: str = ""
    offset: Optional[int] = None
    file: str = ""
    line: Optional[int] = None

    def describe(self) -> str:
        parts = [self.module]
        if self.function:
            parts.append(self.function)
        if self.offset is not None:
            parts.append(f"+{self.offset:#x}")
        if self.file:
            location = self.file if self.line is None else f"{self.file}:{self.line}"
            parts.append(f"({location})")
        return " ".join(parts)


def format_stack(frames: Iterable[StackFrame]) -> str:
    lines: List[str] = []
    for depth, frame in enumerate(frames):
        lines.append(f"#{depth} {frame.describe()}")
    return "\n".join(lines)


__all__ = ["StackFrame", "format_stack"]
