"""Small shared datatypes used by both the substrates and the LFI core."""

from repro.common.frames import StackFrame, format_stack

__all__ = ["StackFrame", "format_stack"]
