"""``repro-campaignd worker``: the fabric's data plane node.

A :class:`CampaignWorker` pulls shard leases from the coordinator, turns
each lease's schedule indices back into scenarios (the spec is enough —
see :mod:`repro.distributed.spec`), executes them through the local
engine/pool stack (boot-template cache, prefix sharing, whatever
``parallelism`` selects), and streams one result record per completed run
back over the same connection.

Failure behaviour, which is most of what a worker *is*:

* **Link loss** — every RPC goes through one retry-with-backoff path; a
  dropped connection is redialed (:func:`repro.distributed.protocol.connect`
  does the backoff) and the current shard is abandoned — its lease will
  expire on the coordinator and the unfinished points re-queue.  Records
  already streamed stay completed (the store is idempotent per key), so
  nothing is lost and nothing runs twice.
* **Stale leases** — any RPC answered ``stale_lease`` (the coordinator
  re-assigned the shard after a silence, or the campaign was cancelled)
  makes the worker drop the shard immediately and fetch fresh work.
* **Heartbeats** — while a shard is executing, a background thread
  heartbeats the lease at a third of the advertised lease timeout, so a
  worker grinding through one slow scenario is not mistaken for dead.
  The send path is shared with the executor loop; each RPC is one
  lock-protected send/receive pair, so replies always match requests.
"""

from __future__ import annotations

import logging
import threading
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.core.controller.costmodel import default_cost_model
from repro.core.controller.executor import ParallelismSpec
from repro.core.controller.memo import suffix_memo_stats
from repro.core.profiler.cache import artifact_cache_stats
from repro.distributed.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    MessageStream,
    ProtocolError,
    connect,
)
from repro.distributed.spec import CampaignSpec, build_engine, spec_fingerprint

logger = logging.getLogger("repro.campaignd.worker")


def _cache_stats_snapshot() -> Dict[str, float]:
    """Current boot-template, suffix-memo, and cost-model counters of this
    process.

    Shard deltas of these are reported on ``shard_done`` so the
    coordinator can explain fabric throughput (memo hit rates, template
    reuse) and aggregate measured group costs fleet-wide (the ``cost_*``
    running sums merge exactly) without any extra round trips.
    """
    cache = artifact_cache_stats()
    memo = suffix_memo_stats()
    stats: Dict[str, float] = {
        "boot_hits": cache.boot_hits,
        "boot_misses": cache.boot_misses,
        "boot_shared_hits": cache.boot_shared_hits,
        "memo_hits": memo.hits,
        "memo_misses": memo.misses,
        "memo_stores": memo.stores,
        "memo_evictions": memo.evictions,
    }
    stats.update(default_cost_model().snapshot_counters())
    return stats


class _LeaseLost(Exception):
    """Internal: the coordinator no longer honours our lease."""


class CampaignWorker:
    """One worker node: fetch shard, execute, stream results, repeat."""

    def __init__(
        self,
        address: Tuple[str, int],
        worker_id: Optional[str] = None,
        parallelism: ParallelismSpec = None,
        poll_interval: float = 0.2,
        connect_retries: int = 8,
        connect_backoff: float = 0.05,
        max_message_bytes: int = MAX_MESSAGE_BYTES,
        result_batch_size: int = 8,
    ) -> None:
        self.address = address
        self.worker_id = worker_id or f"worker-{uuid.uuid4().hex[:8]}"
        self.parallelism = parallelism
        self.poll_interval = poll_interval
        self.connect_retries = connect_retries
        self.connect_backoff = connect_backoff
        self.max_message_bytes = max_message_bytes
        #: Records per ``result_batch`` message (1 = per-record streaming).
        #: Only engaged against coordinators speaking protocol ≥ 2.
        self.result_batch_size = max(1, int(result_batch_size))

        self._stream: Optional[MessageStream] = None
        self._coordinator_version = 1
        self._rpc_lock = threading.Lock()
        self._stop = threading.Event()
        #: Engines are cached per spec fingerprint: every shard of one
        #: campaign shares the target artifacts, boot templates, and
        #: enumerated fault space.
        self._engines: Dict[str, tuple] = {}
        #: Shards fully executed by this worker (observable for tests/CLI).
        self.shards_completed = 0
        self.results_streamed = 0

    # ------------------------------------------------------------------
    # link management
    # ------------------------------------------------------------------
    def _ensure_stream(self) -> MessageStream:
        if self._stream is None or self._stream.closed:
            self._stream = connect(
                self.address,
                retries=self.connect_retries,
                backoff=self.connect_backoff,
                max_message_bytes=self.max_message_bytes,
            )
            reply = self._rpc({
                "type": "hello",
                "role": "worker",
                "worker_id": self.worker_id,
                "version": PROTOCOL_VERSION,
            })
            if reply.get("type") != "welcome":
                raise ProtocolError(f"unexpected hello reply: {reply!r}")
            try:
                self._coordinator_version = int(reply.get("version", 1))
            except (TypeError, ValueError):
                self._coordinator_version = 1
        return self._stream

    def _rpc(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response pair on the shared stream (thread-safe)."""
        stream = self._stream
        if stream is None or stream.closed:
            raise ConnectionClosed("worker link is down")
        with self._rpc_lock:
            stream.send(message)
            return stream.recv()

    def _drop_stream(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def close(self) -> None:
        self.stop()
        self._drop_stream()

    def stop(self) -> None:
        """Ask a running loop to exit after the current scenario."""
        self._stop.set()

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run_forever(self) -> None:
        """Serve shards until :meth:`stop` (or an unrecoverable dial
        failure after all retries)."""
        while not self._stop.is_set():
            try:
                worked = self.run_once()
            except ConnectionClosed:
                # The link died; connect() inside the next iteration rides
                # out a restarting coordinator with backoff.
                self._drop_stream()
                continue
            except ProtocolError as exc:
                logger.warning("protocol error, resetting link: %s", exc)
                self._drop_stream()
                continue
            if not worked:
                self._stop.wait(self.poll_interval)
        self._drop_stream()

    def run_once(self) -> bool:
        """Fetch and fully process one shard; False when the coordinator
        had nothing for us (idle poll)."""
        self._ensure_stream()
        reply = self._rpc({
            "type": "fetch",
            "worker_id": self.worker_id,
            # Protocol ≥ 3: the coordinator leases adaptive shards only to
            # workers that advertise a version able to interpret them.
            "version": PROTOCOL_VERSION,
        })
        kind = reply.get("type")
        if kind == "idle":
            return False
        if kind != "shard":
            raise ProtocolError(f"unexpected fetch reply: {reply!r}")
        self._execute_shard(reply)
        return True

    # ------------------------------------------------------------------
    # shard execution
    # ------------------------------------------------------------------
    def _engine_for(self, spec: CampaignSpec):
        fingerprint = spec_fingerprint(spec)
        cached = self._engines.get(fingerprint)
        if cached is None:
            # No store: the coordinator owns persistence; the worker-side
            # engine only derives schedules and executes.
            engine, points = build_engine(spec, store=None)
            cached = (engine, points)
            self._engines[fingerprint] = cached
        return cached

    def _execute_shard(self, shard: Dict[str, Any]) -> None:
        lease_id = shard["lease_id"]
        indices: List[int] = list(shard.get("indices", ()))
        spec = CampaignSpec.from_dict(shard.get("spec"))
        engine, points = self._engine_for(spec)
        lease_timeout = float(shard.get("lease_timeout", 30.0))
        # Adopt the coordinator's fleet-aggregate cost model *before* the
        # shard's counter snapshot: adoption replaces local state wholesale
        # (if better informed), and adopted observations must not appear in
        # this shard's reported delta — the coordinator's aggregate already
        # contains them, and merging them back would double-count.
        default_cost_model().adopt(shard.get("cost_model"))

        lost = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease_id, max(0.05, lease_timeout / 3.0), lost),
            name=f"heartbeat-{lease_id}",
            daemon=True,
        )
        heartbeat.start()
        stats_before = _cache_stats_snapshot()
        # Batch result records (protocol ≥ 2): one message per k records
        # instead of one RPC round trip per record.  The coordinator stores
        # every record before acking the batch, so abandoning a shard after
        # a flush loses at most the unflushed tail — which the re-queued
        # lease simply re-executes (the store is idempotent per key).
        batching = self._coordinator_version >= 2 and self.result_batch_size > 1
        batch: List[Dict[str, Any]] = []

        def flush() -> None:
            if not batch:
                return
            reply = self._rpc({
                "type": "result_batch",
                "lease_id": lease_id,
                "campaign_id": shard.get("campaign_id"),
                "records": list(batch),
            })
            if reply.get("type") == "stale_lease":
                raise _LeaseLost()
            if reply.get("type") != "ack":
                raise ProtocolError(f"unexpected result_batch reply: {reply!r}")
            self.results_streamed += len(batch)
            batch.clear()

        if shard.get("adaptive"):
            # Adaptive shard (protocol ≥ 3): the coordinator planned the
            # round centrally, so the lease names its points explicitly
            # instead of by derivable schedule position.
            assignments = [
                (int(index), str(key))
                for index, key in shard.get("assignments", ())
            ]
            runs = engine.run_assignments(
                points, assignments, parallelism=self.parallelism
            )
        else:
            runs = engine.run_schedule_indices(
                points, indices, parallelism=self.parallelism
            )
        try:
            for record in runs:
                if lost.is_set() or self._stop.is_set():
                    raise _LeaseLost()
                if batching:
                    batch.append(record.to_dict())
                    if len(batch) >= self.result_batch_size:
                        flush()
                    continue
                reply = self._rpc({
                    "type": "result",
                    "lease_id": lease_id,
                    "campaign_id": shard.get("campaign_id"),
                    "record": record.to_dict(),
                })
                if reply.get("type") == "stale_lease":
                    raise _LeaseLost()
                if reply.get("type") != "ack":
                    raise ProtocolError(f"unexpected result reply: {reply!r}")
                self.results_streamed += 1
            flush()
            lost.set()
            heartbeat.join()
            stats_after = _cache_stats_snapshot()
            reply = self._rpc({
                "type": "shard_done",
                "lease_id": lease_id,
                # Extra field, ignored by version-1 coordinators.
                "stats": {
                    key: stats_after[key] - stats_before[key]
                    for key in stats_after
                },
            })
            if reply.get("type") == "ack":
                self.shards_completed += 1
        except _LeaseLost:
            logger.info("lease %s lost; abandoning shard", lease_id)
        finally:
            lost.set()
            runs.close()  # cancel any outstanding pooled work

    def _heartbeat_loop(
        self, lease_id: str, interval: float, lost: threading.Event
    ) -> None:
        while not lost.wait(interval):
            try:
                reply = self._rpc({"type": "heartbeat", "lease_id": lease_id})
            except ProtocolError:
                lost.set()
                return
            if reply.get("type") != "ack":
                lost.set()
                return


__all__ = ["CampaignWorker"]
