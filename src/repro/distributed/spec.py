"""Campaign specifications: the unit the fabric ships between processes.

A :class:`CampaignSpec` is everything needed to *independently* reconstruct
one exploration — target (by registry name), workload, strategy spec, seed,
space filters — and nothing that is execution-local (no backends, no pools,
no store handles).  The determinism contract of the exploration engine
makes this sufficient: the fault space enumeration, priority order,
strategy selection, and per-run seeds are all pure functions of the spec,
so the coordinator and every worker derive the *identical* schedule from
the same spec and can talk about points purely by schedule index.

For an *adaptive* strategy (``strategy="coverage"``) the contract weakens
to "spec + completed results determine the next round": the schedule is
not locally derivable, so the coordinator — which holds the authoritative
store — runs the round planner and shard leases name their points by
explicit ``(index, point key)`` assignment instead (protocol ≥ 3, see
``doc/ADAPTIVE.md``).  Per-run seeds still derive from the shipped index,
so records stay byte-identical to a serial adaptive run's.

:func:`spec_fingerprint` canonicalises a spec into a stable hash used to
deduplicate submissions and key worker-side engine caches.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.exploration.engine import ExplorationEngine
from repro.core.exploration.space import FaultPoint
from repro.core.exploration.store import ResultStore


@dataclass
class CampaignSpec:
    """One exploration campaign, as named over the wire."""

    target: str
    workload: Optional[str] = None
    strategy: Optional[str] = None
    seed: Optional[int] = None
    functions: Optional[List[str]] = None
    include_partial: bool = True
    include_checked: bool = False
    #: Structured fault classes to sweep alongside the errno space (see
    #: :mod:`repro.core.faults`).  ``None`` sweeps errno faults only; a list
    #: appends every named class's enumerated points to the space.  Targets
    #: without a binary (Python-level servers) may run structured-only
    #: campaigns this way.
    fault_classes: Optional[List[str]] = None
    once: bool = True
    share_prefixes: Optional[bool] = None
    request_options: Dict[str, Any] = field(default_factory=dict)
    #: Coordinator-side checkpoint file (JSON-lines :class:`ResultStore`).
    #: ``None`` keeps the campaign in coordinator memory only — it then
    #: does not survive a coordinator restart.
    store_path: Optional[str] = None
    #: Points per worker shard lease; ``None`` uses the coordinator default.
    shard_size: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"campaign spec must be an object, got {type(payload).__name__}")
        known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown campaign spec fields: {sorted(unknown)}")
        if "target" not in payload or not payload["target"]:
            raise ValueError("campaign spec requires a 'target' name")
        return cls(**payload)


def validate_spec(spec: CampaignSpec) -> None:
    """Reject a spec naming things the fabric cannot resolve.

    The coordinator calls this at submit time: an unknown target, workload,
    strategy, or fault-class name would otherwise be accepted, sharded out,
    and crash every worker mid-campaign — far from the submitting client
    and long after the submit reply said "ok".  Raises :class:`ValueError`
    with the offending field and the known names.
    """
    from repro.core.exploration.strategy import resolve_strategy
    from repro.core.faults import class_names, is_structured_class
    from repro.targets import resolve_target, target_names

    try:
        target = resolve_target(spec.target)
    except ValueError:
        raise ValueError(
            f"unknown target {spec.target!r}; known targets: "
            f"{', '.join(target_names())}"
        )
    if spec.workload is not None:
        known_workloads = list(target.workloads())
        if spec.workload not in known_workloads:
            raise ValueError(
                f"unknown workload {spec.workload!r} for target "
                f"{spec.target!r}; known workloads: {', '.join(known_workloads)}"
            )
    try:
        resolve_strategy(spec.strategy)
    except (TypeError, ValueError) as exc:
        raise ValueError(str(exc))
    for klass in spec.fault_classes or ():
        if not is_structured_class(klass):
            raise ValueError(
                f"unknown fault class {klass!r}; known classes: "
                f"{', '.join(class_names())}"
            )


def spec_fingerprint(spec: CampaignSpec) -> str:
    """Stable identity of a spec (submission dedup, engine-cache key)."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def build_engine(
    spec: CampaignSpec, store: Optional[ResultStore] = None
) -> Tuple[ExplorationEngine, List[FaultPoint]]:
    """Materialise (engine, fault space) from a spec.

    Both fabric roles call this: the coordinator (with its authoritative
    store) to compute schedule keys and the pending set, each worker (with
    no store — the coordinator owns persistence) to execute shard indices.
    Imports are local because this is the one place the distributed layer
    reaches into the analysis/controller stack.
    """
    from repro.core.controller.controller import LFIController
    from repro.core.exploration.space import enumerate_structured_space
    from repro.targets import resolve_target

    target = resolve_target(spec.target)
    controller = LFIController(target)
    try:
        points = controller.fault_space(
            functions=spec.functions,
            include_partial=spec.include_partial,
            include_checked=spec.include_checked,
        )
    except ValueError:
        # Python-level targets have no binary to analyze; a structured-only
        # campaign is still well-defined for them.
        if not spec.fault_classes:
            raise
        points = []
    if spec.fault_classes:
        binary = getattr(target, "name", spec.target) or spec.target
        points = list(points) + enumerate_structured_space(
            binary, spec.fault_classes, functions=spec.functions
        )
    engine = ExplorationEngine(
        target,
        strategy=spec.strategy,
        store=store,
        seed=spec.seed,
        workload=spec.workload,
        once=spec.once,
        share_prefixes=spec.share_prefixes,
        request_options=dict(spec.request_options),
    )
    return engine, points


__all__ = ["CampaignSpec", "build_engine", "spec_fingerprint", "validate_spec"]
