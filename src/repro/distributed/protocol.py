"""Line-oriented JSON wire protocol for the campaign fabric.

One message is one JSON object, UTF-8 encoded, on one ``\\n``-terminated
line — the same self-describing framing the :class:`ResultStore` uses on
disk, so a protocol trace *is* a JSON-lines file and the standard tools
(``jq``, ``grep``) work on both.  ``doc/PROTOCOL.md`` is the message
reference; this module only implements framing:

* :class:`MessageStream` — a framed duplex channel over one socket, with a
  hard cap on message size in both directions (a peer cannot make the
  daemon buffer an unbounded line) and explicit, typed failures:
  :class:`ConnectionClosed` on clean EOF / half-close,
  :class:`MessageTooLarge` when either side exceeds the cap, and
  :class:`ProtocolError` when bytes on the wire are not one JSON object
  per line;
* :func:`connect` — client-side dial with retry and exponential backoff,
  the policy every worker/client link uses so a briefly absent coordinator
  (restart, not yet listening) is ridden out instead of fatal.

All sends are locked, so multiple threads (a worker's executor loop and
its heartbeat) can share one stream; receives are expected from a single
reader thread.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple

#: Default cap on one framed message, in bytes (both directions).  Shard
#: descriptors and result records are a few hundred bytes; anything close
#: to this is a protocol violation, not a big workload.
MAX_MESSAGE_BYTES = 1 << 20

#: Protocol revision carried in every ``hello``.
#:
#: * 1 — initial fabric protocol (per-record ``result`` streaming).
#: * 2 — worker→coordinator ``result_batch`` (k records per message) and
#:   the optional ``stats`` cache-counter field on ``shard_done``.
#:   Workers only batch when the coordinator's ``welcome`` advertises
#:   version ≥ 2; version-1 coordinators keep receiving per-record
#:   ``result`` messages, and version-1 workers keep working unchanged.
#: * 3 — adaptive (round-planned) campaigns.  ``fetch`` carries the
#:   worker's ``version``; the coordinator leases adaptive shards only to
#:   workers advertising ≥ 3.  An adaptive ``shard`` reply carries
#:   ``"adaptive": true``, explicit ``assignments`` (``[index, point_key]``
#:   pairs — an adaptive schedule is not locally derivable), and the
#:   coordinator's aggregate ``cost_model`` snapshot.  Version-2 workers
#:   keep serving static campaigns unchanged (their version-less ``fetch``
#:   defaults to 1 and is never handed an adaptive shard).
PROTOCOL_VERSION = 3


class ProtocolError(Exception):
    """The peer sent bytes that are not one JSON object per line."""


class MessageTooLarge(ProtocolError):
    """A message exceeded the stream's size cap (either direction)."""


class ConnectionClosed(ProtocolError):
    """The peer closed (or half-closed) the connection."""


class MessageStream:
    """Framed JSON messages over one connected socket."""

    def __init__(
        self, sock: socket.socket, max_message_bytes: int = MAX_MESSAGE_BYTES
    ) -> None:
        self._sock = sock
        self._buffer = bytearray()
        self.max_message_bytes = max_message_bytes
        self._send_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def send(self, message: Dict[str, Any]) -> None:
        """Frame and send one message (thread-safe)."""
        data = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
        if len(data) > self.max_message_bytes:
            raise MessageTooLarge(
                f"outgoing message of {len(data)} bytes exceeds the "
                f"{self.max_message_bytes}-byte cap"
            )
        try:
            with self._send_lock:
                self._sock.sendall(data + b"\n")
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise ConnectionClosed(f"send failed: {exc}") from exc

    def recv(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Receive one message; blocks until a full line arrives.

        Raises :class:`ConnectionClosed` on EOF (including a peer that
        ``shutdown(SHUT_WR)`` half-closed its side), :class:`MessageTooLarge`
        when the unterminated line outgrows the cap — the stream is then
        poisoned and should be closed, since resynchronising mid-line is
        not possible — and :class:`socket.timeout` when *timeout* elapses.
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                raw = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                if not raw.strip():
                    continue  # blank keep-alive lines are legal padding
                if len(raw) > self.max_message_bytes:
                    # Also enforced while the line is still unterminated
                    # (below); this catches a complete oversized line that
                    # arrived in one chunk.
                    raise MessageTooLarge(
                        f"incoming message of {len(raw)} bytes exceeds the "
                        f"{self.max_message_bytes}-byte cap"
                    )
                return self._parse(raw)
            if len(self._buffer) > self.max_message_bytes:
                raise MessageTooLarge(
                    f"incoming line exceeds the {self.max_message_bytes}-byte cap"
                )
            self._sock.settimeout(timeout)
            try:
                chunk = self._sock.recv(65536)
            except (ConnectionResetError, BrokenPipeError) as exc:
                raise ConnectionClosed(f"recv failed: {exc}") from exc
            if not chunk:
                raise ConnectionClosed("peer closed the connection")
            self._buffer.extend(chunk)

    def _parse(self, raw: bytes) -> Dict[str, Any]:
        try:
            message = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"unparseable message line: {exc}") from exc
        if not isinstance(message, dict) or "type" not in message:
            raise ProtocolError(
                "every message must be a JSON object with a 'type' field"
            )
        return message

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "MessageStream":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def connect(
    address: Tuple[str, int],
    retries: int = 5,
    backoff: float = 0.05,
    backoff_cap: float = 2.0,
    max_message_bytes: int = MAX_MESSAGE_BYTES,
) -> MessageStream:
    """Dial *address* with retry and exponential backoff.

    Connection refusals and resets retry up to *retries* times with delays
    ``backoff * 2**attempt`` capped at *backoff_cap* — the ride-out window
    for a coordinator that is restarting.  The final failure re-raises the
    underlying ``OSError``.
    """
    attempt = 0
    while True:
        try:
            sock = socket.create_connection(address)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return MessageStream(sock, max_message_bytes=max_message_bytes)
        except OSError:
            if attempt >= retries:
                raise
            time.sleep(min(backoff * (2 ** attempt), backoff_cap))
            attempt += 1


__all__ = [
    "ConnectionClosed",
    "MAX_MESSAGE_BYTES",
    "MessageStream",
    "MessageTooLarge",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "connect",
]
