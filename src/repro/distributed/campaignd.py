"""``repro-campaignd``: the resident campaign coordinator daemon.

The fabric's control plane.  A :class:`CampaignCoordinator` listens on one
TCP port and speaks the line-oriented JSON protocol of
:mod:`repro.distributed.protocol` (reference: ``doc/PROTOCOL.md``) with two
kinds of peers:

* **clients** (`repro-campaign`) submit :class:`CampaignSpec`\\ s, poll
  status, stream results (`tail`), fetch completed snapshots (`results`),
  and cancel campaigns;
* **workers** (`repro-campaignd worker`) pull *shard leases* — batches of
  schedule indices — execute them on their local engine/pool stack, and
  stream result records back (batched k-per-message on protocol ≥ 2,
  per-record against older peers).

Shard leases are *group-aware*: :func:`plan_lease_shards` co-locates a
prefix group's members in one lease, so the worker that drains them shares
their boot+prefix capture and suffix memo locally instead of k machines
each probing the same prefix.

Design points, in the order they matter for correctness:

**The schedule is the shared coordinate system.**  A campaign's schedule is
a pure function of its spec (see :mod:`repro.distributed.spec`), so the
coordinator ships only ``(spec, [schedule indices])`` and workers derive
everything else locally.  No scenario objects, no fault points, no pickled
targets cross the wire — just small JSON.

**The result store is the only durable state.**  Every record a worker
streams in is appended (flushed, and fsynced when ``durable_stores=True``)
to the campaign's JSON-lines :class:`ResultStore` *before* it is
acknowledged or streamed to tailing clients.  Coordinator crash-safety is
therefore resume, not replication: restart the daemon, resubmit the same
spec (same ``store_path``), and only unfinished points are re-sharded —
the same story as a locally interrupted ``explore()``.

**Leases expire; records are idempotent.**  A shard lease carries a
deadline, extended by every result and heartbeat from its worker.  A dead
worker's lease expires and its unfinished indices return to the front of
the queue for the next ``fetch``.  A *slow* (not dead) worker whose lease
was reassigned keeps streaming records — they are acknowledged as
``stale_lease`` and ignored, and even a racing duplicate record is
harmless because the store keeps first-completion-wins per key.

**Adaptive campaigns are planned here.**  A coverage-guided spec has no
ahead-of-time schedule, so the coordinator owns the campaign's
:class:`~repro.core.exploration.engine.RoundPlanner`: it holds the
authoritative store, which is exactly what the determinism contract needs
("spec + completed results ⇒ next round", ``doc/ADAPTIVE.md``).  Adaptive
shard leases carry explicit ``(index, point key)`` assignments — plus the
fleet-aggregate cost-model snapshot — and only ever cover the *current*
round; when the round's last record lands, the next round is planned
under the lock and its shards enqueue immediately.  Only protocol ≥ 3
workers are leased adaptive shards (``fetch`` advertises the worker's
version); older workers keep draining static campaigns unchanged.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.core.controller.costmodel import CostModel
from repro.core.exploration.engine import RoundPlanner
from repro.core.exploration.store import ResultStore, StoredResult
from repro.distributed.protocol import (
    MAX_MESSAGE_BYTES,
    ConnectionClosed,
    MessageStream,
    MessageTooLarge,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.distributed.spec import (
    CampaignSpec,
    build_engine,
    spec_fingerprint,
    validate_spec,
)

logger = logging.getLogger("repro.campaignd")

#: Default points per shard lease.
DEFAULT_SHARD_SIZE = 8
#: Default seconds a lease may go silent before its shard is re-queued.
DEFAULT_LEASE_TIMEOUT = 30.0


def plan_lease_shards(
    pending_indices: List[int],
    group_keys: Optional[List[Optional[str]]],
    shard_size: int,
) -> List[List[int]]:
    """Partition pending schedule indices into lease-sized shards.

    With *group_keys* (one base prefix-group key per schedule position,
    ``None`` marking solo points), a group's members land in the same
    shard so the executing worker shares their boot+prefix capture and
    suffix memo.  Groups larger than *shard_size* are split into
    ``shard_size`` chunks — each chunk's first member re-probes the shared
    prefix locally, and the subset invariant of the prefix scheduler keeps
    every chunk's results identical to the unsplit run.  Small groups and
    solo points are packed together up to *shard_size*, preserving
    schedule order within and across shards as far as grouping allows.

    Without keys (sharing off, or derivation failed) this degrades to the
    plain contiguous chunking the fabric always used.
    """
    shard_size = max(1, int(shard_size))
    if not group_keys:
        return [
            pending_indices[offset : offset + shard_size]
            for offset in range(0, len(pending_indices), shard_size)
        ]
    # Bucket by group key in first-appearance order; None points are solo.
    buckets: List[List[int]] = []
    by_key: Dict[str, List[int]] = {}
    for index in pending_indices:
        key = group_keys[index] if 0 <= index < len(group_keys) else None
        if key is None:
            buckets.append([index])
            continue
        bucket = by_key.get(key)
        if bucket is None:
            bucket = []
            by_key[key] = bucket
            buckets.append(bucket)
        bucket.append(index)
    shards: List[List[int]] = []
    current: List[int] = []
    for bucket in buckets:
        while len(bucket) > shard_size:
            shards.append(bucket[:shard_size])
            bucket = bucket[shard_size:]
        if current and len(current) + len(bucket) > shard_size:
            shards.append(current)
            current = []
        current.extend(bucket)
        if len(current) >= shard_size:
            shards.append(current)
            current = []
    if current:
        shards.append(current)
    return shards


def _adaptive_group_keys(engine, schedule_points) -> Optional[List[Optional[str]]]:
    """Per-position prefix-group keys of an adaptive schedule (or ``None``
    to degrade to contiguous shards when derivation fails)."""
    try:
        return [engine.group_key_of(point) for point in schedule_points]
    except Exception:
        logger.exception("group-key derivation failed; contiguous shards")
        return None


class _Lease:
    """One worker's claim on a batch of schedule indices."""

    __slots__ = ("lease_id", "campaign_id", "worker_id", "indices", "deadline")

    def __init__(
        self,
        lease_id: str,
        campaign_id: str,
        worker_id: str,
        indices: List[int],
        deadline: float,
    ) -> None:
        self.lease_id = lease_id
        self.campaign_id = campaign_id
        self.worker_id = worker_id
        self.indices = indices  # not yet completed
        self.deadline = deadline


class _Campaign:
    """Coordinator-side state of one submitted campaign."""

    def __init__(
        self,
        campaign_id: str,
        spec: CampaignSpec,
        fingerprint: str,
        store: ResultStore,
        schedule_keys: List[str],
        pending_indices: List[int],
        shard_size: int,
        shard_plan: Optional[List[List[int]]] = None,
        planner: Optional[RoundPlanner] = None,
    ) -> None:
        self.id = campaign_id
        self.spec = spec
        self.fingerprint = fingerprint
        self.store = store
        self.schedule_keys = schedule_keys
        self.key_to_index = {key: index for index, key in enumerate(schedule_keys)}
        self.completed_count = len(schedule_keys) - len(pending_indices)
        self.resumed_at_submit = self.completed_count
        self.executed = 0  # fresh records accepted over the fabric
        self.shard_size = max(1, int(shard_size))
        #: The round planner of an adaptive campaign (``None`` = static).
        #: The coordinator is its only driver: it replays feedback from the
        #: authoritative store and plans each next round under the lock.
        self.planner = planner
        #: Per-schedule-position fault-point keys (adaptive only): the
        #: explicit assignments shipped in shard leases, since workers
        #: cannot derive an adaptive schedule locally.
        self.point_keys: List[str] = (
            [point.key for point in planner.schedule] if planner is not None else []
        )
        #: Fleet-aggregate learned cost model, fed by ``shard_done`` cost
        #: counters and shipped back to workers inside adaptive leases.
        self.cost_model = CostModel()
        self.queue: Deque[List[int]] = deque(
            shard_plan
            if shard_plan is not None
            else (
                pending_indices[offset : offset + shard_size]
                for offset in range(0, len(pending_indices), shard_size)
            )
        )
        self.leases: Dict[str, _Lease] = {}
        #: Summed worker-reported cache deltas (``shard_done`` stats).
        self.worker_cache_stats: Dict[str, float] = {}
        #: Fresh results in arrival order, for `tail` streaming.
        self.events: List[Dict[str, Any]] = []
        if planner is not None:
            self.state = "complete" if planner.done else "running"
        else:
            self.state = "complete" if not pending_indices else "running"
        self.workers_seen: Set[str] = set()

    @property
    def adaptive(self) -> bool:
        return self.planner is not None

    @property
    def total(self) -> int:
        return len(self.schedule_keys)

    def queued_count(self) -> int:
        return sum(len(shard) for shard in self.queue)

    def leased_count(self) -> int:
        return sum(len(lease.indices) for lease in self.leases.values())

    def status_payload(self) -> Dict[str, Any]:
        payload = {
            "type": "status",
            "campaign_id": self.id,
            "state": self.state,
            "target": self.spec.target,
            "workload": self.spec.workload,
            "store_path": self.spec.store_path,
            "total": self.total,
            "completed": self.completed_count,
            "resumed_at_submit": self.resumed_at_submit,
            "executed": self.executed,
            "queued": self.queued_count(),
            "leased": self.leased_count(),
            "active_leases": len(self.leases),
            "workers_seen": sorted(self.workers_seen),
            "cache": dict(self.worker_cache_stats),
            "cost_model": {
                "observations": self.cost_model.observations(),
                "suffix_fraction": round(self.cost_model.suffix_fraction(), 4),
            },
        }
        if self.planner is not None:
            payload["planner"] = self.planner.summary()
        return payload


class CampaignCoordinator:
    """The resident coordinator: accepts clients and workers, owns state."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_size: int = DEFAULT_SHARD_SIZE,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        durable_stores: bool = True,
        max_message_bytes: int = MAX_MESSAGE_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.shard_size = max(1, int(shard_size))
        self.lease_timeout = float(lease_timeout)
        self.durable_stores = durable_stores
        self.max_message_bytes = max_message_bytes

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._campaigns: Dict[str, _Campaign] = {}
        self._by_fingerprint: Dict[str, str] = {}
        self._next_campaign = 1
        self._next_lease = 1
        self._fetch_rotor = 0

        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._streams: Set[MessageStream] = set()
        self._running = False
        self._stopped = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, listen, and serve in a background thread; returns the
        bound ``(host, port)`` (the kernel picks the port when 0)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.host, self.port = listener.getsockname()
        self._listener = listener
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="campaignd-accept", daemon=True
        )
        self._accept_thread.start()
        logger.info("campaignd listening on %s:%d", self.host, self.port)
        return self.host, self.port

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`stop` is called."""
        if not self._running:
            self.start()
        self._stopped.wait()

    def stop(self) -> None:
        """Shut the daemon down: stop accepting, drop connections, close
        stores.  Campaign state survives only through the result stores."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            self._cond.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for stream in list(self._streams):
            stream.close()
        with self._lock:
            for campaign in self._campaigns.values():
                campaign.store.close()
        self._stopped.set()
        logger.info("campaignd stopped")

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                break  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            stream = MessageStream(sock, max_message_bytes=self.max_message_bytes)
            self._streams.add(stream)
            thread = threading.Thread(
                target=self._serve_connection, args=(stream,),
                name="campaignd-conn", daemon=True,
            )
            thread.start()

    def _serve_connection(self, stream: MessageStream) -> None:
        try:
            while self._running:
                try:
                    message = stream.recv()
                except ConnectionClosed:
                    break
                except MessageTooLarge as exc:
                    # The line cannot be resynchronised: report and drop.
                    self._try_reply(stream, {"type": "error", "error": str(exc)})
                    break
                except ProtocolError as exc:
                    self._try_reply(stream, {"type": "error", "error": str(exc)})
                    continue
                try:
                    done = self._dispatch(stream, message)
                except ConnectionClosed:
                    break
                except Exception as exc:  # handler bug or bad request content
                    logger.exception("error handling %r", message.get("type"))
                    if not self._try_reply(
                        stream, {"type": "error", "error": f"{type(exc).__name__}: {exc}"}
                    ):
                        break
                    continue
                if done:
                    break
        finally:
            self._streams.discard(stream)
            stream.close()

    @staticmethod
    def _try_reply(stream: MessageStream, message: Dict[str, Any]) -> bool:
        try:
            stream.send(message)
            return True
        except ProtocolError:
            return False

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, stream: MessageStream, message: Dict[str, Any]) -> bool:
        """Handle one message; returns True when the connection should end."""
        kind = message.get("type")
        if kind == "hello":
            stream.send({
                "type": "welcome",
                "server": "repro-campaignd",
                "version": PROTOCOL_VERSION,
                "lease_timeout": self.lease_timeout,
            })
            return False
        if kind == "ping":
            stream.send({"type": "pong"})
            return False
        if kind == "submit":
            stream.send(self._handle_submit(message))
            return False
        if kind == "status":
            stream.send(self._handle_status(message))
            return False
        if kind == "list":
            stream.send(self._handle_list())
            return False
        if kind == "results":
            self._handle_results(stream, message)
            return False
        if kind == "tail":
            self._handle_tail(stream, message)
            return False
        if kind == "cancel":
            stream.send(self._handle_cancel(message))
            return False
        if kind == "fetch":
            stream.send(self._handle_fetch(message))
            return False
        if kind == "result":
            stream.send(self._handle_result(message))
            return False
        if kind == "result_batch":
            stream.send(self._handle_result_batch(message))
            return False
        if kind == "heartbeat":
            stream.send(self._handle_heartbeat(message))
            return False
        if kind == "shard_done":
            stream.send(self._handle_shard_done(message))
            return False
        if kind == "shutdown":
            stream.send({"type": "ack"})
            threading.Thread(target=self.stop, daemon=True).start()
            return True
        stream.send({"type": "error", "error": f"unknown message type {kind!r}"})
        return False

    # ------------------------------------------------------------------
    # client handlers
    # ------------------------------------------------------------------
    def _handle_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        # Validate the spec's names *here*, before anything is registered:
        # an unknown workload or fault class would otherwise be accepted at
        # submit and only blow up inside every worker shard, far from the
        # client that could fix it.  The reply is a structured error, not a
        # dropped connection, so submitters can distinguish "bad spec" from
        # "coordinator down".
        try:
            spec = CampaignSpec.from_dict(message.get("campaign"))
            validate_spec(spec)
        except ValueError as exc:
            return {"type": "error", "error": str(exc), "rejected": True}
        fingerprint = spec_fingerprint(spec)
        with self._lock:
            existing_id = self._by_fingerprint.get(fingerprint)
            if existing_id is not None:
                campaign = self._campaigns[existing_id]
                return self._submitted_payload(campaign, resubmitted=True)

        # Build outside the lock: compiling the target and loading the
        # store can take a while and must not block fetches/heartbeats.
        store = ResultStore(spec.store_path, durable=self.durable_stores)
        if store.has_torn_tail:
            # A coordinator killed mid-append leaves a partial line; the
            # run it described re-executes, the tail must go before the
            # first new record anyway — do it eagerly so it is logged.
            store.repair()
            logger.info("repaired torn tail in %s", spec.store_path)
        engine, points = build_engine(spec, store=store)
        shard_size = max(1, int(spec.shard_size or self.shard_size))
        planner: Optional[RoundPlanner] = None
        if engine.adaptive:
            # Adaptive campaigns have no ahead-of-time schedule: build the
            # round planner here (replaying any completed rounds from the
            # store — resume) and shard only the first incomplete round.
            planner = RoundPlanner(engine, points)
            pending = [(index, point) for index, point in planner.replay_from_store()]
            schedule_keys = [engine.run_key(point) for point in planner.schedule]
            group_keys = _adaptive_group_keys(engine, planner.schedule)
        else:
            schedule, pending = engine.plan(points)
            schedule_keys = [engine.run_key(point) for point in schedule]
            try:
                group_keys = engine.schedule_group_keys(points)
            except Exception:
                # Grouping is a throughput optimisation; a derivation failure
                # must not reject the campaign — fall back to contiguous shards.
                logger.exception("group-key derivation failed; contiguous shards")
                group_keys = None
        shard_plan = plan_lease_shards(
            [index for index, _ in pending], group_keys, shard_size
        )

        with self._lock:
            # Re-check under the lock: a racing identical submit may have
            # registered while we were building.
            existing_id = self._by_fingerprint.get(fingerprint)
            if existing_id is not None:
                store.close()
                campaign = self._campaigns[existing_id]
                return self._submitted_payload(campaign, resubmitted=True)
            campaign_id = f"c{self._next_campaign}"
            self._next_campaign += 1
            campaign = _Campaign(
                campaign_id,
                spec,
                fingerprint,
                store,
                schedule_keys,
                [index for index, _ in pending],
                shard_size,
                shard_plan=shard_plan,
                planner=planner,
            )
            self._campaigns[campaign_id] = campaign
            self._by_fingerprint[fingerprint] = campaign_id
            self._cond.notify_all()
            logger.info(
                "campaign %s submitted: %s total=%d resumed=%d",
                campaign_id, spec.target, campaign.total, campaign.resumed_at_submit,
            )
            return self._submitted_payload(campaign, resubmitted=False)

    @staticmethod
    def _submitted_payload(campaign: _Campaign, resubmitted: bool) -> Dict[str, Any]:
        return {
            "type": "submitted",
            "campaign_id": campaign.id,
            "state": campaign.state,
            "total": campaign.total,
            "completed": campaign.completed_count,
            "resumed": campaign.resumed_at_submit,
            "resubmitted": resubmitted,
        }

    def _campaign_for(self, message: Dict[str, Any]) -> _Campaign:
        campaign_id = message.get("campaign_id")
        campaign = self._campaigns.get(campaign_id)
        if campaign is None:
            raise ValueError(f"unknown campaign {campaign_id!r}")
        return campaign

    def _handle_status(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self._reap_expired_leases()
            return self._campaign_for(message).status_payload()

    def _handle_list(self) -> Dict[str, Any]:
        with self._lock:
            self._reap_expired_leases()
            return {
                "type": "campaigns",
                "campaigns": [
                    campaign.status_payload()
                    for campaign in self._campaigns.values()
                ],
            }

    def _handle_results(self, stream: MessageStream, message: Dict[str, Any]) -> None:
        """Stream the completed snapshot, in schedule order, then an end marker."""
        with self._lock:
            campaign = self._campaign_for(message)
            records = [
                campaign.store.get(key).to_dict()
                for key in campaign.schedule_keys
                if key in campaign.store
            ]
            state = campaign.state
        for position, record in enumerate(records):
            stream.send({
                "type": "result",
                "campaign_id": message.get("campaign_id"),
                "seq": position,
                "record": record,
            })
        stream.send({
            "type": "results_end",
            "campaign_id": message.get("campaign_id"),
            "count": len(records),
            "state": state,
        })

    def _handle_tail(self, stream: MessageStream, message: Dict[str, Any]) -> None:
        """Stream fresh results as they arrive; ends at campaign completion
        (or immediately after catching up when ``follow`` is false)."""
        campaign_id = message.get("campaign_id")
        follow = bool(message.get("follow", True))
        seq = int(message.get("from_seq", 0))
        with self._lock:
            campaign = self._campaign_for(message)
        while True:
            with self._lock:
                while (
                    self._running
                    and follow
                    and seq >= len(campaign.events)
                    and campaign.state == "running"
                ):
                    self._cond.wait(timeout=0.5)
                batch = campaign.events[seq:]
                state = campaign.state
                running = self._running
            for event in batch:
                stream.send(event)
                seq += 1
            if not running or not follow or state != "running":
                stream.send({
                    "type": f"campaign_{state}" if state != "running" else "tail_end",
                    "campaign_id": campaign_id,
                    "seq": seq,
                })
                return

    def _handle_cancel(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            campaign = self._campaign_for(message)
            if campaign.state == "running":
                campaign.state = "cancelled"
                campaign.queue.clear()
                campaign.leases.clear()
                self._cond.notify_all()
                logger.info("campaign %s cancelled", campaign.id)
            return {"type": "cancelled", "campaign_id": campaign.id,
                    "state": campaign.state}

    # ------------------------------------------------------------------
    # worker handlers
    # ------------------------------------------------------------------
    def _reap_expired_leases(self) -> None:
        """Re-queue the unfinished indices of every expired lease (called
        under the lock)."""
        now = time.monotonic()
        for campaign in self._campaigns.values():
            expired = [
                lease for lease in campaign.leases.values() if lease.deadline < now
            ]
            for lease in expired:
                del campaign.leases[lease.lease_id]
                if campaign.state != "running":
                    continue
                remaining = [
                    index for index in lease.indices
                    if campaign.schedule_keys[index] not in campaign.store
                ]
                if remaining:
                    # Front of the queue: expired work is the oldest work.
                    campaign.queue.appendleft(remaining)
                    logger.info(
                        "lease %s (worker %s) expired; re-queued %d points",
                        lease.lease_id, lease.worker_id, len(remaining),
                    )

    def _handle_fetch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        worker_id = str(message.get("worker_id", "anonymous"))
        try:
            # Protocol ≥ 3 workers advertise their version on fetch; a
            # version-less fetch is an older worker and is never handed an
            # adaptive shard (it could not interpret the assignments).
            worker_version = int(message.get("version", 1))
        except (TypeError, ValueError):
            worker_version = 1
        with self._lock:
            self._reap_expired_leases()
            running = [
                campaign for campaign in self._campaigns.values()
                if campaign.state == "running" and campaign.queue
                and (worker_version >= 3 or not campaign.adaptive)
            ]
            if not running:
                return {"type": "idle", "retry_after": 0.2}
            # Round-robin across campaigns so many clients share the fleet.
            campaign = running[self._fetch_rotor % len(running)]
            self._fetch_rotor += 1
            indices = campaign.queue.popleft()
            lease_id = f"l{self._next_lease}"
            self._next_lease += 1
            lease = _Lease(
                lease_id,
                campaign.id,
                worker_id,
                list(indices),
                time.monotonic() + self.lease_timeout,
            )
            campaign.leases[lease_id] = lease
            campaign.workers_seen.add(worker_id)
            reply = {
                "type": "shard",
                "campaign_id": campaign.id,
                "lease_id": lease_id,
                "lease_timeout": self.lease_timeout,
                "spec": campaign.spec.to_dict(),
                "indices": list(indices),
            }
            if campaign.adaptive:
                reply["adaptive"] = True
                reply["assignments"] = [
                    [index, campaign.point_keys[index]] for index in indices
                ]
                reply["cost_model"] = campaign.cost_model.to_dict()
            return reply

    def _find_lease(self, lease_id: Optional[str]) -> Optional[Tuple[_Campaign, _Lease]]:
        for campaign in self._campaigns.values():
            lease = campaign.leases.get(lease_id)
            if lease is not None:
                return campaign, lease
        return None

    def _accept_record(
        self, campaign: _Campaign, lease: _Lease, record: StoredResult
    ) -> None:
        """Store one streamed record and settle its accounting (under the
        lock).  Durable first, visible second: the record hits the store
        (flushed/fsynced) before any ack or tail event exists."""
        index = campaign.key_to_index.get(record.key)
        if index is None:
            raise ValueError(
                f"record key {record.key!r} is not part of campaign {campaign.id}"
            )
        fresh = record.key not in campaign.store
        campaign.store.record(record)
        if fresh:
            campaign.completed_count += 1
            campaign.executed += 1
            campaign.events.append({
                "type": "result",
                "campaign_id": campaign.id,
                "seq": len(campaign.events),
                "record": record.to_dict(),
            })
        if campaign.planner is not None:
            # Feed the round planner.  Duplicate deliveries (stale leases
            # re-executing a member) are ignored by the planner itself —
            # only the first record per index counts, mirroring the store's
            # first-completion-wins.  The planner buffers feedback and
            # ingests it in schedule-index order at round close, so the
            # arrival order of records over the fabric cannot change the
            # next round.
            campaign.planner.record_result(
                index, campaign.planner.schedule[index], record, resumed=False
            )
            if campaign.planner.current is None:
                self._advance_adaptive(campaign)
        if index in lease.indices:
            lease.indices.remove(index)

    def _advance_adaptive(self, campaign: _Campaign) -> None:
        """Plan the next adaptive round(s) and enqueue their shards (called
        under the lock, after a round closed).

        ``replay_from_store`` may advance through several rounds at once
        when the store already answers them (a resumed campaign whose store
        holds records beyond the round that was incomplete at submit); the
        campaign's coordinate system — schedule keys, key→index map,
        per-position point keys — is synced with every newly planned
        position before any shard is enqueued."""
        planner = campaign.planner
        pending = planner.replay_from_store()
        engine = planner.engine
        for index in range(len(campaign.schedule_keys), len(planner.schedule)):
            point = planner.schedule[index]
            key = engine.run_key(point)
            campaign.schedule_keys.append(key)
            campaign.key_to_index[key] = index
            campaign.point_keys.append(point.key)
            if key in campaign.store:
                campaign.completed_count += 1
        if not pending:
            return
        group_keys = _adaptive_group_keys(engine, planner.schedule)
        shards = plan_lease_shards(
            [index for index, _ in pending], group_keys, campaign.shard_size
        )
        campaign.queue.extend(shards)

    def _handle_result(self, message: Dict[str, Any]) -> Dict[str, Any]:
        record_payload = message.get("record")
        if not isinstance(record_payload, dict):
            raise ValueError("result message carries no record object")
        record = StoredResult.from_dict(record_payload)
        with self._lock:
            found = self._find_lease(message.get("lease_id"))
            if found is None:
                return {"type": "stale_lease"}
            campaign, lease = found
            self._accept_record(campaign, lease, record)
            lease.deadline = time.monotonic() + self.lease_timeout
            self._check_complete(campaign)
            self._cond.notify_all()
            return {"type": "ack", "remaining": len(lease.indices)}

    def _handle_result_batch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Accept one ``result_batch`` (protocol ≥ 2): k records, one ack.

        Every record is parsed *before* any is stored, so a malformed
        record rejects the whole batch instead of leaving it half-ingested
        under one unacknowledged message."""
        payload = message.get("records")
        if not isinstance(payload, list) or not payload:
            raise ValueError("result_batch message carries no records list")
        records = []
        for item in payload:
            if not isinstance(item, dict):
                raise ValueError("result_batch records must be objects")
            records.append(StoredResult.from_dict(item))
        with self._lock:
            found = self._find_lease(message.get("lease_id"))
            if found is None:
                return {"type": "stale_lease"}
            campaign, lease = found
            for record in records:
                self._accept_record(campaign, lease, record)
            lease.deadline = time.monotonic() + self.lease_timeout
            self._check_complete(campaign)
            self._cond.notify_all()
            return {
                "type": "ack",
                "accepted": len(records),
                "remaining": len(lease.indices),
            }

    def _handle_heartbeat(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self._reap_expired_leases()
            found = self._find_lease(message.get("lease_id"))
            if found is None:
                return {"type": "stale_lease"}
            _campaign, lease = found
            lease.deadline = time.monotonic() + self.lease_timeout
            return {"type": "ack", "remaining": len(lease.indices)}

    def _handle_shard_done(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            found = self._find_lease(message.get("lease_id"))
            if found is None:
                return {"type": "stale_lease"}
            campaign, lease = found
            del campaign.leases[lease.lease_id]
            stats = message.get("stats")
            if isinstance(stats, dict):
                # Protocol ≥ 3 cost-model counters (running-sum deltas)
                # merge exactly into the campaign's fleet aggregate; the
                # remaining numerics are cache deltas (protocol ≥ 2),
                # summed per campaign for `repro-campaign status`.
                self._ingest_cost_stats(campaign, stats)
                for key, value in stats.items():
                    if key.startswith("cost_"):
                        continue
                    if isinstance(value, bool) or not isinstance(value, (int, float)):
                        continue
                    campaign.worker_cache_stats[key] = (
                        campaign.worker_cache_stats.get(key, 0) + value
                    )
            leftover = [
                index for index in lease.indices
                if campaign.schedule_keys[index] not in campaign.store
            ]
            if leftover and campaign.state == "running":
                # A worker declaring done with unfinished indices is a
                # worker bug, but the campaign must still terminate:
                # re-queue rather than lose the points.
                campaign.queue.appendleft(leftover)
                logger.warning(
                    "lease %s done with %d unfinished points; re-queued",
                    lease.lease_id, len(leftover),
                )
            self._check_complete(campaign)
            self._cond.notify_all()
            return {"type": "ack"}

    @staticmethod
    def _ingest_cost_stats(campaign: _Campaign, stats: Dict[str, Any]) -> None:
        """Merge one shard's cost-model counter deltas into the campaign's
        fleet-aggregate model (running sums merge exactly)."""
        try:
            n = int(stats.get("cost_observations", 0))
            if n <= 0:
                return
            campaign.cost_model.observe_sums(
                n,
                float(stats.get("cost_sum_k", 0.0)),
                float(stats.get("cost_sum_kk", 0.0)),
                float(stats.get("cost_sum_t", 0.0)),
                float(stats.get("cost_sum_kt", 0.0)),
            )
        except (TypeError, ValueError):
            return

    def _check_complete(self, campaign: _Campaign) -> None:
        """Flip a running campaign to complete when every key is stored
        (called under the lock).  An adaptive campaign additionally needs
        its planner exhausted — more rounds may follow a fully-stored
        schedule."""
        if campaign.state != "running":
            return
        if campaign.planner is not None and not campaign.planner.done:
            return
        if campaign.completed_count >= campaign.total:
            campaign.state = "complete"
            logger.info(
                "campaign %s complete: %d points (%d executed here, %d resumed)",
                campaign.id, campaign.total, campaign.executed,
                campaign.resumed_at_submit,
            )


__all__ = [
    "CampaignCoordinator",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_SHARD_SIZE",
    "plan_lease_shards",
]
