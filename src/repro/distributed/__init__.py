"""Distributed fault injection: global policies and the campaign fabric.

Two layers live here.

**Distributed triggers (§3.2, §7.3).**  A central controller with a global
view of a distributed system decides whether the distributed triggers
installed on individual nodes should fire.  The policies are the ones the
paper's PBFT experiments need: uniform packet loss, silencing one replica,
and the rotating 500-fault DoS attack.  :class:`CentralController` is
thread-safe — thread-pooled PBFT campaigns consult it concurrently.

**The campaign fabric (``repro-campaignd``).**  Fault-space exploration as
a long-running sharded service: a resident coordinator daemon
(:class:`~repro.distributed.campaignd.CampaignCoordinator`) accepts
campaign submissions over a line-oriented JSON wire protocol
(:mod:`~repro.distributed.protocol`, reference in ``doc/PROTOCOL.md``),
shards each campaign's deterministic schedule across worker nodes
(:class:`~repro.distributed.worker.CampaignWorker` — each wrapping the
local executor pools and boot-template caches), streams results back to
clients incrementally (:class:`~repro.distributed.client.CampaignClient`),
and checkpoints every completed run in the campaign's JSON-lines
:class:`~repro.core.exploration.store.ResultStore` *before* acknowledging
it — so a killed worker merely forfeits its lease, and a killed
coordinator resumes by resubmission against the same store.  Because
schedules, seeds, and records are pure functions of the campaign spec
(see :mod:`~repro.distributed.spec`), a multi-worker campaign's merged
results are bit-identical to a serial ``ExplorationEngine.explore`` run.

Run it::

    python -m repro.cli.campaignd serve --port 7070 &
    python -m repro.cli.campaignd worker --port 7070 &
    python -m repro.cli.campaign submit --port 7070 \\
        --target mini_git --store /tmp/git.jsonl --seed 7 --wait
"""

from repro.distributed.central_controller import (
    CentralController,
    PacketLossPolicy,
    Policy,
    RotatingAttackPolicy,
    SilenceNodePolicy,
)
from repro.distributed.campaignd import CampaignCoordinator
from repro.distributed.client import CampaignClient, CampaignServerError
from repro.distributed.spec import CampaignSpec, build_engine, spec_fingerprint
from repro.distributed.worker import CampaignWorker

__all__ = [
    "CampaignClient",
    "CampaignCoordinator",
    "CampaignServerError",
    "CampaignSpec",
    "CampaignWorker",
    "CentralController",
    "PacketLossPolicy",
    "Policy",
    "RotatingAttackPolicy",
    "SilenceNodePolicy",
    "build_engine",
    "spec_fingerprint",
]
