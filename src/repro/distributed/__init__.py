"""Distributed fault-injection support (§3.2, §7.3).

A central controller with a global view of a distributed system decides
whether the distributed triggers installed on individual nodes should fire.
The policies here are the ones the paper's PBFT experiments need: uniform
packet loss, silencing one replica, and the rotating 500-fault DoS attack.
"""

from repro.distributed.central_controller import (
    CentralController,
    PacketLossPolicy,
    Policy,
    RotatingAttackPolicy,
    SilenceNodePolicy,
)

__all__ = [
    "CentralController",
    "PacketLossPolicy",
    "Policy",
    "RotatingAttackPolicy",
    "SilenceNodePolicy",
]
