"""Central controller for distributed triggers.

Each node-local :class:`~repro.core.triggers.distributed.DistributedTrigger`
forwards (node, function, args) to one shared :class:`CentralController`,
which applies a :class:`Policy` with a global view of the whole system.  The
three policies provided are the ones §7.3 uses against PBFT:

* :class:`PacketLossPolicy` — drop each intercepted ``sendto``/``recvfrom``
  with a fixed probability (the degraded-network study of Figure 3);
* :class:`SilenceNodePolicy` — fail *all* communication of one replica,
  rendering it inactive;
* :class:`RotatingAttackPolicy` — inject N consecutive faults into one
  replica's communication, then move to the next replica, and so on — the
  attack aimed at confusing the reconfiguration (view change) protocol.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.injection.context import CallContext

#: The communication functions the PBFT experiments target.
DEFAULT_TARGET_FUNCTIONS: Tuple[str, ...] = ("sendto", "recvfrom")


class Policy(ABC):
    """A global injection policy."""

    @abstractmethod
    def should_inject(self, node: str, function: str, args: tuple, ctx: CallContext) -> bool:
        """Decide whether this node's call should fail."""

    def reset(self) -> None:
        """Clear accumulated state between experiments."""


@dataclass
class PacketLossPolicy(Policy):
    """Fail communication calls with a fixed probability (degraded network)."""

    probability: float = 0.0
    seed: Optional[int] = 0
    functions: Tuple[str, ...] = DEFAULT_TARGET_FUNCTIONS
    nodes: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        self._rng = Random(self.seed)

    def should_inject(self, node: str, function: str, args: tuple, ctx: CallContext) -> bool:
        if function not in self.functions:
            return False
        if self.nodes is not None and node not in self.nodes:
            return False
        return self._rng.random() < self.probability

    def reset(self) -> None:
        self._rng = Random(self.seed)


@dataclass
class SilenceNodePolicy(Policy):
    """Fail every communication call made by one node (a silenced replica)."""

    node: str = ""
    functions: Tuple[str, ...] = DEFAULT_TARGET_FUNCTIONS

    def should_inject(self, node: str, function: str, args: tuple, ctx: CallContext) -> bool:
        return node == self.node and function in self.functions

    def reset(self) -> None:  # stateless
        return


@dataclass
class RotatingAttackPolicy(Policy):
    """Inject ``burst`` consecutive faults per node, rotating through nodes."""

    nodes: Sequence[str] = ()
    burst: int = 500
    functions: Tuple[str, ...] = DEFAULT_TARGET_FUNCTIONS
    _position: int = field(default=0, init=False)
    _injected_in_burst: int = field(default=0, init=False)

    def current_victim(self) -> Optional[str]:
        if not self.nodes:
            return None
        return self.nodes[self._position % len(self.nodes)]

    def should_inject(self, node: str, function: str, args: tuple, ctx: CallContext) -> bool:
        if function not in self.functions or not self.nodes:
            return False
        victim = self.current_victim()
        if node != victim:
            return False
        self._injected_in_burst += 1
        if self._injected_in_burst >= self.burst:
            self._position += 1
            self._injected_in_burst = 0
        return True

    def reset(self) -> None:
        self._position = 0
        self._injected_in_burst = 0


class CentralController:
    """Receives trigger consultations from all nodes and applies one policy.

    Consultations arrive from every node of the distributed system — and,
    under a thread-pool campaign backend, from several PBFT cluster runs
    concurrently — so the counter/history updates and the (stateful) policy
    consultation happen under one lock.  Without it the read-modify-write
    counter updates interleave and a campaign under- or over-counts its
    injections, and burst policies like :class:`RotatingAttackPolicy` can
    skip or double-serve a victim.
    """

    def __init__(self, policy: Optional[Policy] = None) -> None:
        self.policy = policy
        self.consultations = 0
        self.injections_by_node: Dict[str, int] = {}
        self.consultations_by_node: Dict[str, int] = {}
        self.history: List[Tuple[str, str, bool]] = []
        #: Bound how much history is kept (long experiments).
        self.history_limit = 10_000
        self._lock = threading.RLock()

    def set_policy(self, policy: Optional[Policy]) -> None:
        with self._lock:
            self.policy = policy

    def should_inject(self, node: str, function: str, args: tuple, ctx: CallContext) -> bool:
        with self._lock:
            self.consultations += 1
            self.consultations_by_node[node] = self.consultations_by_node.get(node, 0) + 1
            decision = False
            if self.policy is not None:
                decision = self.policy.should_inject(node, function, args, ctx)
            if decision:
                self.injections_by_node[node] = self.injections_by_node.get(node, 0) + 1
            if len(self.history) < self.history_limit:
                self.history.append((node, function, decision))
            return decision

    def reset(self) -> None:
        with self._lock:
            if self.policy is not None:
                self.policy.reset()
            self.consultations = 0
            self.injections_by_node.clear()
            self.consultations_by_node.clear()
            self.history.clear()

    def summary(self) -> str:
        per_node = ", ".join(
            f"{node}: {count}" for node, count in sorted(self.injections_by_node.items())
        )
        return (
            f"central controller: {self.consultations} consultations, "
            f"injections by node: {{{per_node}}}"
        )


__all__ = [
    "CentralController",
    "DEFAULT_TARGET_FUNCTIONS",
    "PacketLossPolicy",
    "Policy",
    "RotatingAttackPolicy",
    "SilenceNodePolicy",
]
