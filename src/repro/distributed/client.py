"""Client-side API for the campaign fabric (what ``repro-campaign`` wraps).

A :class:`CampaignClient` is a thin, synchronous wrapper over one protocol
connection: submit a :class:`CampaignSpec`, poll status, stream results.
Every call is one request/response exchange except :meth:`tail` and
:meth:`results`, which consume a server-side stream.

The client is deliberately dumb — no retries beyond the initial dial, no
caching — because campaign durability lives on the coordinator (the result
store), not here.  A client that dies and reconnects simply resubmits the
same spec and gets the same campaign back.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.distributed.protocol import MAX_MESSAGE_BYTES, MessageStream, connect
from repro.distributed.spec import CampaignSpec


class CampaignServerError(Exception):
    """The coordinator answered a request with an error message."""


class CampaignClient:
    """One client connection to a campaign coordinator."""

    def __init__(
        self,
        address: Tuple[str, int],
        retries: int = 5,
        backoff: float = 0.05,
        max_message_bytes: int = MAX_MESSAGE_BYTES,
    ) -> None:
        self.address = address
        self._stream: MessageStream = connect(
            address, retries=retries, backoff=backoff,
            max_message_bytes=max_message_bytes,
        )
        reply = self._rpc({"type": "hello", "role": "client", "version": 1})
        if reply.get("type") != "welcome":
            raise CampaignServerError(f"unexpected hello reply: {reply!r}")
        self.server_info = reply

    # ------------------------------------------------------------------
    def _rpc(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self._stream.send(message)
        return self._checked(self._stream.recv())

    @staticmethod
    def _checked(reply: Dict[str, Any]) -> Dict[str, Any]:
        if reply.get("type") == "error":
            raise CampaignServerError(reply.get("error", "unknown server error"))
        return reply

    # ------------------------------------------------------------------
    def submit(self, spec: Union[CampaignSpec, Dict[str, Any]]) -> Dict[str, Any]:
        """Submit (or resubmit — idempotent per spec) a campaign."""
        payload = spec.to_dict() if isinstance(spec, CampaignSpec) else dict(spec)
        return self._rpc({"type": "submit", "campaign": payload})

    def status(self, campaign_id: str) -> Dict[str, Any]:
        return self._rpc({"type": "status", "campaign_id": campaign_id})

    def list_campaigns(self) -> List[Dict[str, Any]]:
        return self._rpc({"type": "list"}).get("campaigns", [])

    def cancel(self, campaign_id: str) -> Dict[str, Any]:
        return self._rpc({"type": "cancel", "campaign_id": campaign_id})

    def ping(self) -> Dict[str, Any]:
        return self._rpc({"type": "ping"})

    def shutdown_server(self) -> Dict[str, Any]:
        """Ask the coordinator to stop (admin/testing affordance)."""
        return self._rpc({"type": "shutdown"})

    # ------------------------------------------------------------------
    def results(self, campaign_id: str) -> List[Dict[str, Any]]:
        """Fetch the completed snapshot: stored records in schedule order."""
        self._stream.send({"type": "results", "campaign_id": campaign_id})
        records: List[Dict[str, Any]] = []
        while True:
            reply = self._checked(self._stream.recv())
            if reply.get("type") == "results_end":
                return records
            if reply.get("type") != "result":
                raise CampaignServerError(f"unexpected results reply: {reply!r}")
            records.append(reply["record"])

    def tail(
        self,
        campaign_id: str,
        from_seq: int = 0,
        follow: bool = True,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield fresh-result events as the campaign produces them.

        Ends when the campaign completes or is cancelled (a terminal
        ``campaign_complete`` / ``campaign_cancelled`` event is yielded
        last), or — with ``follow=False`` — after catching up to the
        present (``tail_end``).
        """
        self._stream.send({
            "type": "tail",
            "campaign_id": campaign_id,
            "from_seq": from_seq,
            "follow": follow,
        })
        while True:
            reply = self._checked(self._stream.recv(timeout=timeout))
            yield reply
            if reply.get("type") in ("campaign_complete", "campaign_cancelled", "tail_end"):
                return

    def wait(self, campaign_id: str, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the campaign leaves the running state; returns its
        final status payload."""
        for event in self.tail(campaign_id, follow=True, timeout=timeout):
            if event.get("type") in ("campaign_complete", "campaign_cancelled"):
                break
        return self.status(campaign_id)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "CampaignClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


__all__ = ["CampaignClient", "CampaignServerError"]
