"""Table 1 — bugs found automatically by LFI.

For the compiled targets (mini_bind, mini_git, the PBFT checkpoint module)
the experiment runs the fully automatic pipeline: profile the libraries,
analyze the binary, generate injection scenarios (including scenarios for
*checked* sites, which is how recovery-code bugs like the BIND
``dst_lib_init`` abort surface), run the default test suite once per
scenario, and collect the crashes/aborts/data-loss events.

For the Python-level targets the experiment mirrors what the paper did:
a random-injection campaign against MySQL and targeted distributed-trigger
scenarios against the running PBFT deployment.

Each known (planted) bug is matched against the failures the campaign
exposed, so the table reports, per bug, whether LFI found it.

The whole experiment is one scenario x workload batch per system, so it
accepts a ``parallelism=`` spec (see
:func:`repro.core.controller.executor.resolve_backend`); one execution
backend is shared by every campaign, and the library profiles come from the
process-wide artifact cache, so only the first campaign pays the profiling
cost.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.core.controller import LFIController
from repro.core.exploration.store import ResultStore
from repro.core.controller.executor import (
    ExecutionBackend,
    ParallelismSpec,
    backend_scope,
    run_requests,
)
from repro.core.controller.monitor import OutcomeKind
from repro.core.controller.report import BugCandidate
from repro.core.controller.target import WorkloadRequest
from repro.experiments.common import TableResult
from repro.targets.base import KnownBug
from repro.targets.mini_bind import MiniBindTarget
from repro.targets.mini_git import MiniGitTarget
from repro.targets.mini_mysql import MiniMySQLTarget
from repro.targets.mini_mysql.scenarios import (
    close_after_unlock_scenario,
    random_campaign_scenario,
)
from repro.targets.pbft import PBFTCheckpointTarget, PBFTTarget
from repro.targets.pbft.scenarios import checkpoint_fopen_scenario, recvfrom_failure_scenario


def _bug_matches(bug: KnownBug, candidates: List[BugCandidate]) -> bool:
    for candidate in candidates:
        if candidate.kind != bug.kind and not (
            bug.kind is OutcomeKind.CRASH and candidate.kind is OutcomeKind.CRASH
        ):
            continue
        if candidate.function == bug.library_function:
            return True
    return False


def _compiled_target_bugs(
    target,
    include_checked: bool = True,
    backend: Optional[ExecutionBackend] = None,
    exploration: bool = False,
    store: Optional[ResultStore] = None,
) -> List[BugCandidate]:
    controller = LFIController(target)
    if exploration:
        # Systematic sweep of the whole (site x errno) space instead of the
        # one-scenario-per-site pipeline; a shared *store* makes the sweep
        # resumable across interrupted experiment runs.
        report = controller.explore(
            workload="default-tests",
            include_checked=include_checked,
            parallelism=backend,
            store=store,
        )
        return report.to_bug_candidates()
    auto_report = controller.test_automatically(
        workloads=["default-tests"], include_checked=include_checked, parallelism=backend
    )
    return auto_report.bugs


def _mysql_bugs(
    random_tests: int = 40, backend: Optional[ExecutionBackend] = None
) -> List[BugCandidate]:
    """Random-injection campaign + the custom close-after-unlock trigger."""
    target = MiniMySQLTarget()
    candidates: Dict[Tuple[str, OutcomeKind], BugCandidate] = {}

    def note(function: str, outcome) -> None:
        if not outcome.is_high_impact:
            return
        key = (function, outcome.kind)
        if key not in candidates:
            candidates[key] = BugCandidate(
                target=target.name,
                function=function,
                location="",
                kind=outcome.kind,
                description=outcome.detail,
            )
        candidates[key].occurrences += 1

    # Build the whole random campaign up front (every scenario carries its
    # own seed), hand the batch to the backend, and fold the results back in
    # submission order — identical to the historical serial loop.
    functions = ("read", "close", "open", "write", "fcntl")
    requests: List[WorkloadRequest] = []
    task_functions: List[str] = []
    for index in range(random_tests):
        function = functions[index % len(functions)]
        scenario = random_campaign_scenario(function, probability=0.2, seed=index)
        for workload in ("startup", "merge-big"):
            requests.append(WorkloadRequest(workload=workload, scenario=scenario))
            task_functions.append(function)
    # The paper then wrote a call-stack / custom trigger to reproduce the
    # double-unlock crash deterministically.
    requests.append(
        WorkloadRequest(workload="merge-big", scenario=close_after_unlock_scenario(2))
    )
    task_functions.append("close")

    results = run_requests(target, requests, backend)
    for function, result in zip(task_functions, results):
        note(function, result.outcome)
    return list(candidates.values())


def _pbft_runtime_bugs(backend: Optional[ExecutionBackend] = None) -> List[BugCandidate]:
    target = PBFTTarget()
    results = run_requests(
        target,
        [
            WorkloadRequest(
                workload="simple",
                scenario=recvfrom_failure_scenario(nth=5),
                options={"requests": 5},
            ),
            WorkloadRequest(
                workload="simple",
                scenario=checkpoint_fopen_scenario(),
                options={"requests": 20},
            ),
        ],
        backend,
    )

    candidates: List[BugCandidate] = []
    if results[0].outcome.is_high_impact:
        candidates.append(
            BugCandidate(target="pbft", function="recvfrom", location="replica receive loop",
                         kind=results[0].outcome.kind, description=results[0].outcome.detail,
                         occurrences=1)
        )
    if results[1].outcome.is_high_impact:
        candidates.append(
            BugCandidate(target="pbft", function="fopen", location="replica checkpoint writer",
                         kind=results[1].outcome.kind, description=results[1].outcome.detail,
                         occurrences=1)
        )
    return candidates


def run(
    random_tests: int = 25,
    parallelism: ParallelismSpec = None,
    exploration: bool = False,
    store_dir: Optional[str] = None,
) -> TableResult:
    """Reproduce Table 1: which of the planted bugs does LFI expose?

    ``exploration=True`` drives the compiled targets through the
    fault-space exploration engine (exhaustive (site x errno) sweep with
    failure deduplication) instead of the one-scenario-per-site pipeline;
    ``store_dir`` additionally persists per-target result stores there, so
    an interrupted experiment resumes without re-running completed
    scenarios.
    """
    table = TableResult(
        name="Table 1",
        description="Bugs found automatically by LFI",
        columns=["system", "bug", "library function", "kind", "found"],
        paper_reference={"bugs_reported": 11},
    )

    def target_store(name: str) -> Optional[ResultStore]:
        if not exploration or store_dir is None:
            return None
        return ResultStore(os.path.join(store_dir, f"table1-{name}.jsonl"))

    backend, owned = backend_scope(parallelism)
    try:
        findings: Dict[str, List[BugCandidate]] = {
            "mini_bind": _compiled_target_bugs(
                MiniBindTarget(), backend=backend, exploration=exploration,
                store=target_store("mini_bind"),
            ),
            "mini_git": _compiled_target_bugs(
                MiniGitTarget(), backend=backend, exploration=exploration,
                store=target_store("mini_git"),
            ),
            "mini_mysql": _mysql_bugs(random_tests, backend=backend),
            "pbft": _pbft_runtime_bugs(backend=backend)
            + _compiled_target_bugs(
                PBFTCheckpointTarget(), backend=backend, exploration=exploration,
                store=target_store("pbft_checkpoint"),
            ),
        }
    finally:
        if owned:
            backend.close()

    all_known: List[KnownBug] = []
    all_known.extend(MiniBindTarget.known_bugs)
    all_known.extend(MiniGitTarget.known_bugs)
    all_known.extend(MiniMySQLTarget.known_bugs)
    all_known.extend(PBFTTarget.known_bugs)

    found_count = 0
    for bug in all_known:
        system_key = bug.system if bug.system in findings else "pbft"
        found = _bug_matches(bug, findings.get(system_key, []))
        found_count += int(found)
        table.add_row(
            system=bug.system,
            bug=bug.identifier,
            **{"library function": bug.library_function},
            kind=bug.kind.value,
            found=found,
        )
    table.add_note(
        f"{found_count} of {len(all_known)} planted bugs found "
        f"(the paper reports 11 previously unknown bugs across the four systems)"
    )
    return table


__all__ = ["run"]
