"""Shared result container and formatting for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class TableResult:
    """One reproduced table or figure."""

    name: str
    description: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: The corresponding values reported in the paper, for EXPERIMENTS.md.
    paper_reference: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
        }

    def __str__(self) -> str:
        return format_table(self)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(result: TableResult, max_width: int = 40) -> str:
    """Render a TableResult as an aligned text table."""
    columns = result.columns
    header = [column[:max_width] for column in columns]
    body: List[List[str]] = []
    for row in result.rows:
        body.append([_format_cell(row.get(column, ""))[:max_width] for column in columns])
    widths = [
        max(len(header[index]), *(len(row[index]) for row in body)) if body else len(header[index])
        for index in range(len(columns))
    ]
    lines = [f"== {result.name} — {result.description} =="]
    lines.append("  ".join(header[index].ljust(widths[index]) for index in range(len(columns))))
    lines.append("  ".join("-" * widths[index] for index in range(len(columns))))
    for row in body:
        lines.append("  ".join(row[index].ljust(widths[index]) for index in range(len(columns))))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> Optional[float]:
    cleaned = [value for value in values if value and value > 0]
    if not cleaned:
        return None
    product = 1.0
    for value in cleaned:
        product *= value
    return product ** (1.0 / len(cleaned))


__all__ = ["TableResult", "format_table", "geometric_mean"]
