"""§7.3 — PBFT behaviour under two simulated DoS attacks.

1. **Silencing one replica**: all of one backup's communication fails.  The
   protocol still makes progress with the remaining 2f+1 replicas, and end-
   to-end performance actually *improves* slightly (less communication to
   process) — the paper measured ~12%.
2. **Rotating attack**: 500 consecutive faults are injected into one
   replica's communication, then the next replica's, and so on, aiming to
   confuse the view-change protocol.  Throughput drops by a factor of ~2.2x
   in the paper.
"""

from __future__ import annotations

from repro.core.controller.target import WorkloadRequest
from repro.experiments.common import TableResult
from repro.targets.pbft import PBFTTarget
from repro.targets.pbft.scenarios import rotating_attack_experiment, silence_replica_experiment


def _throughput(target: PBFTTarget, scenario=None, controller=None, requests: int = 30,
                trials: int = 3) -> float:
    values = []
    for _ in range(trials):
        options = {"requests": requests}
        if controller is not None:
            options["shared_objects"] = {"controller": controller}
            controller.reset()
        result = target.run(WorkloadRequest(workload="simple", scenario=scenario, options=options))
        values.append(result.stats["throughput"])
    return sum(values) / len(values)


def run(requests: int = 30, trials: int = 3, burst: int = 100) -> TableResult:
    """Reproduce the two DoS scenarios of §7.3."""
    target = PBFTTarget()
    table = TableResult(
        name="Section 7.3 (DoS)",
        description="PBFT end-to-end performance under two simulated DoS attacks",
        columns=["attack", "throughput (req/s)", "relative to baseline"],
        paper_reference={"silence_one_replica": 1.12, "rotating_attack_drop": 2.2},
    )

    baseline = _throughput(target, requests=requests, trials=trials)
    table.add_row(
        attack="Baseline (no attack)",
        **{"throughput (req/s)": baseline, "relative to baseline": 1.0},
    )

    scenario, controller = silence_replica_experiment("replica3")
    silenced = _throughput(target, scenario, controller, requests=requests, trials=trials)
    table.add_row(
        attack="Silence one replica (all its communication fails)",
        **{
            "throughput (req/s)": silenced,
            "relative to baseline": silenced / baseline if baseline else 0.0,
        },
    )

    scenario, controller = rotating_attack_experiment(burst=burst)
    rotating = _throughput(target, scenario, controller, requests=requests, trials=trials)
    table.add_row(
        attack=f"Rotating attack ({burst} consecutive faults per replica)",
        **{
            "throughput (req/s)": rotating,
            "relative to baseline": rotating / baseline if baseline else 0.0,
        },
    )
    table.add_note(
        "the paper reports a ~12% improvement when one replica is silenced and a 2.2x "
        "throughput drop for the rotating attack (500-fault bursts)"
    )
    return table


__all__ = ["run"]
