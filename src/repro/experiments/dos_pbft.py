"""§7.3 — PBFT behaviour under two simulated DoS attacks.

1. **Silencing one replica**: all of one backup's communication fails.  The
   protocol still makes progress with the remaining 2f+1 replicas, and end-
   to-end performance actually *improves* slightly (less communication to
   process) — the paper measured ~12%.
2. **Rotating attack**: 500 consecutive faults are injected into one
   replica's communication, then the next replica's, and so on, aiming to
   confuse the view-change protocol.  Throughput drops by a factor of ~2.2x
   in the paper.

Each trial builds its own central controller (the policies are
deterministic, so a fresh controller is equivalent to the old shared-then-
reset one), which makes the trial grid an independent batch a
``parallelism=`` spec can fan out over an execution backend.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.controller.executor import (
    ExecutionBackend,
    ParallelismSpec,
    backend_scope,
    run_requests,
)
from repro.core.controller.target import WorkloadRequest
from repro.experiments.common import TableResult
from repro.targets.pbft import PBFTTarget
from repro.targets.pbft.scenarios import rotating_attack_experiment, silence_replica_experiment


def _attack_request(attack: Optional[str], requests: int, burst: int) -> WorkloadRequest:
    """Build one trial's request with a fresh scenario + controller pair."""
    if attack is None:
        return WorkloadRequest(workload="simple", options={"requests": requests})
    if attack == "silence":
        scenario, controller = silence_replica_experiment("replica3")
    elif attack == "rotating":
        scenario, controller = rotating_attack_experiment(burst=burst)
    else:  # pragma: no cover - internal misuse
        raise ValueError(f"unknown attack {attack!r}")
    return WorkloadRequest(
        workload="simple",
        scenario=scenario,
        options={"requests": requests, "shared_objects": {"controller": controller}},
    )


def _throughput(
    target: PBFTTarget,
    attack: Optional[str],
    backend: ExecutionBackend,
    requests: int = 30,
    trials: int = 3,
    burst: int = 100,
) -> float:
    results = run_requests(
        target, [_attack_request(attack, requests, burst) for _ in range(trials)], backend
    )
    values: List[float] = [result.stats["throughput"] for result in results]
    return sum(values) / len(values)


def run(
    requests: int = 30,
    trials: int = 3,
    burst: int = 100,
    parallelism: ParallelismSpec = None,
) -> TableResult:
    """Reproduce the two DoS scenarios of §7.3."""
    target = PBFTTarget()
    table = TableResult(
        name="Section 7.3 (DoS)",
        description="PBFT end-to-end performance under two simulated DoS attacks",
        columns=["attack", "throughput (req/s)", "relative to baseline"],
        paper_reference={"silence_one_replica": 1.12, "rotating_attack_drop": 2.2},
    )

    backend, owned = backend_scope(parallelism)
    try:
        baseline = _throughput(target, None, backend, requests=requests, trials=trials)
        silenced = _throughput(target, "silence", backend, requests=requests, trials=trials)
        rotating = _throughput(
            target, "rotating", backend, requests=requests, trials=trials, burst=burst
        )
    finally:
        if owned:
            backend.close()

    table.add_row(
        attack="Baseline (no attack)",
        **{"throughput (req/s)": baseline, "relative to baseline": 1.0},
    )
    table.add_row(
        attack="Silence one replica (all its communication fails)",
        **{
            "throughput (req/s)": silenced,
            "relative to baseline": silenced / baseline if baseline else 0.0,
        },
    )
    table.add_row(
        attack=f"Rotating attack ({burst} consecutive faults per replica)",
        **{
            "throughput (req/s)": rotating,
            "relative to baseline": rotating / baseline if baseline else 0.0,
        },
    )
    table.add_note(
        "the paper reports a ~12% improvement when one replica is silenced and a 2.2x "
        "throughput drop for the rotating attack (500-fault bursts)"
    )
    return table


__all__ = ["run"]
