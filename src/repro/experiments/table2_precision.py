"""Table 2 — precision of three triggers targeting the MySQL close bug.

Runs the merge-big workload repeatedly under each of the three injection
scenarios from §7.1 and reports how often the double-unlock bug was
activated (the paper's definition of precision for this experiment).
"""

from __future__ import annotations

from repro.core.controller.target import WorkloadRequest
from repro.experiments.common import TableResult
from repro.targets.mini_mysql import MiniMySQLTarget
from repro.targets.mini_mysql.scenarios import (
    close_after_unlock_scenario,
    random_close_in_module_scenario,
    random_close_scenario,
)


def _precision(target: MiniMySQLTarget, scenario_factory, runs: int) -> float:
    activations = 0
    for index in range(runs):
        scenario = scenario_factory(index)
        result = target.run(WorkloadRequest(workload="merge-big", scenario=scenario))
        if target.outcome_is_double_unlock(result.outcome):
            activations += 1
    return activations / runs if runs else 0.0


def run(runs: int = 100, probability: float = 0.1, distance: int = 2) -> TableResult:
    """Reproduce Table 2 with *runs* executions of merge-big per scenario."""
    target = MiniMySQLTarget()
    table = TableResult(
        name="Table 2",
        description="Precision of three triggers targeting the MySQL close bug",
        columns=["trigger scenario", "precision"],
        paper_reference={
            "Random (10%)": 0.16,
            "Random (10%) within bug's file": 0.45,
            "Close after mutex unlock": 1.00,
        },
    )

    random_precision = _precision(
        target, lambda index: random_close_scenario(probability, seed=index), runs
    )
    in_file_precision = _precision(
        target, lambda index: random_close_in_module_scenario(probability, seed=index), runs
    )
    custom_precision = _precision(
        target, lambda index: close_after_unlock_scenario(distance), max(runs // 5, 1)
    )

    table.add_row(**{"trigger scenario": f"Random ({probability:.0%})", "precision": random_precision})
    table.add_row(
        **{
            "trigger scenario": f"Random ({probability:.0%}) within bug's file",
            "precision": in_file_precision,
        }
    )
    table.add_row(
        **{"trigger scenario": "Close after mutex unlock", "precision": custom_precision}
    )
    table.add_note(
        "precision = fraction of merge-big runs in which the double-unlock abort was activated"
    )
    return table


__all__ = ["run"]
