"""Table 5 — running time of the Apache analog with 0-5 triggers installed.

The gate is put in observe-only mode (§7.4: "we did not actually inject
faults, but allowed the triggers to pass the calls through"), so the numbers
isolate the cost of evaluating increasingly long trigger conjunctions on
every intercepted ``apr_file_read``.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import TableResult
from repro.targets.mini_apache import MiniApacheTarget
from repro.targets.mini_apache.scenarios import overhead_scenario
from repro.workloads.ab import run_apache_bench


def run(requests: int = 300, repeats: int = 3, max_triggers: int = 5) -> TableResult:
    """Reproduce Table 5 (static HTML and PHP workloads, 0-5 triggers)."""
    target = MiniApacheTarget()
    table = TableResult(
        name="Table 5",
        description="Apache running time under the LFI trigger mechanism (observe-only)",
        columns=["configuration", "static HTML (s)", "PHP (s)",
                 "static overhead", "PHP overhead", "triggerings/s (static)"],
        paper_reference={
            "baseline_static": 0.179, "baseline_php": 1.562,
            "five_triggers_static": 0.188, "five_triggers_php": 1.589,
        },
    )

    def measure(page: str, trigger_count: Optional[int]) -> tuple:
        scenario = overhead_scenario(trigger_count) if trigger_count else None
        best = None
        triggerings = 0.0
        for _ in range(repeats):
            result = run_apache_bench(
                target, page=page, requests=requests, scenario=scenario, observe_only=True
            )
            if best is None or result.wall_seconds < best:
                best = result.wall_seconds
                triggerings = result.triggerings_per_second
        return best or 0.0, triggerings

    baseline_static, _ = measure("static", None)
    baseline_php, _ = measure("php", None)
    table.add_row(
        configuration="Baseline (no LFI)",
        **{
            "static HTML (s)": baseline_static,
            "PHP (s)": baseline_php,
            "static overhead": 0.0,
            "PHP overhead": 0.0,
            "triggerings/s (static)": 0.0,
        },
    )
    for count in range(1, max_triggers + 1):
        static_seconds, triggerings = measure("static", count)
        php_seconds, _ = measure("php", count)
        table.add_row(
            configuration=f"{count} trigger{'s' if count > 1 else ''}",
            **{
                "static HTML (s)": static_seconds,
                "PHP (s)": php_seconds,
                "static overhead": static_seconds / baseline_static - 1 if baseline_static else 0.0,
                "PHP overhead": php_seconds / baseline_php - 1 if baseline_php else 0.0,
                "triggerings/s (static)": triggerings,
            },
        )
    table.add_note(
        f"each configuration serves {requests} requests; best of {repeats} repeats per cell"
    )
    return table


__all__ = ["run"]
