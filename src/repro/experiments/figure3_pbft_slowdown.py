"""Figure 3 — PBFT throughput slowdown under progressively worse packet loss.

Faults are injected into ``sendto``/``recvfrom`` with a configurable
probability through a distributed trigger consulting the central controller
(a degraded — but not malicious — network).  Throughput is measured on the
simulated clock, and the slowdown factor is relative to the baseline run
without LFI interference, averaged over several trials as in the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.controller.target import WorkloadRequest
from repro.experiments.common import TableResult
from repro.targets.pbft import PBFTTarget
from repro.targets.pbft.scenarios import packet_loss_experiment

#: The x axis of Figure 3.
DEFAULT_LOSS_PROBABILITIES = (0.0, 0.1, 0.8, 0.9, 0.95, 0.99)


def _run_once(target: PBFTTarget, probability: Optional[float], seed: int, requests: int):
    if probability is None:
        return target.run(WorkloadRequest(workload="simple", options={"requests": requests}))
    scenario, controller = packet_loss_experiment(probability, seed=seed)
    return target.run(
        WorkloadRequest(
            workload="simple",
            scenario=scenario,
            options={"requests": requests, "shared_objects": {"controller": controller}},
        )
    )


def run(
    requests: int = 30,
    trials: int = 3,
    probabilities: Sequence[float] = DEFAULT_LOSS_PROBABILITIES,
) -> TableResult:
    """Reproduce Figure 3 (slowdown factor vs. packet-loss probability)."""
    target = PBFTTarget()
    table = TableResult(
        name="Figure 3",
        description="PBFT throughput slowdown under progressively worsening network conditions",
        columns=["loss probability", "slowdown factor", "state transfers", "view changes"],
        paper_reference={"max_slowdown_at_p99": 4.17, "trials": 7},
    )

    baseline_seconds = []
    for trial in range(trials):
        result = _run_once(target, None, trial, requests)
        baseline_seconds.append(result.stats["simulated_seconds"])
    baseline = sum(baseline_seconds) / len(baseline_seconds)

    for probability in probabilities:
        times, transfers, view_changes = [], 0, 0
        for trial in range(trials):
            result = _run_once(target, probability, trial, requests)
            times.append(result.stats["simulated_seconds"])
            transfers += result.stats["state_transfers"]
            view_changes += result.stats["view_changes"]
        slowdown = (sum(times) / len(times)) / baseline if baseline else 0.0
        table.add_row(
            **{
                "loss probability": probability,
                "slowdown factor": slowdown,
                "state transfers": transfers,
                "view changes": view_changes,
            }
        )
    table.add_note(
        f"{requests} requests per run, {trials} trials per point, simulated-clock throughput; "
        "the paper reports a gradual degradation reaching 4.17x at 99% loss"
    )
    return table


__all__ = ["DEFAULT_LOSS_PROBABILITIES", "run"]
