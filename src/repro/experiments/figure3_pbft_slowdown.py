"""Figure 3 — PBFT throughput slowdown under progressively worse packet loss.

Faults are injected into ``sendto``/``recvfrom`` with a configurable
probability through a distributed trigger consulting the central controller
(a degraded — but not malicious — network).  Throughput is measured on the
simulated clock, and the slowdown factor is relative to the baseline run
without LFI interference, averaged over several trials as in the paper.

Every trial builds a fresh cluster and a fresh central controller, so the
(probability x trial) grid is an independent batch: a ``parallelism=`` spec
hands it to an execution backend, with per-trial seeds fixed up front so
results are identical regardless of scheduling.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.controller.executor import ParallelismSpec, run_requests
from repro.core.controller.target import WorkloadRequest
from repro.experiments.common import TableResult
from repro.targets.pbft import PBFTTarget
from repro.targets.pbft.scenarios import packet_loss_workload_request

#: The x axis of Figure 3.
DEFAULT_LOSS_PROBABILITIES = (0.0, 0.1, 0.8, 0.9, 0.95, 0.99)


def _trial_request(probability: Optional[float], seed: int, requests: int) -> WorkloadRequest:
    if probability is None:
        return WorkloadRequest(workload="simple", options={"requests": requests})
    return packet_loss_workload_request(probability, seed=seed, requests=requests)


def run(
    requests: int = 30,
    trials: int = 3,
    probabilities: Sequence[float] = DEFAULT_LOSS_PROBABILITIES,
    parallelism: ParallelismSpec = None,
) -> TableResult:
    """Reproduce Figure 3 (slowdown factor vs. packet-loss probability)."""
    target = PBFTTarget()
    table = TableResult(
        name="Figure 3",
        description="PBFT throughput slowdown under progressively worsening network conditions",
        columns=["loss probability", "slowdown factor", "state transfers", "view changes"],
        paper_reference={"max_slowdown_at_p99": 4.17, "trials": 7},
    )

    # One flat batch: `trials` baseline runs, then `trials` runs per point.
    points: list = [None] + list(probabilities)
    results = run_requests(
        target,
        [
            _trial_request(probability, seed=trial, requests=requests)
            for probability in points
            for trial in range(trials)
        ],
        parallelism,
    )

    grouped = [results[index * trials:(index + 1) * trials] for index in range(len(points))]
    baseline_seconds = [result.stats["simulated_seconds"] for result in grouped[0]]
    baseline = sum(baseline_seconds) / len(baseline_seconds)

    for probability, group in zip(points[1:], grouped[1:]):
        times = [result.stats["simulated_seconds"] for result in group]
        transfers = sum(result.stats["state_transfers"] for result in group)
        view_changes = sum(result.stats["view_changes"] for result in group)
        slowdown = (sum(times) / len(times)) / baseline if baseline else 0.0
        table.add_row(
            **{
                "loss probability": probability,
                "slowdown factor": slowdown,
                "state transfers": transfers,
                "view changes": view_changes,
            }
        )
    table.add_note(
        f"{requests} requests per run, {trials} trials per point, simulated-clock throughput; "
        "the paper reports a gradual degradation reaching 4.17x at 99% loss"
    )
    return table


__all__ = ["DEFAULT_LOSS_PROBABILITIES", "run"]
