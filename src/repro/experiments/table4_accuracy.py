"""Table 4 — accuracy of the call-site analyzer.

For every (system, libc function) pair the paper lists, the analyzer's
verdict for each call site is compared against the ground truth embedded in
the target sources (the ``//@check:`` annotations, standing in for the
paper's manual source inspection).  The confusion matrix follows the paper:

* TN — analyzer says "checked" and the code does check;
* TP — analyzer says "not checked" and the code indeed does not check;
* FP — analyzer says "not checked" but the code checks (e.g. the check is
  hidden in a helper function — the BIND ``open`` case);
* FN — analyzer says "checked" but the code does not check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.analysis.analyzer import CallSiteAnalyzer
from repro.experiments.common import TableResult
from repro.targets.base import CompiledTarget
from repro.targets.mini_bind import MiniBindTarget
from repro.targets.mini_git import MiniGitTarget
from repro.targets.pbft import PBFTCheckpointTarget


@dataclass
class AccuracyRow:
    system: str
    function: str
    true_positive: int = 0
    true_negative: int = 0
    false_positive: int = 0
    false_negative: int = 0

    @property
    def correct(self) -> int:
        return self.true_positive + self.true_negative

    @property
    def total(self) -> int:
        return self.correct + self.false_positive + self.false_negative

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


def measure_target(target: CompiledTarget) -> List[AccuracyRow]:
    """Compute the confusion matrix per analyzed function for one target."""
    binary = target.binary()
    analyzer = CallSiteAnalyzer()
    report = analyzer.analyze(binary, functions=list(target.accuracy_functions))

    verdicts: Dict[Tuple[str, int], str] = {}
    for function, classification in report.classifications.items():
        for site in classification.all_sites():
            if site.site.source is not None:
                verdicts[(function, site.site.source.line)] = site.category

    rows: Dict[str, AccuracyRow] = {
        function: AccuracyRow(system=target.name, function=function)
        for function in target.accuracy_functions
    }
    for entry in target.ground_truth():
        row = rows.get(entry.function)
        if row is None:
            continue
        category = verdicts.get((entry.function, entry.line))
        analyzer_says_checked = category in ("checked", "partial")
        if analyzer_says_checked and entry.checked:
            row.true_negative += 1
        elif not analyzer_says_checked and not entry.checked:
            row.true_positive += 1
        elif not analyzer_says_checked and entry.checked:
            row.false_positive += 1
        else:
            row.false_negative += 1
    return [rows[function] for function in target.accuracy_functions]


def run() -> TableResult:
    """Reproduce Table 4 across the three compiled targets."""
    table = TableResult(
        name="Table 4",
        description="Call-site analysis accuracy (no source, no documentation)",
        columns=["system", "function", "TP+TN", "FN", "FP", "accuracy"],
        paper_reference={
            "BIND/open": 0.83,
            "all_other_rows": 1.00,
        },
    )
    for target in (MiniBindTarget(), MiniGitTarget(), PBFTCheckpointTarget()):
        for row in measure_target(target):
            if row.total == 0:
                continue
            table.add_row(
                system=row.system,
                function=row.function,
                **{"TP+TN": row.correct},
                FN=row.false_negative,
                FP=row.false_positive,
                accuracy=row.accuracy,
            )
    table.add_note(
        "ground truth comes from //@check: annotations in the target sources; the interprocedural "
        "open check in mini_bind is the engineered false positive mirroring the paper's one FP"
    )
    return table


__all__ = ["AccuracyRow", "measure_target", "run"]
