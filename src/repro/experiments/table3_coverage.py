"""Table 3 — automated improvement in recovery-code coverage.

Methodology, mirroring §7.1:

1. run each target's default test suite and measure line coverage (gcov
   analog), identifying the recovery regions guarded by error-return checks;
2. run the call-site analyzer, trim its scenarios to the library functions
   "known to fail on occasion" (the paper used ~25; we use the per-target
   coverage function lists), including the *checked* sites — those are the
   ones with recovery code to exercise;
3. re-run the same test suite once per scenario with the fault injected and
   merge the coverage;
4. report the additional recovery code covered, the additional lines, and
   the total coverage with and without LFI.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.analysis.analyzer import CallSiteAnalyzer
from repro.core.controller.executor import (
    ExecutionBackend,
    ParallelismSpec,
    backend_scope,
    run_requests,
)
from repro.core.controller.target import WorkloadRequest
from repro.core.exploration.space import enumerate_fault_space, priority_order
from repro.core.exploration.strategy import ExplorationStrategy, ProbeFeedback
from repro.core.profiler.spec_profiles import combined_reference_profile
from repro.coverage.recovery import identify_recovery_regions
from repro.coverage.report import CoverageComparison, build_report, compare_coverage
from repro.coverage.tracker import CoverageTracker
from repro.experiments.common import TableResult
from repro.targets.base import CompiledTarget
from repro.targets.mini_bind.target import COVERAGE_FUNCTIONS as BIND_FUNCTIONS
from repro.targets.mini_bind.target import MiniBindTarget
from repro.targets.mini_git.target import COVERAGE_FUNCTIONS as GIT_FUNCTIONS
from repro.targets.mini_git.target import MiniGitTarget


def _run_suite_with_coverage(target: CompiledTarget) -> CoverageTracker:
    result = target.run(
        WorkloadRequest(workload="default-tests", scenario=None, collect_coverage=True)
    )
    tracker: CoverageTracker = result.stats["coverage"]
    return tracker


def measure_target(
    target: CompiledTarget,
    functions: Sequence[str],
    backend: Optional[ExecutionBackend] = None,
    strategy: Optional[ExplorationStrategy] = None,
    round_log: Optional[List[Dict[str, Any]]] = None,
) -> Tuple[CoverageComparison, int]:
    """Return (coverage comparison, number of scenarios run) for one target.

    The per-scenario suite re-runs are an independent batch; *backend*
    (serial when ``None``) executes them, and coverage is merged in
    submission order so the comparison is schedule-independent.

    When *strategy* is given, the scenarios come from the fault-space
    exploration subsystem instead of the analyzer's default
    one-scenario-per-site generation: the full (site x errno) space is
    enumerated, priority ordered, and pruned by the strategy — e.g.
    ``ExhaustiveStrategy()`` sweeps every errno of every site into the
    coverage merge, ``BoundarySampleStrategy()`` keeps the errno-range
    edges.  An *adaptive* strategy (``CoverageGuidedStrategy``) is driven
    round by round instead: each round's recovery-region deltas feed the
    planner, and per-round coverage growth is appended to *round_log* (one
    dict per round: probes run, new recovery lines, cumulative recovery
    fraction).
    """
    binary = target.binary()
    profile = combined_reference_profile()
    recovery = identify_recovery_regions(binary, profile, functions=list(functions))

    baseline_tracker = _run_suite_with_coverage(target)
    baseline_report = build_report(binary, baseline_tracker, recovery, "test suite")

    analyzer = CallSiteAnalyzer(profile=profile)
    analysis = analyzer.analyze(binary, functions=list(functions))
    merged = CoverageTracker()
    merged.merge(baseline_tracker)
    scenario_count = 0
    if strategy is not None and getattr(strategy, "adaptive", False):
        scenario_count = _merge_adaptive_rounds(
            target, binary, strategy, analysis, profile, recovery,
            merged, backend, round_log,
        )
    else:
        if strategy is not None:
            points = enumerate_fault_space(
                analysis.classifications.values(),
                profile,
                include_partial=True,
                include_checked=True,
            )
            scenarios = [
                point.scenario() for point in strategy.select(priority_order(points))
            ]
        else:
            scenarios = analyzer.generate_scenarios(
                analysis, include_partial=True, include_checked=True
            )
        results = run_requests(
            target,
            [
                WorkloadRequest(
                    workload="default-tests", scenario=scenario, collect_coverage=True
                )
                for scenario in scenarios
            ],
            backend,
        )
        for result in results:
            merged.merge(result.stats["coverage"])
        scenario_count = len(scenarios)

    lfi_report = build_report(binary, merged, recovery, "test suite + LFI")
    return compare_coverage(baseline_report, lfi_report), scenario_count


def _merge_adaptive_rounds(
    target: CompiledTarget,
    binary,
    strategy: ExplorationStrategy,
    analysis,
    profile,
    recovery,
    merged: CoverageTracker,
    backend: Optional[ExecutionBackend],
    round_log: Optional[List[Dict[str, Any]]],
) -> int:
    """Drive an adaptive strategy round by round over the suite re-runs.

    The feedback channel is the same recovery-region delta the exploration
    engine computes (lines of :func:`identify_recovery_regions`'s universe
    each probe covered), so the table3 harness exercises the planner the
    way a campaign would.  Returns the number of scenarios run; per-round
    growth lands in *round_log* when given.
    """
    points = enumerate_fault_space(
        analysis.classifications.values(),
        profile,
        include_partial=True,
        include_checked=True,
    )
    frontier = priority_order(points)
    universe = frozenset(recovery.all_lines())
    session = strategy.session()
    covered: set = set()
    feedback: List[ProbeFeedback] = []
    scenario_count = 0
    while True:
        keys = session.propose(frontier, feedback)
        feedback = []
        if not keys:
            return scenario_count
        by_key = {point.key: point for point in frontier}
        round_points = [by_key[key] for key in keys]
        chosen = set(keys)
        frontier = [point for point in frontier if point.key not in chosen]
        results = run_requests(
            target,
            [
                WorkloadRequest(
                    workload="default-tests",
                    scenario=point.scenario(),
                    collect_coverage=True,
                )
                for point in round_points
            ],
            backend,
        )
        new_lines = 0
        for point, result in zip(round_points, results):
            tracker = result.stats["coverage"]
            merged.merge(tracker)
            lines = {
                f"{file}:{line}"
                for file, line in tracker.lines_covered_of(binary, universe)
            }
            new_lines += len(lines - covered)
            covered |= lines
            feedback.append(
                ProbeFeedback(key=point.key, recovery_lines=tuple(sorted(lines)))
            )
        scenario_count += len(round_points)
        if round_log is not None:
            round_log.append({
                "round": len(round_log) + 1,
                "probes": len(round_points),
                "new_recovery_lines": new_lines,
                "recovery_fraction": (
                    round(len(covered) / len(universe), 4) if universe else 0.0
                ),
            })


def run(
    parallelism: ParallelismSpec = None,
    strategy: Optional[ExplorationStrategy] = None,
) -> TableResult:
    """Reproduce Table 3 for the Git and BIND analogs.

    *strategy* (optional) selects scenarios via the fault-space exploration
    subsystem — see :func:`measure_target`.
    """
    table = TableResult(
        name="Table 3",
        description="Automated improvement in recovery-code coverage",
        columns=[
            "system",
            "additional recovery code covered",
            "additional LOC covered by LFI",
            "total coverage without LFI",
            "total coverage with LFI",
            "scenarios",
        ],
        paper_reference={
            # The paper's published Table 3 totals.  The per-target
            # ``*_additional_recovery`` fractions are *measured* and filled
            # in below — they used to be hardcoded constants (0.35/0.60)
            # that silently drifted from what the harness actually ran.
            "git_total_without": 0.787,
            "git_total_with": 0.796,
            "bind_total_without": 0.612,
            "bind_total_with": 0.618,
        },
    )
    targets: List[Tuple[CompiledTarget, Sequence[str]]] = [
        (MiniGitTarget(), GIT_FUNCTIONS),
        (MiniBindTarget(), BIND_FUNCTIONS),
    ]
    backend, owned = backend_scope(parallelism)
    try:
        measurements = []
        for target, functions in targets:
            round_log: List[Dict[str, Any]] = []
            comparison, scenario_count = measure_target(
                target, functions, backend=backend, strategy=strategy,
                round_log=round_log,
            )
            measurements.append((target, comparison, scenario_count, round_log))
    finally:
        if owned:
            backend.close()
    for target, comparison, scenario_count, round_log in measurements:
        table.add_row(
            system=target.name,
            **{
                "additional recovery code covered": comparison.additional_recovery_fraction,
                "additional LOC covered by LFI": comparison.additional_lines_covered,
                "total coverage without LFI": comparison.baseline.total_coverage,
                "total coverage with LFI": comparison.with_lfi.total_coverage,
            },
            scenarios=scenario_count,
        )
        reference_key = target.name.replace("mini_", "") + "_additional_recovery"
        table.paper_reference[reference_key] = round(
            comparison.additional_recovery_fraction, 4
        )
        if round_log:
            growth = ", ".join(
                f"r{entry['round']}: {entry['probes']} probes "
                f"+{entry['new_recovery_lines']} lines "
                f"({entry['recovery_fraction']:.0%} of recovery regions)"
                for entry in round_log
            )
            table.add_note(f"{target.name} adaptive round growth — {growth}")
    table.add_note(
        "coverage is measured over source lines of the compiled analogs; recovery regions are "
        "identified automatically from error-return checks instead of manual lcov inspection"
    )
    table.add_note(
        "paper-published additional-recovery figures: git 0.35, bind 0.60 — the "
        "reference block reports this run's measured fractions instead"
    )
    return table


__all__ = ["measure_target", "run"]
