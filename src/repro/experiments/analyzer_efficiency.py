"""§7.2 — efficiency of the call-site analyzer.

The paper reports that analysis takes between 1 and 10 seconds per target
and scales with the number of machine instructions and call sites.  The
harness times the analyzer over every compiled target (and over the
synthetic libc, the largest binary in the workspace) and reports
sites/instructions/time so the scaling trend is visible.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.analysis.analyzer import CallSiteAnalyzer
from repro.core.profiler.cache import cached_library_binary
from repro.experiments.common import TableResult
from repro.isa.binary import BinaryImage
from repro.targets.mini_bind import MiniBindTarget
from repro.targets.mini_git import MiniGitTarget
from repro.targets.pbft import PBFTCheckpointTarget


def _binaries() -> List[Tuple[str, BinaryImage]]:
    binaries: List[Tuple[str, BinaryImage]] = []
    for target in (MiniBindTarget(), MiniGitTarget(), PBFTCheckpointTarget()):
        binaries.append((target.name, target.binary()))
    # The synthetic libc comes from the process-wide artifact cache: only
    # the analysis itself (the quantity being measured) runs per repeat.
    binaries.append(("libc.so (synthetic)", cached_library_binary("libc")))
    return binaries


def run(repeats: int = 3) -> TableResult:
    """Measure analyzer running time per target binary."""
    table = TableResult(
        name="Section 7.2 (efficiency)",
        description="Call-site analyzer running time per target",
        columns=["binary", "instructions", "call sites analyzed", "analysis time (ms)",
                 "time per site (ms)"],
        paper_reference={"range_seconds": (1, 10), "scales_with": "program size and call sites"},
    )
    analyzer = CallSiteAnalyzer()
    for name, binary in _binaries():
        best_ms = None
        sites = 0
        for _ in range(repeats):
            report = analyzer.analyze(binary)
            milliseconds = report.analysis_seconds * 1000.0
            sites = report.call_sites_analyzed
            if best_ms is None or milliseconds < best_ms:
                best_ms = milliseconds
        best_ms = best_ms or 0.0
        table.add_row(
            binary=name,
            instructions=len(binary),
            **{
                "call sites analyzed": sites,
                "analysis time (ms)": best_ms,
                "time per site (ms)": best_ms / sites if sites else 0.0,
            },
        )
    table.add_note(
        "absolute times are milliseconds rather than the paper's seconds (the synthetic binaries "
        "are smaller than BIND); the scaling with call-site count is the comparable property"
    )
    return table


__all__ = ["run"]
