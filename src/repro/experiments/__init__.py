"""Experiment harnesses regenerating every table and figure of the paper.

Each module exposes a ``run(...)`` function returning a
:class:`~repro.experiments.common.TableResult` whose rows mirror the paper's
presentation; the ``benchmarks/`` directory wraps these in pytest-benchmark
targets, and ``EXPERIMENTS.md`` records paper-vs-measured values.

| module | reproduces |
|--------|------------|
| :mod:`repro.experiments.table1_bugs` | Table 1 — bugs found automatically |
| :mod:`repro.experiments.table2_precision` | Table 2 — trigger precision for the MySQL close bug |
| :mod:`repro.experiments.table3_coverage` | Table 3 — recovery-code coverage improvement |
| :mod:`repro.experiments.table4_accuracy` | Table 4 — call-site analysis accuracy |
| :mod:`repro.experiments.table5_apache_overhead` | Table 5 — Apache trigger overhead |
| :mod:`repro.experiments.table6_mysql_overhead` | Table 6 — MySQL trigger overhead |
| :mod:`repro.experiments.figure3_pbft_slowdown` | Figure 3 — PBFT slowdown under packet loss |
| :mod:`repro.experiments.dos_pbft` | §7.3 — PBFT DoS study |
| :mod:`repro.experiments.analyzer_efficiency` | §7.2 — analyzer running time |
| :mod:`repro.experiments.mini_bind_campaign` | single-target BIND campaign/exploration driver |
"""

from repro.experiments.common import TableResult, format_table

__all__ = ["TableResult", "format_table"]
