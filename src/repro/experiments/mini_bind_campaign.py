"""mini_bind campaign harness — the BIND analog through the full dataplane.

The table experiments sweep all four systems at once; this module is the
single-target entry point for the BIND analog, mirroring how mini_git is
driven inside :mod:`repro.experiments.table1_bugs`.  One ``run()`` call
exercises the whole execution pipeline end to end — automatic call-site
analysis and scenario generation, snapshot-backed sessions, prefix-group
scheduling, run-to-completion pooled batches, and the delta result
channel — against a single mini_bind workload, and reports which of the
target's known planted bugs the campaign exposed.

``exploration=True`` switches from the one-scenario-per-site automatic
pipeline to the systematic fault-space sweep (exhaustive (site x errno)
enumeration with failure deduplication); ``store_path`` then makes the
sweep resumable across interrupted runs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.controller import LFIController
from repro.core.controller.executor import ParallelismSpec
from repro.core.controller.report import BugCandidate
from repro.core.exploration.store import ResultStore
from repro.experiments.common import TableResult
from repro.targets.base import KnownBug
from repro.targets.mini_bind import MiniBindTarget


def _bug_matches(bug: KnownBug, candidates: List[BugCandidate]) -> bool:
    return any(
        candidate.function == bug.library_function and candidate.kind == bug.kind
        for candidate in candidates
    )


def run(
    workload: str = "default-tests",
    parallelism: ParallelismSpec = None,
    exploration: bool = False,
    include_checked: bool = True,
    store_path: Optional[str] = None,
    seed: Optional[int] = None,
) -> TableResult:
    """Run one automatic campaign (or fault-space sweep) against mini_bind.

    ``include_checked=True`` (the default) also injects at *checked* call
    sites — required to surface the ``dst_lib_init`` recovery-code abort,
    exactly as in the paper's BIND study.
    """
    target = MiniBindTarget()
    if workload not in target.workloads():
        raise ValueError(
            f"unknown mini_bind workload {workload!r}; "
            f"choose one of {target.workloads()}"
        )
    controller = LFIController(target)
    table = TableResult(
        name="mini_bind campaign",
        description=f"BIND analog fault-injection campaign [{workload}]",
        columns=["bug", "library function", "kind", "found"],
        paper_reference={"bind_bugs_reported": 2},
    )

    if exploration:
        store = ResultStore(store_path) if store_path is not None else None
        report = controller.explore(
            workload=workload,
            include_checked=include_checked,
            parallelism=parallelism,
            store=store,
            seed=seed,
        )
        candidates = report.to_bug_candidates()
        table.add_note(
            f"exploration: {report.executed} run, {report.resumed} resumed, "
            f"{len(report.unique_failures)} unique failures"
        )
    else:
        report = controller.test_automatically(
            workloads=[workload],
            include_checked=include_checked,
            parallelism=parallelism,
        )
        candidates = report.bugs
        campaign = report.campaigns[workload]
        table.add_note(
            f"campaign: {len(report.scenarios)} scenarios, "
            f"{len(candidates)} bug candidates"
        )
        histogram = campaign.by_kind()
        table.add_note(
            "outcomes: "
            + ", ".join(f"{kind.value}={count}" for kind, count in sorted(
                histogram.items(), key=lambda item: item[0].value))
        )

    found_count = 0
    for bug in target.known_bugs:
        found = _bug_matches(bug, candidates)
        found_count += int(found)
        table.add_row(
            bug=bug.identifier,
            **{"library function": bug.library_function},
            kind=bug.kind.value,
            found=found,
        )
    table.add_note(
        f"{found_count} of {len(target.known_bugs)} planted mini_bind bugs found"
    )
    return table


__all__ = ["run"]
