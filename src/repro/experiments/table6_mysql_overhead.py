"""Table 6 — MySQL throughput with 0-4 triggers installed on ``fcntl``.

Read-only and read-write SysBench OLTP workloads, gate in observe-only mode.
The interesting property is the *shape*: throughput declines only slightly
(a few percent) as triggers are added, because conjunction evaluation
short-circuits and each trigger is cheap.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import TableResult
from repro.targets.mini_mysql import MiniMySQLTarget
from repro.targets.mini_mysql.scenarios import fcntl_overhead_scenario
from repro.workloads.sysbench import run_sysbench


def run(transactions: int = 300, repeats: int = 3, max_triggers: int = 4) -> TableResult:
    """Reproduce Table 6 (transactions per second, 0-4 triggers)."""
    target = MiniMySQLTarget()
    table = TableResult(
        name="Table 6",
        description="MySQL throughput under the LFI trigger mechanism (observe-only)",
        columns=["configuration", "read-only (txns/s)", "read/write (txns/s)",
                 "read-only slowdown", "read/write slowdown"],
        paper_reference={
            "baseline_ro": 1076, "baseline_rw": 326,
            "four_triggers_ro": 1056, "four_triggers_rw": 316,
        },
    )

    def measure(read_only: bool, trigger_count: Optional[int]) -> float:
        scenario = fcntl_overhead_scenario(trigger_count) if trigger_count else None
        best = 0.0
        for _ in range(repeats):
            result = run_sysbench(
                target,
                read_only=read_only,
                transactions=transactions,
                scenario=scenario,
                observe_only=True,
            )
            best = max(best, result.transactions_per_second)
        return best

    baseline_ro = measure(True, None)
    baseline_rw = measure(False, None)
    table.add_row(
        configuration="Baseline (no LFI)",
        **{
            "read-only (txns/s)": baseline_ro,
            "read/write (txns/s)": baseline_rw,
            "read-only slowdown": 0.0,
            "read/write slowdown": 0.0,
        },
    )
    for count in range(1, max_triggers + 1):
        throughput_ro = measure(True, count)
        throughput_rw = measure(False, count)
        table.add_row(
            configuration=f"{count} trigger{'s' if count > 1 else ''}",
            **{
                "read-only (txns/s)": throughput_ro,
                "read/write (txns/s)": throughput_rw,
                "read-only slowdown": 1 - throughput_ro / baseline_ro if baseline_ro else 0.0,
                "read/write slowdown": 1 - throughput_rw / baseline_rw if baseline_rw else 0.0,
            },
        )
    table.add_note(
        f"each configuration runs {transactions} OLTP transactions; best of {repeats} repeats"
    )
    return table


__all__ = ["run"]
