"""``repro-campaignd``: run the campaign coordinator daemon or a worker.

Subcommands:

* ``serve`` — bind the coordinator and serve until interrupted.  With
  ``--port 0`` the kernel picks a free port; ``--port-file`` writes the
  bound port to a file so scripts (the CI smoke job, tests) can discover
  it without parsing logs.
* ``worker`` — run one worker node against a coordinator, until
  interrupted or ``--max-idle`` consecutive empty polls (handy for batch
  jobs that should exit when the queue drains).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="coordinator host")
    parser.add_argument("--port", type=int, default=7070, help="coordinator port")
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="log at DEBUG level"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaignd",
        description="campaign fabric daemon: coordinator and worker nodes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the resident coordinator")
    _add_common(serve)
    serve.add_argument(
        "--shard-size", type=int, default=8,
        help="schedule points per worker shard lease",
    )
    serve.add_argument(
        "--lease-timeout", type=float, default=30.0,
        help="seconds a silent lease survives before its shard is re-queued",
    )
    serve.add_argument(
        "--no-fsync", action="store_true",
        help="flush result stores per record but skip the per-record fsync",
    )
    serve.add_argument(
        "--port-file", default=None,
        help="write the bound port to this file once listening",
    )

    worker = sub.add_parser("worker", help="run one worker node")
    _add_common(worker)
    worker.add_argument(
        "--parallelism", default=None,
        help="worker-local execution backend spec (e.g. serial, processes:4)",
    )
    worker.add_argument(
        "--worker-id", default=None, help="stable worker name (default: random)"
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.2,
        help="seconds between fetches while the queue is empty",
    )
    worker.add_argument(
        "--max-idle", type=int, default=None,
        help="exit after this many consecutive idle polls (default: run forever)",
    )

    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )

    if args.command == "serve":
        return _serve(args)
    return _worker(args)


def _serve(args: argparse.Namespace) -> int:
    from repro.distributed.campaignd import CampaignCoordinator

    coordinator = CampaignCoordinator(
        host=args.host,
        port=args.port,
        shard_size=args.shard_size,
        lease_timeout=args.lease_timeout,
        durable_stores=not args.no_fsync,
    )
    host, port = coordinator.start()
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{port}\n")
    print(f"repro-campaignd listening on {host}:{port}", flush=True)
    try:
        coordinator.serve_forever()
    except KeyboardInterrupt:
        coordinator.stop()
    return 0


def _worker(args: argparse.Namespace) -> int:
    from repro.distributed.worker import CampaignWorker

    worker = CampaignWorker(
        (args.host, args.port),
        worker_id=args.worker_id,
        parallelism=args.parallelism,
        poll_interval=args.poll_interval,
    )
    print(f"worker {worker.worker_id} serving {args.host}:{args.port}", flush=True)
    try:
        if args.max_idle is None:
            worker.run_forever()
        else:
            idle = 0
            while idle < args.max_idle:
                idle = 0 if worker.run_once() else idle + 1
                if idle:
                    import time

                    time.sleep(args.poll_interval)
    except KeyboardInterrupt:
        pass
    finally:
        worker.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
