"""``repro-campaign``: the campaign fabric client.

Submit explorations to a resident ``repro-campaignd`` coordinator, watch
them stream in, and pull merged results — from any number of shells,
against any number of campaigns, while the daemon and its workers stay
resident.

Examples::

    repro-campaign submit --target mini_git --workload status \\
        --store /tmp/git-status.jsonl --seed 7 --wait
    repro-campaign status c1
    repro-campaign tail c1                 # stream results as they land
    repro-campaign results c1 > merged.jsonl
    repro-campaign cancel c1

Every record printed by ``tail``/``results`` is one JSON line in exactly
the result-store format, so shell pipelines (``jq``, ``grep``) and store
files are interchangeable.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _client(args: argparse.Namespace):
    from repro.distributed.client import CampaignClient

    return CampaignClient((args.host, args.port))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign", description="campaign fabric client"
    )
    parser.add_argument("--host", default="127.0.0.1", help="coordinator host")
    parser.add_argument("--port", type=int, default=7070, help="coordinator port")
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser("submit", help="submit (or resume) a campaign")
    submit.add_argument("--target", required=True, help="registry target name")
    submit.add_argument("--workload", default=None)
    submit.add_argument(
        "--strategy", default=None,
        help="exhaustive | boundary | random | coverage "
        "(coverage accepts knobs, e.g. coverage:round=8,patience=2)",
    )
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument(
        "--functions", default=None,
        help="comma-separated function filter (narrows the fault space)",
    )
    submit.add_argument("--include-checked", action="store_true")
    submit.add_argument("--no-partial", action="store_true")
    submit.add_argument(
        "--store", default=None,
        help="coordinator-side JSON-lines checkpoint path (enables resume)",
    )
    submit.add_argument("--shard-size", type=int, default=None)
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the campaign completes, then print final status",
    )

    for name, help_text in (
        ("status", "one campaign's progress"),
        ("cancel", "cancel a running campaign"),
        ("results", "print the merged records (schedule order), one JSON line each"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument("campaign_id")

    tail = sub.add_parser("tail", help="stream results as they complete")
    tail.add_argument("campaign_id")
    tail.add_argument("--from-seq", type=int, default=0)
    tail.add_argument(
        "--no-follow", action="store_true", help="catch up and exit"
    )

    sub.add_parser("list", help="all campaigns")
    sub.add_parser("ping", help="liveness check")
    sub.add_parser("shutdown", help="stop the coordinator")

    args = parser.parse_args(argv)
    handler = {
        "submit": _submit,
        "status": _status,
        "cancel": _cancel,
        "results": _results,
        "tail": _tail,
        "list": _list,
        "ping": _ping,
        "shutdown": _shutdown,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        return 0


def _print(payload) -> None:
    json.dump(payload, sys.stdout, sort_keys=True)
    sys.stdout.write("\n")
    sys.stdout.flush()


def _submit(args: argparse.Namespace) -> int:
    from repro.distributed.spec import CampaignSpec

    spec = CampaignSpec(
        target=args.target,
        workload=args.workload,
        strategy=args.strategy,
        seed=args.seed,
        functions=args.functions.split(",") if args.functions else None,
        include_partial=not args.no_partial,
        include_checked=args.include_checked,
        store_path=args.store,
        shard_size=args.shard_size,
    )
    with _client(args) as client:
        reply = client.submit(spec)
        _print(reply)
        if args.wait and reply.get("state") == "running":
            final = client.wait(reply["campaign_id"])
            _print(final)
            return 0 if final.get("state") == "complete" else 1
        return 0


def _status(args: argparse.Namespace) -> int:
    with _client(args) as client:
        status = client.status(args.campaign_id)
        _print(status)
        return 0 if status.get("state") in ("running", "complete") else 1


def _cancel(args: argparse.Namespace) -> int:
    with _client(args) as client:
        _print(client.cancel(args.campaign_id))
        return 0


def _results(args: argparse.Namespace) -> int:
    with _client(args) as client:
        for record in client.results(args.campaign_id):
            _print(record)
        return 0


def _tail(args: argparse.Namespace) -> int:
    with _client(args) as client:
        for event in client.tail(
            args.campaign_id, from_seq=args.from_seq, follow=not args.no_follow
        ):
            if event.get("type") == "result":
                _print(event["record"])
            else:
                _print(event)
        return 0


def _list(args: argparse.Namespace) -> int:
    with _client(args) as client:
        for campaign in client.list_campaigns():
            _print(campaign)
        return 0


def _ping(args: argparse.Namespace) -> int:
    with _client(args) as client:
        _print(client.ping())
        return 0


def _shutdown(args: argparse.Namespace) -> int:
    with _client(args) as client:
        _print(client.shutdown_server())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
