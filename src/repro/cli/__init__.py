"""Command-line entry points.

Installed as console scripts by ``setup.py`` and runnable uninstalled via
``python -m``:

* ``repro-campaignd`` (:mod:`repro.cli.campaignd`) — run the resident
  campaign coordinator (``serve``) or a worker node (``worker``);
* ``repro-campaign`` (:mod:`repro.cli.campaign`) — the client: submit,
  status, tail, results, cancel, list, ping, shutdown.

See ``doc/PROTOCOL.md`` for the wire protocol these speak.
"""
