"""Instruction/line coverage tracker for VM executions."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.isa.binary import BinaryImage

Line = Tuple[str, int]


class CoverageTracker:
    """Records executed instruction addresses; aggregates across runs."""

    def __init__(self) -> None:
        self._addresses: Set[int] = set()
        self._hit_counts: Dict[int, int] = {}
        self.runs = 0

    # ------------------------------------------------------------------
    # recording (called by the VM on every instruction)
    # ------------------------------------------------------------------
    def record(self, address: int) -> None:
        self._addresses.add(address)
        self._hit_counts[address] = self._hit_counts.get(address, 0) + 1

    def finish_run(self) -> None:
        self.runs += 1

    def merge(self, other: "CoverageTracker") -> None:
        self._addresses.update(other._addresses)
        for address, count in other._hit_counts.items():
            self._hit_counts[address] = self._hit_counts.get(address, 0) + count
        self.runs += other.runs

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def covered_addresses(self) -> Set[int]:
        return set(self._addresses)

    def hit_count(self, address: int) -> int:
        return self._hit_counts.get(address, 0)

    def covered_lines(self, binary: BinaryImage) -> Set[Line]:
        lines: Set[Line] = set()
        for address in self._addresses:
            location = binary.source_of(address)
            if location is not None:
                lines.add((location.file, location.line))
        return lines

    def instruction_coverage(self, binary: BinaryImage) -> float:
        if not len(binary):
            return 0.0
        covered = sum(1 for address in self._addresses if binary.has_address(address))
        return covered / len(binary)

    def line_coverage(self, binary: BinaryImage) -> float:
        all_lines = set(binary.lines())
        if not all_lines:
            return 0.0
        return len(self.covered_lines(binary) & all_lines) / len(all_lines)

    def lines_covered_of(self, binary: BinaryImage, lines: Iterable[Line]) -> Set[Line]:
        wanted = set(lines)
        return self.covered_lines(binary) & wanted

    def clear(self) -> None:
        self._addresses.clear()
        self._hit_counts.clear()
        self.runs = 0


__all__ = ["CoverageTracker", "Line"]
