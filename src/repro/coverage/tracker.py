"""Instruction/line coverage tracker for VM executions.

``record`` is on the VM's per-step hot path (every executed instruction
calls it), so the tracker keeps hit counts in a flat array indexed by
instruction address — one bounds check plus one increment per step — and
only materializes the address *set* lazily when a query asks for it.
Addresses the dense array should not cover (negative, or far beyond any
code segment) fall back to a sparse dict.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.isa.binary import BinaryImage

Line = Tuple[str, int]

#: Implicit growth cap for the dense count array: code addresses are
#: instruction indices (tens of thousands at most), so anything beyond this
#: is a stray address that must not cost megabytes of zeros.  ``reserve``
#: may still size the array past this explicitly.
_DENSE_GROWTH_LIMIT = 1 << 16


class CoverageTracker:
    """Records executed instruction addresses; aggregates across runs."""

    def __init__(self) -> None:
        #: Hit counts indexed by address; grown on demand.
        self._counts: List[int] = []
        #: Counts for addresses the array cannot index (negatives).
        self._extra: Dict[int, int] = {}
        self.runs = 0

    # ------------------------------------------------------------------
    # recording (called by the VM on every instruction)
    # ------------------------------------------------------------------
    def record(self, address: int) -> None:
        counts = self._counts
        if 0 <= address < len(counts):
            counts[address] += 1
        else:
            self._add(address, 1)

    def record_block(self, start: int, length: int) -> None:
        """Record *length* consecutive addresses starting at *start*.

        The block-batched engine calls this once per superclosure instead
        of :meth:`record` once per instruction; after the VM's ``reserve``
        the whole block lands in the dense array with no per-address bounds
        checks.  Equivalent to ``for a in range(start, start+length):
        record(a)``.
        """
        counts = self._counts
        if 0 <= start and start + length <= len(counts):
            for address in range(start, start + length):
                counts[address] += 1
        else:
            for address in range(start, start + length):
                self._add(address, 1)

    def reserve(self, size: int) -> None:
        """Pre-size the count array (the VM calls this with the image size)."""
        counts = self._counts
        if size > len(counts):
            counts.extend([0] * (size - len(counts)))
            if self._extra:
                # Keep the invariant that an address lives in exactly one
                # store: migrate sparse entries the array now covers.
                for address in [a for a in self._extra if 0 <= a < size]:
                    counts[address] += self._extra.pop(address)

    def _add(self, address: int, count: int) -> None:
        counts = self._counts
        if 0 <= address < len(counts):
            counts[address] += count
        elif 0 <= address < _DENSE_GROWTH_LIMIT:
            counts.extend([0] * (address + 1 - len(counts)))
            counts[address] += count
        else:
            self._extra[address] = self._extra.get(address, 0) + count

    def unrecord(self, address: int) -> None:
        """Undo one :meth:`record` of *address* (never below zero).

        The prefix-sharing scheduler uses this to roll a restored capture
        back to the state before the instruction it was taken inside, so
        re-executing that instruction does not double-count it.
        """
        counts = self._counts
        if 0 <= address < len(counts):
            if counts[address] > 0:
                counts[address] -= 1
        elif address in self._extra:
            remaining = self._extra[address] - 1
            if remaining > 0:
                self._extra[address] = remaining
            else:
                del self._extra[address]

    def finish_run(self) -> None:
        self.runs += 1

    def merge(self, other: "CoverageTracker") -> None:
        for address, count in other._items():
            self._add(address, count)
        self.runs += other.runs

    # ------------------------------------------------------------------
    # queries (sets materialized lazily from the count array)
    # ------------------------------------------------------------------
    def _items(self) -> Iterator[Tuple[int, int]]:
        """Iterate (address, hit count) pairs for every covered address."""
        for address, count in enumerate(self._counts):
            if count:
                yield address, count
        yield from self._extra.items()

    @property
    def covered_addresses(self) -> Set[int]:
        return {address for address, _ in self._items()}

    def hit_count(self, address: int) -> int:
        if 0 <= address < len(self._counts):
            return self._counts[address]
        return self._extra.get(address, 0)

    def covered_lines(self, binary: BinaryImage) -> Set[Line]:
        lines: Set[Line] = set()
        for address, _ in self._items():
            location = binary.source_of(address)
            if location is not None:
                lines.add((location.file, location.line))
        return lines

    def instruction_coverage(self, binary: BinaryImage) -> float:
        if not len(binary):
            return 0.0
        covered = sum(1 for address, _ in self._items() if binary.has_address(address))
        return covered / len(binary)

    def line_coverage(self, binary: BinaryImage) -> float:
        all_lines = set(binary.lines())
        if not all_lines:
            return 0.0
        return len(self.covered_lines(binary) & all_lines) / len(all_lines)

    def lines_covered_of(self, binary: BinaryImage, lines: Iterable[Line]) -> Set[Line]:
        wanted = set(lines)
        return self.covered_lines(binary) & wanted

    def clear(self) -> None:
        self._counts = []
        self._extra.clear()
        self.runs = 0

    # ------------------------------------------------------------------
    # snapshot support (repro.vm.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        return {
            "counts": list(self._counts),
            "extra": dict(self._extra),
            "runs": self.runs,
        }

    def restore_state(self, state: dict) -> None:
        self._counts = list(state["counts"])
        self._extra = dict(state["extra"])
        self.runs = state["runs"]


__all__ = ["CoverageTracker", "Line"]
