"""Coverage measurement and recovery-code identification.

The paper's Table 3 measures how much *recovery code* the default test
suites exercise with and without LFI.  This package provides the gcov/lcov
analog for compiled targets:

* :class:`~repro.coverage.tracker.CoverageTracker` records executed
  instruction addresses while the VM runs and maps them to source lines via
  the binary's line table;
* :mod:`repro.coverage.recovery` identifies recovery regions — the basic
  blocks guarded by checks of library-call error returns — directly from the
  binary, replacing the paper's manual identification of recovery blocks in
  lcov output;
* :class:`~repro.coverage.report.CoverageReport` combines both into the
  totals Table 3 reports (total coverage, recovery coverage, lines added by
  LFI).
"""

from repro.coverage.recovery import RecoveryMap, identify_recovery_regions
from repro.coverage.report import CoverageReport, compare_coverage
from repro.coverage.tracker import CoverageTracker

__all__ = [
    "CoverageReport",
    "CoverageTracker",
    "RecoveryMap",
    "compare_coverage",
    "identify_recovery_regions",
]
