"""Coverage reports in the shape of the paper's Table 3, plus the
BEACON-style per-target usage profile built from campaign traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.coverage.recovery import RecoveryMap
from repro.coverage.tracker import CoverageTracker
from repro.isa.binary import BinaryImage

Line = Tuple[str, int]


@dataclass
class CoverageReport:
    """Coverage of one binary under one configuration (with or without LFI)."""

    binary: str
    configuration: str
    total_lines: int
    covered_lines: int
    recovery_lines: int
    recovery_covered: int
    covered_line_set: Set[Line]
    recovery_covered_set: Set[Line]

    @property
    def total_coverage(self) -> float:
        return self.covered_lines / self.total_lines if self.total_lines else 0.0

    @property
    def recovery_coverage(self) -> float:
        return self.recovery_covered / self.recovery_lines if self.recovery_lines else 0.0

    def describe(self) -> str:
        return (
            f"{self.binary} [{self.configuration}]: total {self.total_coverage:.1%} "
            f"({self.covered_lines}/{self.total_lines} lines), recovery "
            f"{self.recovery_coverage:.1%} ({self.recovery_covered}/{self.recovery_lines} lines)"
        )


def build_report(
    binary: BinaryImage,
    tracker: CoverageTracker,
    recovery: RecoveryMap,
    configuration: str,
) -> CoverageReport:
    all_lines = set(binary.lines())
    covered = tracker.covered_lines(binary) & all_lines
    recovery_lines = recovery.all_lines() & all_lines
    recovery_covered = covered & recovery_lines
    return CoverageReport(
        binary=binary.name,
        configuration=configuration,
        total_lines=len(all_lines),
        covered_lines=len(covered),
        recovery_lines=len(recovery_lines),
        recovery_covered=len(recovery_covered),
        covered_line_set=covered,
        recovery_covered_set=recovery_covered,
    )


@dataclass
class CoverageComparison:
    """The Table 3 row shape: baseline test suite vs. test suite + LFI."""

    binary: str
    baseline: CoverageReport
    with_lfi: CoverageReport

    @property
    def additional_recovery_fraction(self) -> float:
        """Recovery code newly covered thanks to LFI, as a fraction of all recovery code.

        This is the "Additional recovery code covered" row of Table 3: the
        share of recovery lines that the test suite only reaches when LFI
        injects the corresponding faults.
        """
        total = self.with_lfi.recovery_lines or self.baseline.recovery_lines
        if not total:
            return 0.0
        extra = self.with_lfi.recovery_covered - self.baseline.recovery_covered
        return max(extra, 0) / total

    @property
    def relative_recovery_improvement(self) -> float:
        """Extra recovery coverage relative to what the baseline already covered."""
        baseline_covered = self.baseline.recovery_covered
        extra = self.with_lfi.recovery_covered - baseline_covered
        if baseline_covered:
            return extra / baseline_covered
        return 1.0 if extra else 0.0

    @property
    def additional_lines_covered(self) -> int:
        return len(self.with_lfi.covered_line_set - self.baseline.covered_line_set)

    def row(self) -> dict:
        return {
            "system": self.binary,
            "additional_recovery_code_covered": self.additional_recovery_fraction,
            "additional_loc_covered_by_lfi": self.additional_lines_covered,
            "total_coverage_without_lfi": self.baseline.total_coverage,
            "total_coverage_with_lfi": self.with_lfi.total_coverage,
            "recovery_coverage_without_lfi": self.baseline.recovery_coverage,
            "recovery_coverage_with_lfi": self.with_lfi.recovery_coverage,
        }


def compare_coverage(
    baseline: CoverageReport, with_lfi: CoverageReport, binary: Optional[str] = None
) -> CoverageComparison:
    return CoverageComparison(
        binary=binary or baseline.binary, baseline=baseline, with_lfi=with_lfi
    )


# ----------------------------------------------------------------------
# BEACON-style usage profiles from campaign traces
# ----------------------------------------------------------------------
@dataclass
class FunctionUsage:
    """How one library function is used — and probed — by a campaign."""

    function: str
    #: Library calls to this function summed over every stored run.
    total_calls: int = 0
    #: Runs whose call trace reached this function at all.
    runs_reached: int = 0
    #: Fault points of the campaign that targeted this function.
    points_swept: int = 0
    #: Targeted points whose outcome was a failure.
    failures: int = 0
    #: Fault classes swept against this function ("errno", "partial_write"...).
    fault_classes: Set[str] = field(default_factory=set)

    @property
    def failure_rate(self) -> float:
        return self.failures / self.points_swept if self.points_swept else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "total_calls": self.total_calls,
            "runs_reached": self.runs_reached,
            "points_swept": self.points_swept,
            "failures": self.failures,
            "failure_rate": self.failure_rate,
            "fault_classes": sorted(self.fault_classes),
        }


@dataclass
class UsageProfile:
    """Per-target library usage profile aggregated from a campaign trace.

    This is the BEACON-style report: which library functions the target
    actually exercises under its workloads (weighted by call volume), which
    of them the campaign swept with which fault classes, and where the
    failures concentrated.  Built purely from :class:`StoredResult` records
    — any result store (in-memory, JSON-lines file, coordinator snapshot)
    can feed it, including stores written by old errno-only campaigns
    (their records simply carry no per-call counts).
    """

    target: str
    runs: int = 0
    functions: Dict[str, FunctionUsage] = field(default_factory=dict)

    def usage(self, function: str) -> FunctionUsage:
        entry = self.functions.get(function)
        if entry is None:
            entry = FunctionUsage(function=function)
            self.functions[function] = entry
        return entry

    def ranked(self) -> List[FunctionUsage]:
        """Functions by descending call volume (name-stable tiebreak)."""
        return sorted(
            self.functions.values(),
            key=lambda usage: (-usage.total_calls, usage.function),
        )

    def unswept(self) -> List[str]:
        """Functions the workloads call that no fault point targeted."""
        return sorted(
            usage.function
            for usage in self.functions.values()
            if usage.total_calls and not usage.points_swept
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "runs": self.runs,
            "functions": [usage.to_dict() for usage in self.ranked()],
            "unswept": self.unswept(),
        }

    def describe(self) -> str:
        lines = [f"usage profile for {self.target}: {self.runs} runs"]
        for usage in self.ranked():
            classes = ",".join(sorted(usage.fault_classes)) or "-"
            lines.append(
                f"  {usage.function}: {usage.total_calls} calls in "
                f"{usage.runs_reached} runs, {usage.points_swept} points "
                f"[{classes}], {usage.failures} failures"
            )
        missing = self.unswept()
        if missing:
            lines.append(f"  unswept: {', '.join(missing)}")
        return "\n".join(lines)


def build_usage_profile(target: str, results: Iterable[Any]) -> UsageProfile:
    """Aggregate a campaign trace into a :class:`UsageProfile`.

    *results* is any iterable of
    :class:`~repro.core.exploration.store.StoredResult`-shaped records (the
    attributes used: ``calls``, ``function``, ``fault_class``, ``outcome``).
    """
    from repro.core.controller.monitor import OutcomeKind

    profile = UsageProfile(target=target)
    for result in results:
        profile.runs += 1
        for function, count in (getattr(result, "calls", None) or {}).items():
            usage = profile.usage(function)
            usage.total_calls += int(count)
            usage.runs_reached += 1
        function = getattr(result, "function", "")
        if function:
            usage = profile.usage(function)
            usage.points_swept += 1
            usage.fault_classes.add(getattr(result, "fault_class", "errno") or "errno")
            try:
                failed = OutcomeKind(result.outcome).is_failure
            except ValueError:
                failed = False
            if failed:
                usage.failures += 1
    return profile


__all__ = [
    "CoverageComparison",
    "CoverageReport",
    "FunctionUsage",
    "UsageProfile",
    "build_report",
    "build_usage_profile",
    "compare_coverage",
]
