"""Coverage reports in the shape of the paper's Table 3."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from repro.coverage.recovery import RecoveryMap
from repro.coverage.tracker import CoverageTracker
from repro.isa.binary import BinaryImage

Line = Tuple[str, int]


@dataclass
class CoverageReport:
    """Coverage of one binary under one configuration (with or without LFI)."""

    binary: str
    configuration: str
    total_lines: int
    covered_lines: int
    recovery_lines: int
    recovery_covered: int
    covered_line_set: Set[Line]
    recovery_covered_set: Set[Line]

    @property
    def total_coverage(self) -> float:
        return self.covered_lines / self.total_lines if self.total_lines else 0.0

    @property
    def recovery_coverage(self) -> float:
        return self.recovery_covered / self.recovery_lines if self.recovery_lines else 0.0

    def describe(self) -> str:
        return (
            f"{self.binary} [{self.configuration}]: total {self.total_coverage:.1%} "
            f"({self.covered_lines}/{self.total_lines} lines), recovery "
            f"{self.recovery_coverage:.1%} ({self.recovery_covered}/{self.recovery_lines} lines)"
        )


def build_report(
    binary: BinaryImage,
    tracker: CoverageTracker,
    recovery: RecoveryMap,
    configuration: str,
) -> CoverageReport:
    all_lines = set(binary.lines())
    covered = tracker.covered_lines(binary) & all_lines
    recovery_lines = recovery.all_lines() & all_lines
    recovery_covered = covered & recovery_lines
    return CoverageReport(
        binary=binary.name,
        configuration=configuration,
        total_lines=len(all_lines),
        covered_lines=len(covered),
        recovery_lines=len(recovery_lines),
        recovery_covered=len(recovery_covered),
        covered_line_set=covered,
        recovery_covered_set=recovery_covered,
    )


@dataclass
class CoverageComparison:
    """The Table 3 row shape: baseline test suite vs. test suite + LFI."""

    binary: str
    baseline: CoverageReport
    with_lfi: CoverageReport

    @property
    def additional_recovery_fraction(self) -> float:
        """Recovery code newly covered thanks to LFI, as a fraction of all recovery code.

        This is the "Additional recovery code covered" row of Table 3: the
        share of recovery lines that the test suite only reaches when LFI
        injects the corresponding faults.
        """
        total = self.with_lfi.recovery_lines or self.baseline.recovery_lines
        if not total:
            return 0.0
        extra = self.with_lfi.recovery_covered - self.baseline.recovery_covered
        return max(extra, 0) / total

    @property
    def relative_recovery_improvement(self) -> float:
        """Extra recovery coverage relative to what the baseline already covered."""
        baseline_covered = self.baseline.recovery_covered
        extra = self.with_lfi.recovery_covered - baseline_covered
        if baseline_covered:
            return extra / baseline_covered
        return 1.0 if extra else 0.0

    @property
    def additional_lines_covered(self) -> int:
        return len(self.with_lfi.covered_line_set - self.baseline.covered_line_set)

    def row(self) -> dict:
        return {
            "system": self.binary,
            "additional_recovery_code_covered": self.additional_recovery_fraction,
            "additional_loc_covered_by_lfi": self.additional_lines_covered,
            "total_coverage_without_lfi": self.baseline.total_coverage,
            "total_coverage_with_lfi": self.with_lfi.total_coverage,
            "recovery_coverage_without_lfi": self.baseline.recovery_coverage,
            "recovery_coverage_with_lfi": self.with_lfi.recovery_coverage,
        }


def compare_coverage(
    baseline: CoverageReport, with_lfi: CoverageReport, binary: Optional[str] = None
) -> CoverageComparison:
    return CoverageComparison(
        binary=binary or baseline.binary, baseline=baseline, with_lfi=with_lfi
    )


__all__ = ["CoverageComparison", "CoverageReport", "build_report", "compare_coverage"]
