"""Automatic identification of recovery-code regions.

A *recovery region* is the code the program runs only when a library call
reports an error: the branch of an error-return check that corresponds to
the error values in the library's fault profile.  The paper identified these
blocks manually in lcov output; here they are derived from the binary:

1. for every call site of a profiled function, find the checks the dataflow
   analysis reports (``cmp`` of a return-value copy against a literal plus a
   conditional jump);
2. decide which side of the branch the *error* values fall on by evaluating
   the comparison with the profile's error return values;
3. the basic block on the error side (and the straight-line blocks reachable
   only from it, up to a small budget) is the recovery region for that site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.analysis.cfg import build_partial_cfg
from repro.core.analysis.dataflow import CheckSite, analyze_return_value_checks
from repro.core.profiler.fault_profile import FaultProfile
from repro.isa.binary import BinaryImage, CallSite
from repro.isa.instructions import Opcode

Line = Tuple[str, int]


@dataclass
class RecoveryRegion:
    """Recovery code guarding one library call site."""

    call_site: CallSite
    addresses: Set[int] = field(default_factory=set)
    lines: Set[Line] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.addresses)


@dataclass
class RecoveryMap:
    """All recovery regions of one binary."""

    binary: str
    regions: List[RecoveryRegion] = field(default_factory=list)

    def all_lines(self) -> Set[Line]:
        lines: Set[Line] = set()
        for region in self.regions:
            lines.update(region.lines)
        return lines

    def all_addresses(self) -> Set[int]:
        addresses: Set[int] = set()
        for region in self.regions:
            addresses.update(region.addresses)
        return addresses

    def region_count(self) -> int:
        return len(self.regions)


def _condition_holds(value: int, literal: int, jump: Opcode) -> bool:
    """Would the conditional jump be taken for ``value <op> literal``?"""
    difference = value - literal
    if jump is Opcode.JE:
        return difference == 0
    if jump is Opcode.JNE:
        return difference != 0
    if jump is Opcode.JL:
        return difference < 0
    if jump is Opcode.JLE:
        return difference <= 0
    if jump is Opcode.JG:
        return difference > 0
    if jump is Opcode.JGE:
        return difference >= 0
    return False


def _error_successor(
    binary: BinaryImage, check: CheckSite, error_values: Sequence[int]
) -> Optional[int]:
    """Which address does control reach when the return value is an error?"""
    jump = binary.instructions[check.jump_address]
    target = jump.jump_target()
    target_address = target.address if target is not None else None
    fallthrough = check.jump_address + 1
    taken = [
        _condition_holds(value, check.literal, check.jump_opcode) for value in error_values
    ]
    if all(taken) and target_address is not None:
        return target_address
    if not any(taken):
        return fallthrough
    # Mixed: be conservative and report the fallthrough side.
    return fallthrough


def _collect_region(
    binary: BinaryImage, start: int, budget: int = 40
) -> Tuple[Set[int], Set[Line]]:
    """Collect the straight-line block starting at *start* (and its lines)."""
    addresses: Set[int] = set()
    lines: Set[Line] = set()
    address = start
    while binary.has_address(address) and len(addresses) < budget:
        instruction = binary.instructions[address]
        addresses.add(address)
        location = binary.source_of(address)
        if location is not None:
            lines.add((location.file, location.line))
        if instruction.opcode in (Opcode.RET, Opcode.HALT):
            break
        if instruction.opcode is Opcode.JMP:
            break
        if instruction.opcode.is_conditional_jump:
            break
        address += 1
    return addresses, lines


def identify_recovery_regions(
    binary: BinaryImage,
    profile: FaultProfile,
    functions: Optional[Sequence[str]] = None,
    max_instructions: int = 100,
) -> RecoveryMap:
    """Find recovery regions for every (profiled) library call in *binary*."""
    recovery = RecoveryMap(binary=binary.name)
    targets = list(functions) if functions is not None else sorted(binary.called_imports())
    for function in targets:
        function_profile = profile.function(function)
        if function_profile is None or not function_profile.error_returns:
            continue
        error_values = list(function_profile.error_values())
        for site in binary.call_sites(function):
            cfg = build_partial_cfg(binary, site.address + 1, max_instructions=max_instructions)
            checks = analyze_return_value_checks(binary, site.address, cfg=cfg)
            if not checks.check_sites:
                continue
            region = RecoveryRegion(call_site=site)
            for check in checks.check_sites:
                error_start = _error_successor(binary, check, error_values)
                if error_start is None:
                    continue
                addresses, lines = _collect_region(binary, error_start)
                region.addresses.update(addresses)
                region.lines.update(lines)
            if region.addresses:
                recovery.regions.append(region)
    return recovery


__all__ = ["RecoveryMap", "RecoveryRegion", "identify_recovery_regions"]
