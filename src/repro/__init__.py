"""LFI reproduction: high-precision testing of recovery code.

This package reproduces the system described in *An Extensible Technique
for High-Precision Testing of Recovery Code* (Marinescu, Banabic, Candea —
USENIX ATC 2010): the **LFI** library-level fault injector with its trigger
mechanism, XML fault-injection language, library profiler and call-site
analyzer — plus every substrate the evaluation needs (a synthetic ISA and
VM, a mini-C compiler, a simulated OS/libc, and analogs of BIND, Git,
MySQL, Apache and PBFT).

Quick tour (see ``examples/quickstart.py`` for a runnable version)::

    from repro import (
        CallSiteAnalyzer, LFIController, ScenarioBuilder, compile_source,
    )
    from repro.targets.mini_git import MiniGitTarget

    controller = LFIController(MiniGitTarget())
    report = controller.test_automatically(workloads=["default-tests"])
    print(report.summary())

**Parallel campaigns.** Scenario runs are independent, so every campaign
entry point — ``TestCampaign.run``, ``LFIController.run_campaign`` /
``test_automatically``, and the experiment harnesses — accepts a
``parallelism=`` knob: ``None``/``"serial"`` (the default), an integer
worker count (a process pool — the backend that scales these CPU-bound
targets with cores), ``"threads[:N]"``, ``"processes[:N]"``, or an
:class:`~repro.core.controller.executor.ExecutionBackend` instance to share
one pool across campaigns.  Results keep submission order and per-run seeds
are derived deterministically — stochastic triggers declared without an
explicit seed get one derived from ``(campaign seed, submission index,
trigger id)`` — so parallel campaigns are bit-identical to serial ones::

    report = controller.test_automatically(parallelism="processes:4")

**Fault-space exploration.** :meth:`LFIController.explore` (backed by
:mod:`repro.core.exploration`) turns the hand-built scenario lists into
systematic coverage of the whole (call site x error return x errno) space:
a pluggable strategy — :class:`~repro.core.exploration.ExhaustiveStrategy`,
:class:`~repro.core.exploration.BoundarySampleStrategy`, or a seeded
:class:`~repro.core.exploration.RandomSampleStrategy` — selects the points
to run, the campaign executor schedules them in priority order (unchecked
sites first, novel (function, errno) fault classes before repeats),
failures deduplicate by ``(function, errno, outcome, stack fingerprint)``,
and every completed run is checkpointed in a JSON-lines
:class:`~repro.core.exploration.ResultStore` so an interrupted exploration
resumes without re-running finished scenarios::

    report = controller.explore(store=ResultStore("bind.jsonl"), seed=7)
    print(report.summary())

**Artifact cache.** Building and profiling the synthetic shared libraries
is memoized process-wide in :mod:`repro.core.profiler.cache`
(``cached_library_binary``, ``cached_merged_profile``, ...): the first
controller or experiment in a process pays the assemble + disassemble + CFG
cost, every later one shares the artifacts.  Cached objects are shared —
treat them as immutable; ``clear_artifact_cache()`` resets the cache in
tests.

**VM execution engines.** The VM ships three engines behind one
:class:`Machine` API.  ``engine="compiled"`` (the default) predecodes each
instruction once per image into a specialized closure
(:mod:`repro.vm.dispatch`) — operands become register-slot indices and
captured constants, library calls skip context construction entirely when
no injection runtime handles the function — and then fuses straight-line
basic blocks into **superclosures**: one generated function per block with
common instruction bodies inlined as source, dead CMP/Jcc flag
materialization elided (guarded by a bounded flag-liveness scan), and trap
attribution recovered from the traceback line number only when a trap
actually propagates.  Runs without a coverage tracker take a further
specialized loop with no per-step record branch at all; trackers expose a
``record_block`` batch API for the instrumented loop.  Everything is
cached on the :class:`~repro.isa.binary.BinaryImage` so every campaign run
sharing an image (the artifact cache, ``CompiledTarget``'s binary cache)
reuses the compiled program and fused blocks.  ``engine="compiled-steps"``
keeps the per-instruction closure loop (the pre-dataplane shape, and a
second oracle); ``engine="reference"`` keeps the original decode-as-you-go
interpreter as the behavioural ground truth.  ``tests/test_vm_dispatch.py``
and ``tests/test_dataplane.py`` assert all engines produce identical exit
statuses, traces, coverage, call counts, and injection logs — including on
randomly generated mini-C programs — and ``REPRO_ENGINE`` selects the
process-wide default (the CI oracle leg exports ``REPRO_ENGINE=reference``)::

    machine = Machine(binary, engine="reference")   # the slow oracle
    target.run(WorkloadRequest(options={"engine": "reference"}))

**Forkserver-style snapshots.** Every compiled-target run is served from a
resident *boot template* by default (:mod:`repro.vm.snapshot`): the OS
fixture, libc, and machine are built once per (target, workload), their
boot state captured by :class:`~repro.vm.snapshot.MachineSnapshot`, and
each request restores it in **O(dirty words)** via the copy-on-write
journal inside :class:`~repro.vm.memory.Memory` instead of rebuilding.  On
top of that, campaigns and explorations share *prefixes*
(:mod:`repro.core.controller.prefix`): scenarios that differ only in the
injected fault — the analyzer's (site x errno) families — are grouped, the
group's probe runs once while a
:class:`~repro.vm.snapshot.MidRunCapture` snapshots the machine at the
exact instruction where the trigger fires, and every sibling scenario
resumes from that point with its own fault; scenarios whose trigger never
fires under a workload are answered by replicating the probe.

**Prefix trees and parallel groups.** Groups are hierarchical: call-count
variants of one site (replay-style scenarios differing only in a
``CallCountTrigger`` threshold) share the sub-prefix up to their earliest
divergence — later variants resume from an earlier variant's capture with
the call *passed through* and chain nested captures at their own injection
points.  Suffixes that never read ``errno`` (tracked by a libc errno-read
counter the compiled engine maintains for free via predecode
specialization) make errno-only variants *suffix replicas*: one run, the
logged errno patched per member.  Sharing also composes with every
execution backend: each group ships to the pool as one
:class:`~repro.core.controller.executor.GroupTask` (``run_groups`` /
``run_groups_iter``), whose worker runs the probe and resumes the siblings
locally, so ``share_prefixes=True, parallelism="processes:4"`` multiplies
the two levers instead of silently dropping one.  The Python-level
mini_apache target forks its server world the same way — captured once,
restored per member in O(touched state), no ``copy.deepcopy``.  All of it
is observably identical to the reference rebuild path —
``tests/test_snapshot.py`` and ``tests/test_prefix_parallel.py`` enforce
bit-identical exit statuses, traces, coverage, call counts, and injection
logs across serial, threaded, and process-pooled schedules — and
selectable::

    target.run(WorkloadRequest(options={"snapshots": False}))   # reference path
    campaign.run(scenarios, share_prefixes=False)               # per-scenario runs
    campaign.run(scenarios, share_prefixes=True,                # group-per-task
                 parallelism="processes:4")                     # fan-out

``benchmarks/bench_snapshot.py`` tracks the snapshot-engine campaign
throughput in ``BENCH_snapshot.json`` (>= 2x the rebuild path on the
mini_git sweep and the mini_apache trigger campaign);
``benchmarks/bench_prefix_parallel.py`` tracks the PR 5 composition in
``BENCH_prefix_parallel.json`` (group fan-out vs the old silently-unshared
pools, prefix-tree sweeps, and the capture/restore fork vs deepcopy).

**Execution pipeline architecture.** A pooled shared campaign run passes
through five dataplane layers, each independently selectable and each with
a slow reference oracle the differential suite holds it to:

1. **Block-batched VM execution** (:mod:`repro.vm.dispatch`) — the image
   is predecoded once into per-instruction closures, straight-line blocks
   fuse into superclosures, and coverage-off runs skip per-step
   bookkeeping entirely.  Knobs: ``engine=`` / ``REPRO_ENGINE``
   (``compiled`` | ``compiled-steps`` | ``reference``).
2. **Forkserver snapshots** (:mod:`repro.vm.snapshot`,
   :mod:`repro.core.profiler.cache`) — one resident boot template per
   (boot scope, engine, libc-spec fingerprint); requests restore boot
   state in O(dirty words).  The default boot scope is the shared
   fixture prefix, so every workload of a target reuses one boot+fixture
   capture.  Knobs: ``snapshots=`` / ``REPRO_SNAPSHOTS``.
3. **Prefix trees** (:mod:`repro.core.controller.prefix`) — scenario
   groups run their common pre-trigger prefix once; siblings resume from
   mid-run captures.  Knob: ``share_prefixes=``.
4. **Run-to-completion pooled batches**
   (:mod:`repro.core.controller.executor`) — groups are packed into one
   :class:`GroupBatchTask` per worker and each worker drains its batch
   back-to-back (warm template, one result message) instead of paying a
   pool round trip per group.  The default packing is cost-adaptive:
   oversized prefix families split into sub-groups and batches balance
   by modeled cost (LPT) rather than naive round-robin.  Knobs:
   ``parallelism=``, ``group_sched=`` / ``REPRO_GROUP_SCHED``
   (``adaptive`` | ``static``).
5. **Delta result channel** (:mod:`repro.targets.base`,
   :mod:`repro.oslib.os_model`) — workers publish each run's OS as a
   :class:`~repro.targets.base.DeltaOSClone` carrying only the subsystems
   the run changed since boot; the parent rehydrates lazily against its
   memoized boot template.  Knob: ``os_channel=`` (``delta`` | ``full``).

Walking the layers from a campaign entry point::

    campaign.run(scenarios,                      # layer 1: engine="compiled"
                 share_prefixes=True,            # layer 3: prefix groups
                 parallelism="processes:4")      # layers 4+5: batched pool
                                                 #   fan-out, delta results
    campaign.run(scenarios,                      # the full reference stack:
                 share_prefixes=False,           #   per-scenario runs,
                 engine="reference",             #   decode-as-you-go VM,
                 snapshots=False,                #   fresh builds,
                 os_channel="full")              #   full-state results

``benchmarks/bench_dataplane.py`` measures the stack end to end in
``BENCH_dataplane.json`` (block-batched VM throughput per engine, pooled
shared-campaign throughput vs the PR 5 baseline, and published-result wire
bytes full vs delta).

**Suffix memoization and cost-adaptive scheduling.**  On top of the
pipeline, :mod:`repro.core.controller.memo` never pays for an
already-probed fault point twice: a process-wide LRU byte-budget cache
maps member memo keys — capture fingerprint, fault class and values,
errno, and every behaviour-relevant execution knob — to pickled results,
so re-sweeps, resumed campaigns, and overlapping specs on a long-lived
fabric worker answer from the memo instead of re-executing the suffix
(``memo=`` / ``REPRO_MEMO`` / ``REPRO_MEMO_BYTES``; ``memo=False`` is
the differential oracle path).  Group batches are planned by a cost
model (:func:`~repro.core.controller.executor.plan_group_batches`):
skewed prefix families split into sub-groups that re-resume from the
shared capture, and batches pack by longest-processing-time.  The full
pipeline — group keys → prefix tree → suffix memo → adaptive split —
is documented in ``doc/SCHEDULING.md``; campaign runs surface
boot-template and memo hit/miss counters in
:attr:`CampaignResult.stats <repro.core.controller.campaign.CampaignResult>`
and ``repro-campaign status``.  ``benchmarks/bench_sched.py`` tracks the
layer in ``BENCH_sched.json`` (warm-memo re-sweeps, cross-workload
boot-template reuse, adaptive vs round-robin makespan — every leg
asserted bit-identical to the memo-free serial oracle).

**The campaign fabric: a resident coordinator and worker nodes.**  For
explorations that outlive one process, :mod:`repro.distributed` runs the
same campaigns as a service.  A resident coordinator daemon
(``repro-campaignd serve``) accepts :class:`~repro.distributed.CampaignSpec`
submissions over a line-oriented JSON wire protocol (one JSON object per
newline-terminated line — the result store's own format; reference:
``doc/PROTOCOL.md``), shards the schedule across pull-model worker nodes
(``repro-campaignd worker``, each wrapping the local engine/pool stack
above), and streams results to tailing clients as they complete.  Because
the schedule is a pure function of the spec, coordinator and workers derive
it independently and exchange only ``(spec, schedule indices)`` — and the
merged results are **bit-identical** to a serial
:meth:`ExplorationEngine.explore` run.  Worker links carry leases with
heartbeats: a dead worker's unfinished shard re-queues automatically, and a
slow worker whose lease was reassigned is told ``stale_lease`` (duplicate
records are idempotent).  Every record is flushed — and fsynced, under the
default ``durable`` knob — to the campaign's JSON-lines store *before* it
is acknowledged, so the store is the only durable state: kill the
coordinator (or a worker, or both) mid-campaign, restart, and resubmitting
the same spec resumes from the checkpoint, re-running nothing already
stored.  A torn final line (a kill mid-append) is detected and truncated;
interior store corruption raises
:class:`~repro.core.exploration.StoreCorruptError` instead of silently
mis-scheduling completed work.  The ``repro-campaign`` CLI wraps the client
side (``submit``/``status``/``tail``/``results``/``cancel``)::

    $ repro-campaignd serve --port 7070 &
    $ repro-campaignd worker --port 7070 &
    $ repro-campaign submit --target mini_git --workload status \\
          --seed 7 --store /tmp/git.jsonl --wait
    # ... kill the daemon mid-campaign, restart it, and resubmit:
    $ repro-campaign submit --target mini_git --workload status \\
          --seed 7 --store /tmp/git.jsonl --wait   # "resumed": <n done>

``tests/test_campaignd.py`` drives a multi-worker campaign through the
wire protocol, kills a worker and the coordinator mid-campaign, and
asserts the merged results stay bit-identical to the serial oracle.

**Adaptive round-based exploration.**  Exploration strategies are
stateful *planner sessions* (``strategy.session().propose(frontier,
feedback)``): the engine plans a round, executes it through the whole
pipeline above, feeds back each probe's recovery-region coverage delta,
and replans.  :class:`CoverageGuidedStrategy` (``strategy="coverage"``)
steers rounds toward fault points whose neighbours unlocked new
recovery-code coverage — the paper's own Table 3 metric — and stops at
a coverage plateau instead of sweeping the full space; the static
strategies are behaviour-identical single-round planners and remain the
differential oracle.  The fixed suffix-cost constant that steered LPT
group packing became a learned, serializable
:class:`~repro.core.controller.costmodel.CostModel` (online least
squares over measured group runtimes, blended with the 0.35 prior), and
protocol v3 teaches the campaign fabric central round planning: the
coordinator holds the planner, leases only the current round as
explicit ``(index, point key)`` assignments, and aggregates cost-model
observations fleet-wide.  Adaptive runs obey *"spec + completed results
⇒ next round"*, so serial, pooled, and distributed explorations of the
same store are bit-identical.  Reference: ``doc/ADAPTIVE.md``.

**Structured fault classes.**  Beyond the classic (return value, errno)
pair, :mod:`repro.core.faults` defines a taxonomy of structured classes —
partial writes/short reads, fd/heap-exhaustion ramps, clock skew and
jumps, network drop/partition/reorder for the PBFT cluster, and
crash-consistency kills that murder the world at the Nth write (optionally
after a torn partial write) and then replay a recovery workload against
the surviving fs state, with the target's data oracles run post-recovery.
Each class is a first-class campaign dimension: enumerated by
:func:`~repro.core.exploration.space.enumerate_structured_space` into
points with stable keys (``mini_git:write#2:partial_write[fraction=0.5]``),
deduplicated along the class axis, serialized through injection logs and
result stores (old errno-only stores load and resume unchanged), swept via
``CampaignSpec(fault_classes=[...])`` (validated at submit time), and held
to the same differential contract — compiled == reference engine, serial
== pooled == distributed (``tests/test_faults.py``,
``benchmarks/bench_faults.py`` writing ``BENCH_faults.json``).  Campaign
traces carry per-function call counts, and
:func:`repro.coverage.report.build_usage_profile` turns any trace into a
BEACON-style per-target usage profile (call volume per library function,
classes swept, failure concentration, unswept gap list).  Reference:
``doc/FAULTS.md``::

    scenario = structured_scenario("crash_point", "write", nth=2,
                                   params={"torn": 1, "fraction": 0.5},
                                   recovery_workload="status")
    result = resolve_target("mini_git").run(
        WorkloadRequest(workload="commit", scenario=scenario))
    # data-loss: committed object .../incoming is truncated (8 of 16 bytes)

The main layers:

* :mod:`repro.core` — the paper's contribution: triggers, scenarios,
  injection runtime, profiler, call-site analyzer, controller.
* :mod:`repro.isa`, :mod:`repro.minicc`, :mod:`repro.vm` — the binary
  substrate (instruction set, compiler, virtual machine).
* :mod:`repro.oslib` — simulated OS and libc (the fault boundary).
* :mod:`repro.coverage` — recovery-code coverage measurement.
* :mod:`repro.targets` — the five simulated systems under test.
* :mod:`repro.experiments` — harnesses regenerating every table and figure.
"""

from repro.core.analysis.analyzer import AnalysisReport, CallSiteAnalyzer
from repro.core.controller.campaign import TestCampaign
from repro.core.controller.controller import ControllerReport, LFIController
from repro.core.controller.executor import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    estimate_group_cost,
    plan_group_batches,
    resolve_backend,
)
from repro.core.controller.memo import SuffixMemo, clear_suffix_memo, suffix_memo
from repro.core.controller.target import WorkloadRequest
from repro.core.exploration import (
    BoundarySampleStrategy,
    CoverageGuidedStrategy,
    ExhaustiveStrategy,
    ExplorationEngine,
    ExplorationReport,
    ExplorationStrategy,
    ProbeFeedback,
    RandomSampleStrategy,
    ResultStore,
    enumerate_fault_space,
)
from repro.core.injection.context import CallContext
from repro.core.injection.faults import FaultSpec
from repro.core.injection.gate import LibraryCallGate
from repro.core.injection.log import InjectionLog
from repro.core.injection.runtime import InjectionRuntime
from repro.core.profiler.cache import (
    cached_all_library_binaries,
    cached_library_binary,
    cached_merged_profile,
    clear_artifact_cache,
)
from repro.core.profiler.static_profiler import LibraryProfiler, profile_library
from repro.core.scenario.builder import ScenarioBuilder
from repro.core.scenario.model import Scenario
from repro.core.scenario.xml_io import parse_scenario_xml, scenario_to_xml
from repro.core.triggers.base import Trigger, declare_trigger
from repro.minicc.compiler import compile_source
from repro.oslib.libc_binary import build_all_library_binaries, build_library_binary
from repro.oslib.os_model import SimOS
from repro.vm.machine import Machine
from repro.vm.snapshot import BootTemplate, MachineSnapshot, MidRunCapture

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport",
    "BootTemplate",
    "BoundarySampleStrategy",
    "CallContext",
    "CallSiteAnalyzer",
    "ControllerReport",
    "CoverageGuidedStrategy",
    "ExecutionBackend",
    "ExhaustiveStrategy",
    "ExplorationEngine",
    "ExplorationReport",
    "ExplorationStrategy",
    "FaultSpec",
    "InjectionLog",
    "InjectionRuntime",
    "LFIController",
    "LibraryCallGate",
    "LibraryProfiler",
    "Machine",
    "MachineSnapshot",
    "MidRunCapture",
    "ProbeFeedback",
    "ProcessPoolBackend",
    "RandomSampleStrategy",
    "ResultStore",
    "Scenario",
    "ScenarioBuilder",
    "SerialBackend",
    "SimOS",
    "SuffixMemo",
    "TestCampaign",
    "ThreadPoolBackend",
    "Trigger",
    "WorkloadRequest",
    "build_all_library_binaries",
    "build_library_binary",
    "cached_all_library_binaries",
    "cached_library_binary",
    "cached_merged_profile",
    "clear_artifact_cache",
    "compile_source",
    "declare_trigger",
    "clear_suffix_memo",
    "enumerate_fault_space",
    "estimate_group_cost",
    "parse_scenario_xml",
    "plan_group_batches",
    "profile_library",
    "resolve_backend",
    "suffix_memo",
    "scenario_to_xml",
    "__version__",
]
