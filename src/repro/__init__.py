"""LFI reproduction: high-precision testing of recovery code.

This package reproduces the system described in *An Extensible Technique
for High-Precision Testing of Recovery Code* (Marinescu, Banabic, Candea —
USENIX ATC 2010): the **LFI** library-level fault injector with its trigger
mechanism, XML fault-injection language, library profiler and call-site
analyzer — plus every substrate the evaluation needs (a synthetic ISA and
VM, a mini-C compiler, a simulated OS/libc, and analogs of BIND, Git,
MySQL, Apache and PBFT).

Quick tour (see ``examples/quickstart.py`` for a runnable version)::

    from repro import (
        CallSiteAnalyzer, LFIController, ScenarioBuilder, compile_source,
    )
    from repro.targets.mini_git import MiniGitTarget

    controller = LFIController(MiniGitTarget())
    report = controller.test_automatically(workloads=["default-tests"])
    print(report.summary())

The main layers:

* :mod:`repro.core` — the paper's contribution: triggers, scenarios,
  injection runtime, profiler, call-site analyzer, controller.
* :mod:`repro.isa`, :mod:`repro.minicc`, :mod:`repro.vm` — the binary
  substrate (instruction set, compiler, virtual machine).
* :mod:`repro.oslib` — simulated OS and libc (the fault boundary).
* :mod:`repro.coverage` — recovery-code coverage measurement.
* :mod:`repro.targets` — the five simulated systems under test.
* :mod:`repro.experiments` — harnesses regenerating every table and figure.
"""

from repro.core.analysis.analyzer import AnalysisReport, CallSiteAnalyzer
from repro.core.controller.controller import ControllerReport, LFIController
from repro.core.controller.target import WorkloadRequest
from repro.core.injection.context import CallContext
from repro.core.injection.faults import FaultSpec
from repro.core.injection.gate import LibraryCallGate
from repro.core.injection.log import InjectionLog
from repro.core.injection.runtime import InjectionRuntime
from repro.core.profiler.static_profiler import LibraryProfiler, profile_library
from repro.core.scenario.builder import ScenarioBuilder
from repro.core.scenario.model import Scenario
from repro.core.scenario.xml_io import parse_scenario_xml, scenario_to_xml
from repro.core.triggers.base import Trigger, declare_trigger
from repro.minicc.compiler import compile_source
from repro.oslib.libc_binary import build_all_library_binaries, build_library_binary
from repro.oslib.os_model import SimOS
from repro.vm.machine import Machine

__version__ = "1.0.0"

__all__ = [
    "AnalysisReport",
    "CallContext",
    "CallSiteAnalyzer",
    "ControllerReport",
    "FaultSpec",
    "InjectionLog",
    "InjectionRuntime",
    "LFIController",
    "LibraryCallGate",
    "LibraryProfiler",
    "Machine",
    "Scenario",
    "ScenarioBuilder",
    "SimOS",
    "Trigger",
    "WorkloadRequest",
    "build_all_library_binaries",
    "build_library_binary",
    "compile_source",
    "declare_trigger",
    "parse_scenario_xml",
    "profile_library",
    "scenario_to_xml",
    "__version__",
]
