"""The per-process simulated OS state.

A :class:`SimOS` bundles everything one simulated process can touch through
libc: the filesystem, heap, network endpoint, environment, mutex table,
clock and the standard output/error streams.  Distributed experiments
(PBFT) create one ``SimOS`` per node, sharing a single
:class:`~repro.oslib.net.SimNetwork` and :class:`~repro.oslib.clock.SimClock`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.oslib.clock import SimClock
from repro.oslib.env import SimEnvironment
from repro.oslib.fs import SimFileSystem
from repro.oslib.heap import SimHeap
from repro.oslib.net import SimNetwork
from repro.oslib.sync import MutexTable


class SimOS:
    """All OS-visible state of one simulated process."""

    def __init__(
        self,
        name: str = "process",
        network: Optional[SimNetwork] = None,
        clock: Optional[SimClock] = None,
        environment: Optional[Dict[str, str]] = None,
        heap_capacity: Optional[int] = None,
    ) -> None:
        self.name = name
        self.fs = SimFileSystem()
        self.heap = SimHeap() if heap_capacity is None else SimHeap(capacity=heap_capacity)
        self.network = network if network is not None else SimNetwork()
        self.clock = clock if clock is not None else SimClock()
        self.env = SimEnvironment(environment)
        self.mutexes = MutexTable()
        self.stdout: List[str] = []
        self.stderr: List[str] = []
        #: Exit status recorded by ``exit``/``abort`` (None while running).
        self.exit_code: Optional[int] = None
        self.aborted = False
        #: Free-form counters used by target applications and bug oracles.
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # convenience used by targets, workloads, and oracles
    # ------------------------------------------------------------------
    def write_stdout(self, text: str) -> None:
        self.stdout.append(text)

    def write_stderr(self, text: str) -> None:
        self.stderr.append(text)

    def stdout_text(self) -> str:
        return "".join(self.stdout)

    def stderr_text(self) -> str:
        return "".join(self.stderr)

    def bump(self, counter: str, amount: int = 1) -> int:
        self.counters[counter] = self.counters.get(counter, 0) + amount
        return self.counters[counter]

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def reset_streams(self) -> None:
        self.stdout.clear()
        self.stderr.clear()

    def reset(self) -> None:
        """Reset per-run oracle state for OS reuse across runs.

        ``reset_streams`` alone leaks oracle state when the same OS instance
        backs several runs: a previous run's counters, recorded exit code,
        or abort flag would be misread as this run's behaviour.  Network
        delivery hooks are run-scoped observers/fault installs (partitions,
        drop-alls) and leak the same way — a partition injected by one run
        must never silently black-hole the next run's traffic.
        """
        self.reset_streams()
        self.counters.clear()
        self.exit_code = None
        self.aborted = False
        self.network.clear_delivery_hooks()

    # ------------------------------------------------------------------
    # snapshot support (repro.vm.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self) -> Dict[str, object]:
        """Capture every subsystem's state plus the process-level fields.

        The shared substrates of distributed experiments (network, clock)
        are captured too: for a single-process target they belong to this
        OS, and for a multi-node cluster the caller snapshots each node —
        restoring any one of them puts the shared objects back as well.
        """
        return {
            "name": self.name,
            "fs": self.fs.capture_state(),
            "heap": self.heap.capture_state(),
            "network": self.network.capture_state(),
            "clock": self.clock.capture_state(),
            "env": self.env.capture_state(),
            "mutexes": self.mutexes.capture_state(),
            "stdout": list(self.stdout),
            "stderr": list(self.stderr),
            "exit_code": self.exit_code,
            "aborted": self.aborted,
            "counters": dict(self.counters),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore this instance (in place) to a :meth:`capture_state` copy.

        In-place restoration is deliberate: the VM, libc, and facade all
        hold references to this object and its subsystems, and every one of
        those references stays valid across a restore.
        """
        self.name = state["name"]
        self.fs.restore_state(state["fs"])
        self.heap.restore_state(state["heap"])
        self.network.restore_state(state["network"])
        self.clock.restore_state(state["clock"])
        self.env.restore_state(state["env"])
        self.mutexes.restore_state(state["mutexes"])
        self.stdout[:] = state["stdout"]
        self.stderr[:] = state["stderr"]
        self.exit_code = state["exit_code"]
        self.aborted = state["aborted"]
        self.counters.clear()
        self.counters.update(state["counters"])

    def clone(self) -> "SimOS":
        """A detached copy of this OS (used to publish post-run state)."""
        copy = SimOS(self.name)
        copy.restore_state(self.capture_state())
        return copy

    def lazy_clone(self) -> "LazyOSClone":
        """A detached copy whose object graph is built on first access.

        The state is captured now (this OS may be rewound for the next
        fork the moment the call returns) but the SimOS reconstruction is
        deferred: campaign runs publish their final OS in ``stats`` far
        more often than anyone inspects it.
        """
        return LazyOSClone(self.capture_state())


class LazyOSClone:
    """A :class:`SimOS` stand-in hydrated from captured state on first use."""

    __slots__ = ("_state", "_os")

    def __init__(self, state: Dict[str, object]) -> None:
        self._state = state
        self._os = None

    def _hydrate(self) -> SimOS:
        if self._os is None:
            os = SimOS(self._state["name"])
            os.restore_state(self._state)
            self._os = os
        return self._os

    def __getattr__(self, name: str):
        if name.startswith("_"):
            # Never resolve internals through the proxy: during unpickling
            # (pools ship RunResults across processes) ``__getattr__`` runs
            # before the slots exist, and forwarding ``_state``/``_os``
            # would recurse into ``_hydrate`` forever.
            raise AttributeError(name)
        return getattr(self._hydrate(), name)

    def __getstate__(self) -> Dict[str, object]:
        return self._state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._state = state
        self._os = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LazyOSClone({self._state['name']!r})"


#: Sentinel distinguishing "key absent from base" from "key maps to None".
_MISSING = object()


def diff_state(base: Dict[str, object], current: Dict[str, object]) -> Dict[str, object]:
    """Subsystem-level delta between two :meth:`SimOS.capture_state` dicts.

    Returns the entries of *current* that differ from *base* — the wire form
    the delta result channel ships instead of the full captured state.  A
    boot-identical subsystem (untouched filesystem, empty heap, ...) costs
    nothing on the wire; :func:`merge_state` over the same base reproduces
    *current* exactly.
    """
    return {
        key: value
        for key, value in current.items()
        if base.get(key, _MISSING) != value
    }


def merge_state(base: Dict[str, object], delta: Dict[str, object]) -> Dict[str, object]:
    """Rebuild a full captured state from *base* plus a :func:`diff_state`."""
    merged = dict(base)
    merged.update(delta)
    return merged


__all__ = ["LazyOSClone", "SimOS", "diff_state", "merge_state"]
