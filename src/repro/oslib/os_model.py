"""The per-process simulated OS state.

A :class:`SimOS` bundles everything one simulated process can touch through
libc: the filesystem, heap, network endpoint, environment, mutex table,
clock and the standard output/error streams.  Distributed experiments
(PBFT) create one ``SimOS`` per node, sharing a single
:class:`~repro.oslib.net.SimNetwork` and :class:`~repro.oslib.clock.SimClock`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.oslib.clock import SimClock
from repro.oslib.env import SimEnvironment
from repro.oslib.fs import SimFileSystem
from repro.oslib.heap import SimHeap
from repro.oslib.net import SimNetwork
from repro.oslib.sync import MutexTable


class SimOS:
    """All OS-visible state of one simulated process."""

    def __init__(
        self,
        name: str = "process",
        network: Optional[SimNetwork] = None,
        clock: Optional[SimClock] = None,
        environment: Optional[Dict[str, str]] = None,
        heap_capacity: Optional[int] = None,
    ) -> None:
        self.name = name
        self.fs = SimFileSystem()
        self.heap = SimHeap() if heap_capacity is None else SimHeap(capacity=heap_capacity)
        self.network = network if network is not None else SimNetwork()
        self.clock = clock if clock is not None else SimClock()
        self.env = SimEnvironment(environment)
        self.mutexes = MutexTable()
        self.stdout: List[str] = []
        self.stderr: List[str] = []
        #: Exit status recorded by ``exit``/``abort`` (None while running).
        self.exit_code: Optional[int] = None
        self.aborted = False
        #: Free-form counters used by target applications and bug oracles.
        self.counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # convenience used by targets, workloads, and oracles
    # ------------------------------------------------------------------
    def write_stdout(self, text: str) -> None:
        self.stdout.append(text)

    def write_stderr(self, text: str) -> None:
        self.stderr.append(text)

    def stdout_text(self) -> str:
        return "".join(self.stdout)

    def stderr_text(self) -> str:
        return "".join(self.stderr)

    def bump(self, counter: str, amount: int = 1) -> int:
        self.counters[counter] = self.counters.get(counter, 0) + amount
        return self.counters[counter]

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def reset_streams(self) -> None:
        self.stdout.clear()
        self.stderr.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimOS({self.name!r})"


__all__ = ["SimOS"]
