"""POSIX mutex semantics for the simulated process.

Two of the paper's artifacts depend on mutex behaviour:

* the ``WithMutex`` custom trigger counts ``pthread_mutex_lock`` /
  ``pthread_mutex_unlock`` calls to know whether the caller holds a lock, and
* the MySQL bug in Table 1 is a **double unlock**: error-handling code after
  a failed ``close`` releases a mutex that the normal path already released,
  which crashes the process (error-checking mutexes abort).

:class:`MutexTable` reproduces that behaviour: unlocking a mutex that is not
held raises :class:`~repro.oslib.errors.MutexAbort`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.oslib.errno_codes import Errno
from repro.oslib.errors import MutexAbort, OSFault


@dataclass
class Mutex:
    mutex_id: int
    locked: bool = False
    owner: Optional[int] = None
    lock_count: int = 0
    history: List[str] = field(default_factory=list)


class MutexTable:
    """All mutexes of one simulated process."""

    def __init__(self, strict: bool = True) -> None:
        #: When True (default), unlock of a non-held mutex aborts the process,
        #: matching glibc error-checking mutexes and the MySQL crash.
        self.strict = strict
        self._mutexes: Dict[int, Mutex] = {}
        self.total_locks = 0
        self.total_unlocks = 0

    def _mutex(self, mutex_id: int, create: bool = False) -> Mutex:
        mutex = self._mutexes.get(mutex_id)
        if mutex is None:
            if not create and self.strict:
                # Lazily create anyway: programs commonly use statically
                # initialized mutexes that were never explicitly init'ed.
                pass
            mutex = Mutex(mutex_id=mutex_id)
            self._mutexes[mutex_id] = mutex
        return mutex

    # ------------------------------------------------------------------
    def init(self, mutex_id: int) -> int:
        self._mutexes[mutex_id] = Mutex(mutex_id=mutex_id)
        return 0

    def destroy(self, mutex_id: int) -> int:
        mutex = self._mutexes.get(mutex_id)
        if mutex is None:
            raise OSFault(Errno.EINVAL, f"destroy of unknown mutex {mutex_id:#x}")
        if mutex.locked:
            raise OSFault(Errno.EBUSY, f"destroy of locked mutex {mutex_id:#x}")
        del self._mutexes[mutex_id]
        return 0

    def lock(self, mutex_id: int, thread_id: int = 1) -> int:
        mutex = self._mutex(mutex_id, create=True)
        if mutex.locked and mutex.owner == thread_id:
            raise OSFault(Errno.EDEADLK, f"relock of mutex {mutex_id:#x}")
        mutex.locked = True
        mutex.owner = thread_id
        mutex.lock_count += 1
        mutex.history.append("lock")
        self.total_locks += 1
        return 0

    def unlock(self, mutex_id: int, thread_id: int = 1) -> int:
        mutex = self._mutex(mutex_id, create=True)
        if not mutex.locked:
            mutex.history.append("bad-unlock")
            if self.strict:
                raise MutexAbort(mutex_id, "unlock of a mutex that is not locked (double unlock)")
            raise OSFault(Errno.EPERM, f"unlock of unlocked mutex {mutex_id:#x}")
        if mutex.owner != thread_id:
            mutex.history.append("bad-unlock")
            if self.strict:
                raise MutexAbort(mutex_id, "unlock by a thread that does not own the mutex")
            raise OSFault(Errno.EPERM, f"unlock by non-owner of mutex {mutex_id:#x}")
        mutex.locked = False
        mutex.owner = None
        mutex.history.append("unlock")
        self.total_unlocks += 1
        return 0

    # ------------------------------------------------------------------
    # snapshot support (repro.vm.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        return {
            "strict": self.strict,
            "total_locks": self.total_locks,
            "total_unlocks": self.total_unlocks,
            "mutexes": {
                mutex_id: (mutex.locked, mutex.owner, mutex.lock_count,
                           list(mutex.history))
                for mutex_id, mutex in self._mutexes.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        self.strict = state["strict"]
        self.total_locks = state["total_locks"]
        self.total_unlocks = state["total_unlocks"]
        self._mutexes = {}
        for mutex_id, (locked, owner, lock_count, history) in state["mutexes"].items():
            self._mutexes[mutex_id] = Mutex(
                mutex_id=mutex_id, locked=locked, owner=owner,
                lock_count=lock_count, history=list(history),
            )

    # ------------------------------------------------------------------
    def is_locked(self, mutex_id: int) -> bool:
        mutex = self._mutexes.get(mutex_id)
        return bool(mutex and mutex.locked)

    def held_count(self, thread_id: int = 1) -> int:
        return sum(
            1
            for mutex in self._mutexes.values()
            if mutex.locked and mutex.owner == thread_id
        )

    def history(self, mutex_id: int) -> List[str]:
        mutex = self._mutexes.get(mutex_id)
        return list(mutex.history) if mutex else []


__all__ = ["Mutex", "MutexTable"]
