"""Simulated clock.

Throughput experiments (Figure 3, the DoS study, Tables 5 and 6) run on
simulated time so they are fast and deterministic: message latency, request
processing cost and retransmission timeouts all advance this clock instead
of sleeping.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock (seconds as float)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative amount {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def reset(self, start: float = 0.0) -> None:
        self._now = float(start)

    # snapshot support (repro.vm.snapshot)
    def capture_state(self) -> float:
        return self._now

    def restore_state(self, state: float) -> None:
        self._now = float(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"


__all__ = ["SimClock"]
