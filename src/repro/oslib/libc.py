"""The simulated libc: function specifications and word-level semantics.

Two things live here:

* :data:`LIBC_FUNCTIONS` — the specification of every interceptable library
  function: its arity, which library exports it, which error return values
  it can produce and which ``errno`` values accompany them.  This is the
  ground truth that the synthetic ``libc.so`` binary is generated from and
  that the LFI profiler's inferences are validated against.
* :class:`SimLibc` — the runtime implementation used when compiled programs
  execute inside the VM.  Arguments are machine words; pointers are VM
  addresses and buffers are marshalled through a :class:`MemoryAccess`
  object provided by the VM.

Genuine failures of the simulated OS surface as
:class:`~repro.oslib.errors.OSFault` and are converted here into the
C conventions (``-1``/``NULL`` return plus ``errno``), exactly like a real
libc converts kernel errors.  *Injected* failures never reach this module —
the fault-injection gate short-circuits them at the boundary, which is the
whole point of library-level fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Protocol, Sequence, Tuple

from repro.isa import layout
from repro.oslib import fs as fsmod
from repro.oslib.errno_codes import Errno
from repro.oslib.errors import MemoryFault, OSFault, SimExit
from repro.oslib.os_model import SimOS

# fcntl commands (subset).
F_GETFL = 3
F_SETFL = 4
F_GETLK = 5
F_SETLK = 6


# ----------------------------------------------------------------------
# specification model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorReturn:
    """One externalized error: a return value plus possible errno values."""

    value: int
    errnos: Tuple[str, ...] = ()


@dataclass(frozen=True)
class LibcFunctionSpec:
    """Static description of one library function."""

    name: str
    argc: int
    library: str = "libc"
    error_returns: Tuple[ErrorReturn, ...] = ()
    #: Human description of the success return ("byte count", "pointer", ...).
    success: str = "value"
    #: True when the function reports errors through its return value rather
    #: than errno (pthread_* and apr_* conventions).
    errno_via_return: bool = False
    #: True for functions returning pointers (NULL signals failure).
    returns_pointer: bool = False

    @property
    def default_error_value(self) -> int:
        if self.error_returns:
            return self.error_returns[0].value
        return -1

    def error_values(self) -> Tuple[int, ...]:
        return tuple(er.value for er in self.error_returns)

    def all_errnos(self) -> Tuple[str, ...]:
        names = []
        for er in self.error_returns:
            for name in er.errnos:
                if name not in names:
                    names.append(name)
        return tuple(names)


def _spec(
    name: str,
    argc: int,
    error_returns: Sequence[Tuple[int, Sequence[str]]] = (),
    library: str = "libc",
    success: str = "value",
    errno_via_return: bool = False,
    returns_pointer: bool = False,
) -> LibcFunctionSpec:
    return LibcFunctionSpec(
        name=name,
        argc=argc,
        library=library,
        error_returns=tuple(ErrorReturn(value, tuple(errnos)) for value, errnos in error_returns),
        success=success,
        errno_via_return=errno_via_return,
        returns_pointer=returns_pointer,
    )


#: Every function the injector can intercept, keyed by name.
LIBC_FUNCTIONS: Dict[str, LibcFunctionSpec] = {
    spec.name: spec
    for spec in [
        # --- memory -----------------------------------------------------
        _spec("malloc", 1, [(0, ["ENOMEM"])], success="pointer", returns_pointer=True),
        _spec("calloc", 2, [(0, ["ENOMEM"])], success="pointer", returns_pointer=True),
        _spec("realloc", 2, [(0, ["ENOMEM"])], success="pointer", returns_pointer=True),
        _spec("free", 1, [], success="void"),
        # --- file descriptors --------------------------------------------
        _spec("open", 2, [(-1, ["ENOENT", "EACCES", "EMFILE", "EINTR"])], success="fd"),
        _spec("close", 1, [(-1, ["EBADF", "EIO", "EINTR"])], success="zero"),
        _spec("read", 3, [(-1, ["EAGAIN", "EBADF", "EINTR", "EIO"])], success="byte count"),
        _spec("write", 3, [(-1, ["EAGAIN", "EBADF", "EINTR", "EIO", "ENOSPC"])], success="byte count"),
        _spec("lseek", 3, [(-1, ["EBADF", "EINVAL", "ESPIPE"])], success="offset"),
        _spec("fstat", 2, [(-1, ["EBADF"])], success="zero"),
        _spec("stat", 2, [(-1, ["ENOENT", "EACCES"])], success="zero"),
        _spec("unlink", 1, [(-1, ["ENOENT", "EACCES", "EPERM"])], success="zero"),
        _spec("readlink", 3, [(-1, ["ENOENT", "EINVAL", "EACCES"])], success="length"),
        _spec("mkdir", 2, [(-1, ["EEXIST", "EACCES", "ENOENT"])], success="zero"),
        _spec("fcntl", 3, [(-1, ["EACCES", "EAGAIN", "EBADF", "EDEADLK", "EINTR"])], success="value"),
        # --- stdio --------------------------------------------------------
        _spec("fopen", 2, [(0, ["ENOENT", "EACCES", "EMFILE", "ENOMEM"])], success="FILE*", returns_pointer=True),
        _spec("fclose", 1, [(-1, ["EBADF", "EIO"])], success="zero"),
        _spec("fread", 4, [(0, ["EIO"])], success="item count"),
        _spec("fwrite", 4, [(0, ["EIO", "ENOSPC"])], success="item count"),
        _spec("fgets", 3, [(0, ["EIO"])], success="pointer", returns_pointer=True),
        _spec("fseek", 3, [(-1, ["EBADF", "EINVAL"])], success="zero"),
        _spec("puts", 1, [(-1, ["EIO"])], success="length"),
        # --- directories --------------------------------------------------
        _spec("opendir", 1, [(0, ["ENOENT", "EACCES", "ENOMEM", "EMFILE"])], success="DIR*", returns_pointer=True),
        _spec("readdir", 1, [(0, ["EBADF"])], success="dirent*", returns_pointer=True),
        _spec("closedir", 1, [(-1, ["EBADF"])], success="zero"),
        # --- sockets -------------------------------------------------------
        _spec("socket", 3, [(-1, ["EMFILE", "ENOMEM", "EACCES"])], success="fd"),
        _spec("bind", 3, [(-1, ["EADDRINUSE", "EACCES"])], success="zero"),
        _spec("sendto", 6, [(-1, ["EAGAIN", "EINTR", "ENETDOWN", "EMSGSIZE"])], success="byte count"),
        _spec("recvfrom", 6, [(-1, ["EAGAIN", "EINTR", "ENETDOWN", "ECONNREFUSED"])], success="byte count"),
        # --- environment ---------------------------------------------------
        _spec("setenv", 3, [(-1, ["ENOMEM", "EINVAL"])], success="zero"),
        _spec("getenv", 1, [(0, [])], success="pointer", returns_pointer=True),
        # --- threads / sync -------------------------------------------------
        _spec("pthread_mutex_init", 2, [(Errno.EAGAIN.value, []), (Errno.ENOMEM.value, [])],
              library="libpthread", success="zero", errno_via_return=True),
        _spec("pthread_mutex_lock", 1, [(Errno.EINVAL.value, []), (Errno.EDEADLK.value, [])],
              library="libpthread", success="zero", errno_via_return=True),
        _spec("pthread_mutex_unlock", 1, [(Errno.EINVAL.value, []), (Errno.EPERM.value, [])],
              library="libpthread", success="zero", errno_via_return=True),
        _spec("pthread_mutex_destroy", 1, [(Errno.EBUSY.value, []), (Errno.EINVAL.value, [])],
              library="libpthread", success="zero", errno_via_return=True),
        _spec("pthread_self", 0, [], library="libpthread", success="thread id"),
        # --- misc ------------------------------------------------------------
        _spec("time", 1, [(-1, [])], success="seconds"),
        _spec("getpid", 0, [], success="pid"),
        _spec("abort", 0, [], success="void"),
        _spec("exit", 1, [], success="void"),
        _spec("assert_fail", 1, [], success="void"),
        # --- string/memory helpers (no meaningful error returns) -------------
        _spec("strlen", 1, [], success="length"),
        _spec("strcmp", 2, [], success="ordering"),
        _spec("strcpy", 2, [], success="pointer", returns_pointer=True),
        _spec("memset", 3, [], success="pointer", returns_pointer=True),
        _spec("memcpy", 3, [], success="pointer", returns_pointer=True),
        _spec("atoi", 1, [], success="value"),
        # --- libxml2 (BIND statistics channel) --------------------------------
        _spec("xmlNewTextWriterDoc", 2, [(0, ["ENOMEM"])], library="libxml2",
              success="writer*", returns_pointer=True),
        _spec("xmlTextWriterStartDocument", 2, [(-1, [])], library="libxml2", success="bytes"),
        _spec("xmlTextWriterWriteString", 2, [(-1, [])], library="libxml2", success="bytes"),
        _spec("xmlTextWriterEndDocument", 1, [(-1, [])], library="libxml2", success="bytes"),
        _spec("xmlFreeTextWriter", 1, [], library="libxml2", success="void"),
        # --- libapr (Apache portable runtime) ----------------------------------
        _spec("apr_file_read", 3, [(70008, []), (70014, [])], library="libapr",
              success="status", errno_via_return=True),
        _spec("apr_stat", 4, [(70008, []), (2, [])], library="libapr",
              success="status", errno_via_return=True),
    ]
}


def spec_for(name: str) -> LibcFunctionSpec:
    try:
        return LIBC_FUNCTIONS[name]
    except KeyError as exc:
        raise KeyError(f"unknown library function {name!r}") from exc


def libraries() -> Tuple[str, ...]:
    return tuple(sorted({spec.library for spec in LIBC_FUNCTIONS.values()}))


def functions_of_library(library: str) -> Tuple[LibcFunctionSpec, ...]:
    return tuple(
        spec for spec in LIBC_FUNCTIONS.values() if spec.library == library
    )


# ----------------------------------------------------------------------
# runtime result / memory protocol
# ----------------------------------------------------------------------
@dataclass
class LibcResult:
    """Outcome of a library call as seen by the caller."""

    value: int
    errno: Optional[int] = None
    injected: bool = False
    #: Out-of-band payload for the Python facade (e.g. bytes read).
    payload: Dict[str, object] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.errno is not None


class MemoryAccess(Protocol):
    """What SimLibc needs from the VM memory to marshal buffers."""

    def load(self, address: int) -> int:  # pragma: no cover - protocol
        ...

    def store(self, address: int, value: int) -> None:  # pragma: no cover - protocol
        ...


_FILE_MAGIC = 0xF11E
_DIR_MAGIC = 0xD1D1


def read_c_string(mem: MemoryAccess, address: int, limit: int = 4096) -> str:
    """Read a NUL-terminated string (one character per word)."""
    if layout.is_null_page(address):
        raise MemoryFault(address, "string read through NULL pointer")
    chars = []
    for offset in range(limit):
        word = mem.load(address + offset)
        if word == 0:
            break
        chars.append(chr(word & 0x10FFFF))
    return "".join(chars)


def write_c_string(mem: MemoryAccess, address: int, text: str, terminate: bool = True) -> int:
    if layout.is_null_page(address):
        raise MemoryFault(address, "string write through NULL pointer")
    for index, char in enumerate(text):
        mem.store(address + index, ord(char))
    if terminate:
        mem.store(address + len(text), 0)
    return len(text)


def read_buffer(mem: MemoryAccess, address: int, count: int) -> bytes:
    if count > 0 and layout.is_null_page(address):
        raise MemoryFault(address, "buffer read through NULL pointer")
    return bytes((mem.load(address + index) & 0xFF) for index in range(count))


def write_buffer(mem: MemoryAccess, address: int, data: bytes) -> int:
    if data and layout.is_null_page(address):
        raise MemoryFault(address, "buffer write through NULL pointer")
    for index, byte in enumerate(data):
        mem.store(address + index, byte)
    return len(data)


# ----------------------------------------------------------------------
# the runtime libc used by the VM
# ----------------------------------------------------------------------
class SimLibc:
    """Word-level libc implementation bound to one :class:`SimOS`."""

    def __init__(self, os: SimOS) -> None:
        self.os = os
        self.errno: int = 0
        #: Program reads of the ``errno`` word (the VM engines bump this on
        #: loads from :data:`~repro.isa.layout.ERRNO_ADDRESS`).  The
        #: prefix-sharing scheduler uses the counter to prove a post-
        #: injection suffix never observed errno, making errno-only fault
        #: variants suffix replicas of one another.
        self.errno_reads: int = 0
        self._impls: Dict[str, Callable[[Tuple[int, ...], MemoryAccess], int]] = {}
        self._register_implementations()
        #: Data written by fwrite/puts keyed by path, for oracles and tests.
        self.assert_messages: list = []

    # ------------------------------------------------------------------
    def set_errno(self, value: int, mem: Optional[MemoryAccess] = None) -> None:
        self.errno = int(value)
        if mem is not None:
            mem.store(layout.ERRNO_ADDRESS, int(value))

    def call(self, name: str, args: Tuple[int, ...], mem: MemoryAccess) -> LibcResult:
        """Execute the real library function (no fault injected)."""
        spec = spec_for(name)
        impl = self._impls.get(name)
        if impl is None:
            raise NotImplementedError(f"SimLibc has no implementation for {name!r}")
        try:
            value = impl(args, mem)
            return LibcResult(value=int(value), errno=None, injected=False)
        except OSFault as fault:
            if spec.errno_via_return:
                return LibcResult(value=int(fault.errno), errno=None, injected=False)
            self.set_errno(fault.errno, mem)
            return LibcResult(value=spec.default_error_value, errno=int(fault.errno), injected=False)

    def apply_injected_fault(
        self, name: str, return_value: int, errno: Optional[int], mem: Optional[MemoryAccess]
    ) -> LibcResult:
        """Record the side effects of an injected fault (errno) and build the result."""
        spec = spec_for(name)
        if errno is not None and not spec.errno_via_return:
            self.set_errno(errno, mem)
        return LibcResult(value=int(return_value), errno=errno, injected=True)

    # ------------------------------------------------------------------
    # implementation registry
    # ------------------------------------------------------------------
    def _register_implementations(self) -> None:
        impls = {
            "malloc": self._malloc,
            "calloc": self._calloc,
            "realloc": self._realloc,
            "free": self._free,
            "open": self._open,
            "close": self._close,
            "read": self._read,
            "write": self._write,
            "lseek": self._lseek,
            "fstat": self._fstat,
            "stat": self._stat,
            "unlink": self._unlink,
            "readlink": self._readlink,
            "mkdir": self._mkdir,
            "fcntl": self._fcntl,
            "fopen": self._fopen,
            "fclose": self._fclose,
            "fread": self._fread,
            "fwrite": self._fwrite,
            "fgets": self._fgets,
            "fseek": self._fseek,
            "puts": self._puts,
            "opendir": self._opendir,
            "readdir": self._readdir,
            "closedir": self._closedir,
            "socket": self._socket,
            "bind": self._bind,
            "sendto": self._sendto,
            "recvfrom": self._recvfrom,
            "setenv": self._setenv,
            "getenv": self._getenv,
            "pthread_mutex_init": self._pthread_mutex_init,
            "pthread_mutex_lock": self._pthread_mutex_lock,
            "pthread_mutex_unlock": self._pthread_mutex_unlock,
            "pthread_mutex_destroy": self._pthread_mutex_destroy,
            "pthread_self": self._pthread_self,
            "time": self._time,
            "getpid": self._getpid,
            "abort": self._abort,
            "exit": self._exit,
            "assert_fail": self._assert_fail,
            "strlen": self._strlen,
            "strcmp": self._strcmp,
            "strcpy": self._strcpy,
            "memset": self._memset,
            "memcpy": self._memcpy,
            "atoi": self._atoi,
            "xmlNewTextWriterDoc": self._xml_new_text_writer_doc,
            "xmlTextWriterStartDocument": self._xml_writer_touch,
            "xmlTextWriterWriteString": self._xml_writer_touch,
            "xmlTextWriterEndDocument": self._xml_writer_touch_single,
            "xmlFreeTextWriter": self._xml_free_text_writer,
            "apr_file_read": self._apr_file_read,
            "apr_stat": self._apr_stat,
        }
        self._impls.update(impls)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def _malloc(self, args, mem) -> int:
        return self.os.heap.malloc(args[0])

    def _calloc(self, args, mem) -> int:
        address = self.os.heap.calloc(args[0], args[1])
        for offset in range(max(args[0] * args[1], 1)):
            mem.store(address + offset, 0)
        return address

    def _realloc(self, args, mem) -> int:
        return self.os.heap.realloc(args[0], args[1])

    def _free(self, args, mem) -> int:
        try:
            self.os.heap.free(args[0])
        except OSFault as fault:
            # glibc aborts on heap corruption rather than returning an error.
            raise SimExit(134, aborted=True, reason=f"free(): invalid pointer ({fault})")
        return 0

    # ------------------------------------------------------------------
    # file descriptors
    # ------------------------------------------------------------------
    def _open(self, args, mem) -> int:
        path = read_c_string(mem, args[0])
        return self.os.fs.open(path, args[1])

    def _close(self, args, mem) -> int:
        self.os.fs.close(args[0])
        return 0

    def _read(self, args, mem) -> int:
        fd, buf, count = args[0], args[1], args[2]
        data = self.os.fs.read(fd, count)
        write_buffer(mem, buf, data)
        return len(data)

    def _write(self, args, mem) -> int:
        fd, buf, count = args[0], args[1], args[2]
        data = read_buffer(mem, buf, count)
        return self.os.fs.write(fd, data)

    def _lseek(self, args, mem) -> int:
        return self.os.fs.lseek(args[0], args[1], args[2])

    def _fstat(self, args, mem) -> int:
        stat = self.os.fs.fstat(args[0])
        self._store_stat(mem, args[1], stat)
        return 0

    def _stat(self, args, mem) -> int:
        path = read_c_string(mem, args[0])
        stat = self.os.fs.stat(path)
        self._store_stat(mem, args[1], stat)
        return 0

    @staticmethod
    def _store_stat(mem: MemoryAccess, address: int, stat: fsmod.Stat) -> None:
        if layout.is_null_page(address):
            raise MemoryFault(address, "stat buffer through NULL pointer")
        mem.store(address, stat.mode)
        mem.store(address + 1, stat.size)
        mem.store(address + 2, stat.inode)

    def _unlink(self, args, mem) -> int:
        self.os.fs.unlink(read_c_string(mem, args[0]))
        return 0

    def _readlink(self, args, mem) -> int:
        path = read_c_string(mem, args[0])
        target = self.os.fs.readlink(path)
        truncated = target[: args[2]]
        write_c_string(mem, args[1], truncated, terminate=False)
        return len(truncated)

    def _mkdir(self, args, mem) -> int:
        self.os.fs.mkdir(read_c_string(mem, args[0]))
        return 0

    def _fcntl(self, args, mem) -> int:
        fd, cmd = args[0], args[1]
        if cmd == F_GETFL:
            return self.os.fs.fd_flags(fd)
        if cmd == F_SETFL:
            self.os.fs.set_fd_flags(fd, args[2])
            return 0
        if cmd in (F_GETLK, F_SETLK):
            if not self.os.fs.descriptor_is_open(fd):
                raise OSFault(Errno.EBADF, f"fcntl on fd {fd}")
            return 0
        raise OSFault(Errno.EINVAL, f"fcntl cmd {cmd}")

    # ------------------------------------------------------------------
    # stdio
    # ------------------------------------------------------------------
    def _fopen(self, args, mem) -> int:
        path = read_c_string(mem, args[0])
        mode = read_c_string(mem, args[1])
        flags = fsmod.O_RDONLY
        if "w" in mode:
            flags = fsmod.O_WRONLY | fsmod.O_CREAT | fsmod.O_TRUNC
        elif "a" in mode:
            flags = fsmod.O_WRONLY | fsmod.O_CREAT | fsmod.O_APPEND
        elif "+" in mode:
            flags = fsmod.O_RDWR | fsmod.O_CREAT
        fd = self.os.fs.open(path, flags)
        handle = self.os.heap.malloc(2)
        mem.store(handle, fd)
        mem.store(handle + 1, _FILE_MAGIC)
        return handle

    def _file_fd(self, mem: MemoryAccess, handle: int) -> int:
        if layout.is_null_page(handle):
            raise MemoryFault(handle, "FILE* is NULL")
        return mem.load(handle)

    def _fclose(self, args, mem) -> int:
        fd = self._file_fd(mem, args[0])
        self.os.fs.close(fd)
        self.os.heap.free(args[0])
        return 0

    def _fread(self, args, mem) -> int:
        buf, size, count, handle = args
        fd = self._file_fd(mem, handle)
        data = self.os.fs.read(fd, size * count)
        write_buffer(mem, buf, data)
        return len(data) // max(size, 1)

    def _fwrite(self, args, mem) -> int:
        buf, size, count, handle = args
        fd = self._file_fd(mem, handle)
        data = read_buffer(mem, buf, size * count)
        written = self.os.fs.write(fd, data)
        return written // max(size, 1)

    def _fgets(self, args, mem) -> int:
        buf, limit, handle = args
        fd = self._file_fd(mem, handle)
        collected = bytearray()
        while len(collected) < max(limit - 1, 0):
            chunk = self.os.fs.read(fd, 1)
            if not chunk:
                break
            collected.extend(chunk)
            if chunk == b"\n":
                break
        if not collected:
            return 0
        write_c_string(mem, buf, collected.decode("latin-1"))
        return buf

    def _fseek(self, args, mem) -> int:
        handle, offset, whence = args
        fd = self._file_fd(mem, handle)
        self.os.fs.lseek(fd, offset, whence)
        return 0

    def _puts(self, args, mem) -> int:
        text = read_c_string(mem, args[0])
        self.os.write_stdout(text + "\n")
        return len(text) + 1

    # ------------------------------------------------------------------
    # directories
    # ------------------------------------------------------------------
    def _opendir(self, args, mem) -> int:
        path = read_c_string(mem, args[0])
        handle = self.os.fs.opendir(path)
        dirp = self.os.heap.malloc(4)
        name_buffer = self.os.heap.malloc(128)
        mem.store(dirp, handle)
        mem.store(dirp + 1, _DIR_MAGIC)
        mem.store(dirp + 2, name_buffer)
        return dirp

    def _readdir(self, args, mem) -> int:
        dirp = args[0]
        # A NULL DIR* dereference faults here, inside the library, which is
        # exactly how the Git opendir/readdir bug from Table 1 crashes.
        handle = mem.load(dirp)
        name = self.os.fs.readdir(handle)
        if name is None:
            return 0
        name_buffer = mem.load(dirp + 2)
        write_c_string(mem, name_buffer, name)
        return name_buffer

    def _closedir(self, args, mem) -> int:
        dirp = args[0]
        handle = mem.load(dirp)
        self.os.fs.closedir(handle)
        return 0

    # ------------------------------------------------------------------
    # sockets
    # ------------------------------------------------------------------
    def _socket(self, args, mem) -> int:
        return self.os.network.socket(owner=self.os.name)

    def _bind(self, args, mem) -> int:
        self.os.network.bind(args[0], args[1])
        return 0

    def _sendto(self, args, mem) -> int:
        fd, buf, count, _flags, dest, _addrlen = args
        payload = read_buffer(mem, buf, count)
        return self.os.network.sendto(fd, payload, dest, now=self.os.clock.now)

    def _recvfrom(self, args, mem) -> int:
        fd, buf, count, _flags, src_ptr, _addrlen = args
        payload, source = self.os.network.recvfrom(fd)
        data = payload[:count]
        write_buffer(mem, buf, data)
        if src_ptr and not layout.is_null_page(src_ptr):
            mem.store(src_ptr, source)
        return len(data)

    # ------------------------------------------------------------------
    # environment
    # ------------------------------------------------------------------
    def _setenv(self, args, mem) -> int:
        name = read_c_string(mem, args[0])
        value = read_c_string(mem, args[1])
        try:
            return self.os.env.setenv(name, value, overwrite=bool(args[2]))
        except OSFault:
            self.os.env.record_failed_update(name, value)
            raise

    def _getenv(self, args, mem) -> int:
        name = read_c_string(mem, args[0])
        value = self.os.env.getenv(name)
        if value is None:
            return 0
        buffer = self.os.heap.malloc(len(value) + 1)
        write_c_string(mem, buffer, value)
        return buffer

    # ------------------------------------------------------------------
    # threads / sync
    # ------------------------------------------------------------------
    def _pthread_mutex_init(self, args, mem) -> int:
        return self.os.mutexes.init(args[0])

    def _pthread_mutex_lock(self, args, mem) -> int:
        return self.os.mutexes.lock(args[0])

    def _pthread_mutex_unlock(self, args, mem) -> int:
        return self.os.mutexes.unlock(args[0])

    def _pthread_mutex_destroy(self, args, mem) -> int:
        return self.os.mutexes.destroy(args[0])

    def _pthread_self(self, args, mem) -> int:
        return 1

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _time(self, args, mem) -> int:
        seconds = int(self.os.clock.now)
        if args and args[0] and not layout.is_null_page(args[0]):
            mem.store(args[0], seconds)
        return seconds

    def _getpid(self, args, mem) -> int:
        return 4242

    def _abort(self, args, mem) -> int:
        raise SimExit(134, aborted=True, reason="abort() called")

    def _exit(self, args, mem) -> int:
        raise SimExit(args[0] if args else 0)

    def _assert_fail(self, args, mem) -> int:
        message = read_c_string(mem, args[0]) if args and args[0] else "assertion failed"
        self.assert_messages.append(message)
        raise SimExit(134, aborted=True, reason=f"assertion failed: {message}")

    # ------------------------------------------------------------------
    # string helpers
    # ------------------------------------------------------------------
    def _strlen(self, args, mem) -> int:
        return len(read_c_string(mem, args[0]))

    def _strcmp(self, args, mem) -> int:
        a = read_c_string(mem, args[0])
        b = read_c_string(mem, args[1])
        return (a > b) - (a < b)

    def _strcpy(self, args, mem) -> int:
        text = read_c_string(mem, args[1])
        write_c_string(mem, args[0], text)
        return args[0]

    def _memset(self, args, mem) -> int:
        address, value, count = args
        for offset in range(count):
            mem.store(address + offset, value & 0xFF)
        return address

    def _memcpy(self, args, mem) -> int:
        dst, src, count = args
        for offset in range(count):
            mem.store(dst + offset, mem.load(src + offset))
        return dst

    def _atoi(self, args, mem) -> int:
        text = read_c_string(mem, args[0]).strip()
        sign = 1
        if text.startswith("-"):
            sign = -1
            text = text[1:]
        digits = ""
        for char in text:
            if not char.isdigit():
                break
            digits += char
        return sign * int(digits) if digits else 0

    # ------------------------------------------------------------------
    # libxml2 subset used by the BIND statistics channel
    # ------------------------------------------------------------------
    def _xml_new_text_writer_doc(self, args, mem) -> int:
        writer = self.os.heap.malloc(8)
        mem.store(writer, 0x3A31)  # marker
        mem.store(writer + 1, 0)   # bytes written
        if args and args[0] and not layout.is_null_page(args[0]):
            mem.store(args[0], writer)
        return writer

    def _xml_writer_touch(self, args, mem) -> int:
        writer = args[0]
        if layout.is_null_page(writer):
            raise MemoryFault(writer, "xml writer is NULL")
        written = mem.load(writer + 1) + 1
        mem.store(writer + 1, written)
        return written

    def _xml_writer_touch_single(self, args, mem) -> int:
        return self._xml_writer_touch(args, mem)

    def _xml_free_text_writer(self, args, mem) -> int:
        if args[0]:
            self.os.heap.free(args[0])
        return 0

    # ------------------------------------------------------------------
    # libapr subset used by the Apache overhead experiment
    # ------------------------------------------------------------------
    def _apr_file_read(self, args, mem) -> int:
        fd, buf, len_ptr = args
        requested = mem.load(len_ptr) if len_ptr else 0
        data = self.os.fs.read(fd, requested)
        write_buffer(mem, buf, data)
        if len_ptr:
            mem.store(len_ptr, len(data))
        if not data and requested:
            return 70008  # APR_EOF
        return 0

    def _apr_stat(self, args, mem) -> int:
        finfo, fname, _wanted, _pool = args
        path = read_c_string(mem, fname)
        stat = self.os.fs.stat(path)
        self._store_stat(mem, finfo, stat)
        return 0


__all__ = [
    "ErrorReturn",
    "F_GETFL",
    "F_GETLK",
    "F_SETFL",
    "F_SETLK",
    "LIBC_FUNCTIONS",
    "LibcFunctionSpec",
    "LibcResult",
    "MemoryAccess",
    "SimLibc",
    "functions_of_library",
    "libraries",
    "read_buffer",
    "read_c_string",
    "spec_for",
    "write_buffer",
    "write_c_string",
]
