"""Generate synthetic shared-library binaries for the profiler to analyse.

The LFI profiler (§2) works by static analysis of the *library* binary: it
infers which error codes a function can return and which ``errno`` values it
can set.  To exercise that analysis end to end we emit a machine-code image
for each simulated library whose control flow encodes exactly the error
behaviour in :data:`repro.oslib.libc.LIBC_FUNCTIONS` — one error block per
(return value, errno) pair, plus a "computed" success path.

The runtime implementation (:class:`~repro.oslib.libc.SimLibc`) honours the
same specification, so a profile inferred from these binaries is also an
accurate description of runtime behaviour — the property the paper relies on
when it says injected faults must reflect the library's true behaviour.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.isa import layout
from repro.isa.assembler import Assembler
from repro.isa.binary import BinaryImage, SourceLocation
from repro.isa.instructions import Imm, Label, Mem, Opcode, Reg
from repro.oslib.errno_codes import errno_value
from repro.oslib.libc import LIBC_FUNCTIONS, LibcFunctionSpec


def _error_cases(spec: LibcFunctionSpec) -> List[Tuple[int, Optional[str]]]:
    """Expand the spec into one (return value, errno name or None) per block."""
    cases: List[Tuple[int, Optional[str]]] = []
    for error_return in spec.error_returns:
        if error_return.errnos:
            for name in error_return.errnos:
                cases.append((error_return.value, name))
        else:
            cases.append((error_return.value, None))
    return cases


def _emit_function(assembler: Assembler, spec: LibcFunctionSpec, library_file: str) -> None:
    """Emit one library function following the layout described above."""
    assembler.begin_function(spec.name)
    source = SourceLocation(file=library_file, line=1, function=spec.name)
    cases = _error_cases(spec)

    # Dispatch on the opaque condition register r7: 0 means success, the
    # values 1..N select one of the error paths.  The VM never executes this
    # code (the runtime libc is native), so the dispatch only has to be
    # *analysable*, not *reachable* in any particular way.
    assembler.emit(Opcode.CMP, Reg("r7"), Imm(0), source=source)
    assembler.emit(Opcode.JE, Label("success"), source=source)
    for index in range(len(cases)):
        assembler.emit(Opcode.CMP, Reg("r7"), Imm(index + 1), source=source)
        assembler.emit(Opcode.JE, Label(f"err{index}"), source=source)
    assembler.emit(Opcode.JMP, Label("success"), source=source)

    for index, (value, errno_name) in enumerate(cases):
        assembler.mark_label(f"err{index}")
        if errno_name is not None and not spec.errno_via_return:
            assembler.emit(
                Opcode.MOV,
                Mem(base=None, offset=layout.ERRNO_ADDRESS),
                Imm(errno_value(errno_name)),
                source=source,
                comment=f"errno = {errno_name}",
            )
        assembler.emit(Opcode.MOV, Reg("r0"), Imm(value), source=source)
        assembler.emit(Opcode.RET, source=source)

    assembler.mark_label("success")
    if spec.success == "void" or spec.errno_via_return:
        # Status-code style functions (pthread_*, apr_*) return 0 on success;
        # void functions simply leave 0 in r0.
        assembler.emit(Opcode.MOV, Reg("r0"), Imm(0), source=source)
    else:
        # A non-constant ("computed") return value: the profiler reports it
        # as the success value rather than an error code.
        assembler.emit(Opcode.MOV, Reg("r0"), Reg("r6"), source=source)
    assembler.emit(Opcode.RET, source=source)
    assembler.end_function()


def library_soname(library: str) -> str:
    return f"{library}.so"


def build_library_binary(
    library: str = "libc", functions: Optional[Iterable[str]] = None
) -> BinaryImage:
    """Build the synthetic shared object for *library*.

    ``functions`` optionally restricts which exports are emitted (useful in
    tests); by default every function the spec assigns to the library is
    included.
    """
    soname = library_soname(library)
    assembler = Assembler(soname, entry="")
    selected = [
        spec
        for spec in LIBC_FUNCTIONS.values()
        if spec.library == library and (functions is None or spec.name in set(functions))
    ]
    if not selected:
        raise ValueError(f"no functions found for library {library!r}")
    for spec in sorted(selected, key=lambda item: item.name):
        _emit_function(assembler, spec, library_file=f"{library}.c")
    return assembler.finish()


def build_all_library_binaries() -> Dict[str, BinaryImage]:
    """Build every simulated shared library, keyed by soname."""
    images: Dict[str, BinaryImage] = {}
    for library in sorted({spec.library for spec in LIBC_FUNCTIONS.values()}):
        images[library_soname(library)] = build_library_binary(library)
    return images


__all__ = ["build_all_library_binaries", "build_library_binary", "library_soname"]
