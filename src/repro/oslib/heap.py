"""The ``malloc`` arena used by programs running in the VM.

The heap hands out word addresses inside the VM heap region.  Exhaustion
returns ``NULL`` with ``ENOMEM`` — one of the classic error paths the LFI
call-site analyzer targets (unchecked ``malloc`` in BIND and Git, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.isa import layout
from repro.oslib.errno_codes import Errno
from repro.oslib.errors import OSFault


@dataclass
class Allocation:
    address: int
    size: int
    freed: bool = False


class SimHeap:
    """A simple bump-with-free-list allocator over the VM heap region."""

    def __init__(
        self,
        base: int = layout.HEAP_BASE,
        capacity: int = layout.HEAP_SIZE,
    ) -> None:
        self.base = base
        self.capacity = capacity
        self._cursor = base
        self._allocations: Dict[int, Allocation] = {}
        self._bytes_in_use = 0

    # ------------------------------------------------------------------
    @property
    def bytes_in_use(self) -> int:
        return self._bytes_in_use

    @property
    def allocation_count(self) -> int:
        return sum(1 for alloc in self._allocations.values() if not alloc.freed)

    def owns(self, address: int) -> bool:
        return self.base <= address < self.base + self.capacity

    def allocation_at(self, address: int) -> Optional[Allocation]:
        return self._allocations.get(address)

    # ------------------------------------------------------------------
    def malloc(self, size: int) -> int:
        """Allocate *size* words; returns the address or raises ``ENOMEM``."""
        if size < 0:
            raise OSFault(Errno.EINVAL, f"malloc({size})")
        size = max(size, 1)
        if self._cursor + size > self.base + self.capacity:
            raise OSFault(Errno.ENOMEM, f"heap exhausted ({self._bytes_in_use} words in use)")
        address = self._cursor
        self._cursor += size
        self._allocations[address] = Allocation(address=address, size=size)
        self._bytes_in_use += size
        return address

    def calloc(self, count: int, size: int) -> int:
        return self.malloc(count * size)

    def free(self, address: int) -> None:
        if address == 0:
            return  # free(NULL) is a no-op, as in C
        allocation = self._allocations.get(address)
        if allocation is None:
            raise OSFault(Errno.EINVAL, f"free of unallocated address {address:#x}")
        if allocation.freed:
            raise OSFault(Errno.EINVAL, f"double free of {address:#x}")
        allocation.freed = True
        self._bytes_in_use -= allocation.size

    # ------------------------------------------------------------------
    # snapshot support (repro.vm.snapshot)
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        return {
            "base": self.base,
            "capacity": self.capacity,
            "cursor": self._cursor,
            "allocations": {
                address: (alloc.size, alloc.freed)
                for address, alloc in self._allocations.items()
            },
            "bytes_in_use": self._bytes_in_use,
        }

    def restore_state(self, state: dict) -> None:
        self.base = state["base"]
        self.capacity = state["capacity"]
        self._cursor = state["cursor"]
        self._allocations = {
            address: Allocation(address=address, size=size, freed=freed)
            for address, (size, freed) in state["allocations"].items()
        }
        self._bytes_in_use = state["bytes_in_use"]

    def realloc(self, address: int, size: int) -> int:
        if address == 0:
            return self.malloc(size)
        allocation = self._allocations.get(address)
        if allocation is None or allocation.freed:
            raise OSFault(Errno.EINVAL, f"realloc of invalid address {address:#x}")
        if size <= allocation.size:
            return address
        new_address = self.malloc(size)
        self.free(address)
        return new_address


__all__ = ["Allocation", "SimHeap"]
