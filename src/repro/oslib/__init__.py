"""Simulated operating system and libc substrate.

The paper injects faults at the boundary between applications and shared
libraries (primarily GNU libc).  This package provides that boundary for the
reproduction:

* :mod:`repro.oslib.errno_codes` — the errno namespace.
* :mod:`repro.oslib.fs` — an in-memory filesystem with file descriptors,
  directories, pipes and symlinks.
* :mod:`repro.oslib.heap` — the ``malloc`` arena used by compiled programs.
* :mod:`repro.oslib.net` — a datagram network connecting simulated nodes.
* :mod:`repro.oslib.sync` — POSIX-mutex semantics including the
  double-unlock abort that the MySQL bug in Table 1 relies on.
* :mod:`repro.oslib.env` — process environment (``setenv``/``getenv``).
* :mod:`repro.oslib.os_model` — :class:`SimOS`, bundling all of the above
  plus a simulated clock and stdout/stderr streams.
* :mod:`repro.oslib.libc` — the libc function specification (names, arity,
  error returns, errno side effects) and the word-level implementations used
  when programs run inside the VM.
* :mod:`repro.oslib.facade` — a Pythonic libc facade used by the
  Python-level simulated servers (MySQL, Apache, PBFT); every call is routed
  through the fault-injection gate.
* :mod:`repro.oslib.libc_binary` — emits a synthetic ``libc.so`` binary so
  that the LFI profiler can infer the fault profile by static analysis.
"""

from repro.oslib.errno_codes import Errno, errno_name, errno_value
from repro.oslib.errors import MutexAbort, OSFault, SimExit
from repro.oslib.os_model import SimOS
from repro.oslib.libc import LIBC_FUNCTIONS, LibcFunctionSpec, SimLibc
from repro.oslib.facade import LibcFacade

__all__ = [
    "Errno",
    "LIBC_FUNCTIONS",
    "LibcFacade",
    "LibcFunctionSpec",
    "MutexAbort",
    "OSFault",
    "SimExit",
    "SimLibc",
    "SimOS",
    "errno_name",
    "errno_value",
]
