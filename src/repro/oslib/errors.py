"""Exception types raised by the simulated OS and libc."""

from __future__ import annotations

from repro.oslib.errno_codes import Errno, errno_name


class OSFault(Exception):
    """A genuine (non-injected) failure of a simulated OS operation.

    The libc layer converts these into the appropriate C-style error return
    (e.g. ``-1`` / ``NULL``) plus an ``errno`` side effect, exactly like a
    real libc wraps kernel errors.
    """

    def __init__(self, errno: int, message: str = "") -> None:
        self.errno = int(errno)
        self.message = message
        super().__init__(f"{errno_name(self.errno)}: {message}" if message else errno_name(self.errno))


class MutexAbort(Exception):
    """Raised when mutex discipline is violated (e.g. double unlock).

    Models the process abort that error-checking pthread mutexes cause; the
    MySQL double-unlock bug from Table 1 manifests through this exception.
    """

    def __init__(self, mutex_id: int, reason: str) -> None:
        self.mutex_id = mutex_id
        self.reason = reason
        super().__init__(f"mutex {mutex_id:#x}: {reason}")


class SimExit(Exception):
    """Raised by ``exit()`` / ``abort()`` to unwind the simulated process."""

    def __init__(self, code: int, aborted: bool = False, reason: str = "") -> None:
        self.code = int(code)
        self.aborted = aborted
        self.reason = reason
        super().__init__(f"exit({code})" + (" [abort]" if aborted else ""))


class NetworkUnavailable(OSFault):
    """Raised when a datagram operation cannot complete."""

    def __init__(self, message: str = "network unavailable") -> None:
        super().__init__(Errno.ENETDOWN, message)


class WorldCrash(Exception):
    """The simulated machine was killed mid-operation (crash-consistency).

    Raised by the ``crash_point`` fault class to model a power loss / SIGKILL
    at an arbitrary library call: the world stops *now*, with whatever state
    the simulated filesystem holds (possibly a torn partial write).  The VM
    maps it to :class:`ExitKind.WORLD_CRASH`; recovery workloads then replay
    against the surviving fs state to exercise journal/repair code.

    Deliberately NOT a subclass of :class:`OSFault` — libc must not convert
    it into an errno return; it unwinds the whole run.
    """

    def __init__(self, reason: str = "world crashed", torn: bool = False) -> None:
        self.reason = reason
        self.torn = torn
        super().__init__(reason + (" [torn write]" if torn else ""))


class MemoryFault(Exception):
    """An invalid memory access (the simulated SIGSEGV).

    Raised by the VM memory when code (or a libc routine acting on the
    program's behalf, e.g. ``readdir`` on a NULL directory pointer) touches
    the guarded NULL page or an otherwise invalid address.
    """

    def __init__(self, address: int, reason: str = "invalid memory access") -> None:
        self.address = address
        self.reason = reason
        super().__init__(f"{reason} at address {address:#x}")


__all__ = [
    "MemoryFault",
    "MutexAbort",
    "NetworkUnavailable",
    "OSFault",
    "SimExit",
    "WorldCrash",
]
