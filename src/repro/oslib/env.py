"""Process environment (``setenv``/``getenv``/``unsetenv``).

The Git bug from Table 1 ("running an external command with an incomplete
environment, due to failed ``setenv``") needs an environment whose updates
can fail and a way for later code to observe the incomplete state, so the
environment keeps a record of failed updates for the bug detectors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.oslib.errno_codes import Errno
from repro.oslib.errors import OSFault


class SimEnvironment:
    """A string-to-string environment with bounded capacity."""

    def __init__(self, initial: Optional[Dict[str, str]] = None, capacity: int = 1024) -> None:
        self._vars: Dict[str, str] = dict(initial or {})
        self.capacity = capacity
        #: Records of (name, value) updates that failed (for bug oracles).
        self.failed_updates: List[Tuple[str, str]] = []

    def getenv(self, name: str) -> Optional[str]:
        return self._vars.get(name)

    def setenv(self, name: str, value: str, overwrite: bool = True) -> int:
        if not name or "=" in name:
            raise OSFault(Errno.EINVAL, f"setenv name {name!r}")
        if name in self._vars and not overwrite:
            return 0
        if name not in self._vars and len(self._vars) >= self.capacity:
            raise OSFault(Errno.ENOMEM, "environment full")
        self._vars[name] = value
        return 0

    def unsetenv(self, name: str) -> int:
        if not name or "=" in name:
            raise OSFault(Errno.EINVAL, f"unsetenv name {name!r}")
        self._vars.pop(name, None)
        return 0

    def snapshot(self) -> Dict[str, str]:
        return dict(self._vars)

    def record_failed_update(self, name: str, value: str) -> None:
        self.failed_updates.append((name, value))

    # snapshot support (repro.vm.snapshot)
    def capture_state(self) -> dict:
        return {
            "vars": dict(self._vars),
            "capacity": self.capacity,
            "failed_updates": list(self.failed_updates),
        }

    def restore_state(self, state: dict) -> None:
        self._vars = dict(state["vars"])
        self.capacity = state["capacity"]
        self.failed_updates = list(state["failed_updates"])

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def __len__(self) -> int:
        return len(self._vars)


__all__ = ["SimEnvironment"]
